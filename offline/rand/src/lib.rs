//! Offline stand-in for the `rand` crate (API subset of rand 0.8).
//!
//! Deterministic for a given seed — the only property the workspace's
//! bit-identity suites rely on — but the stream differs from upstream
//! `rand`'s ChaCha12-based `StdRng`. See `offline/README.md`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw generator interface: a source of uniform random words.
pub trait RngCore {
    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64,
                   usize => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform `v < n` via multiple-rejection (unbiased).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Largest multiple of n representable in u64; values at or above it
    // would bias the modulus and are redrawn.
    let cutoff = u64::MAX - u64::MAX % n;
    loop {
        let v = rng.next_u64();
        if v < cutoff || cutoff == 0 {
            return v % n;
        }
    }
}

/// Range types `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = Standard::sample(rng);
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                // Rounding can land exactly on the excluded endpoint.
                if v as $t >= self.end {
                    self.start
                } else {
                    v as $t
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: f64 = Standard::sample(rng);
                (lo as f64 + u * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// One uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// One uniform value from a (half-open or inclusive) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with splitmix64
    /// seed expansion. Not the upstream ChaCha12 stream — see
    /// `offline/README.md`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zero outputs from any seed, but keep the guard
            // explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna), public domain reference.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unsized_rng_is_usable() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(takes_dynish(&mut rng) < 10);
    }
}
