//! Offline stand-in for the `proptest` crate (API subset of proptest 1.x).
//!
//! Provides the `proptest!` test harness, the `prop_assert*` /
//! `prop_assume!` macros, and the strategy combinators the workspace's
//! property suites use (numeric ranges, tuples, `collection::vec`,
//! `option::of`, `sample::select`, `any::<T>()`). Cases are generated from
//! a deterministic per-test seed; failures report the case number but are
//! not shrunk. See `offline/README.md`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Accepted (non-rejected) cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the property is falsified.
        Fail(String),
        /// `prop_assume!` rejected the inputs; draw another case.
        Reject,
    }

    impl TestCaseError {
        /// A failure with the given message.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }
}

/// Value generators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(S0 / 0);
    impl_tuple_strategy!(S0 / 0, S1 / 1);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

    /// `Just(v)`: always generates a clone of `v`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The `any::<T>()` strategy: uniform over the whole type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Uniform over all of `T`.
    #[must_use]
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// A length specification for collection strategies: an exact `usize`
    /// or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange(pub Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.0.clone())
        }
    }

    /// `Vec` strategies.
    pub mod collection {
        use super::{SizeRange, Strategy};
        use rand::rngs::StdRng;

        /// A `Vec` whose length is drawn from `size` and whose elements
        /// come from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// An `Option` that is `Some` three times out of four.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S>(S);

        /// `prop::option::of(inner)`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                if rng.gen_range(0u32..4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }

    /// Choosing among fixed values.
    pub mod sample {
        use super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Uniform over a fixed set of values.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        /// `prop::sample::select(values)`: uniform over `values`.
        pub fn select<T: Clone>(values: impl Into<Vec<T>>) -> Select<T> {
            let v = values.into();
            assert!(!v.is_empty(), "select() needs at least one value");
            Select(v)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut StdRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }
    }
}

/// The `prop::` module path used inside `proptest!` bodies.
pub mod prop {
    pub use crate::strategy::{collection, option, sample};
}

/// Everything the property suites import.
pub mod prelude {
    pub use crate::strategy::any;
    pub use crate::strategy::Just;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic per-test, per-case RNG: FNV-1a over the test path mixed
/// with the case counter, optionally perturbed by `PROPTEST_SEED`.
#[doc(hidden)]
#[must_use]
pub fn __case_rng(test_path: &str, case: u64) -> StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let env = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ env)
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa_l, __pa_r) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa_l == *__pa_r,
            concat!("assertion failed: ", stringify!($a), " == ", stringify!($b))
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__pa_l, __pa_r) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa_l == *__pa_r,
            concat!("assertion failed: ", stringify!($a), " == ", stringify!($b), ": {}"),
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa_l, __pa_r) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa_l != *__pa_r,
            concat!("assertion failed: ", stringify!($a), " != ", stringify!($b))
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__pa_l, __pa_r) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa_l != *__pa_r,
            concat!("assertion failed: ", stringify!($a), " != ", stringify!($b), ": {}"),
            format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (draw another) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Supports the
/// `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute
/// and any number of `#[test] fn name(arg in strategy, ...) { body }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            let max_attempts = u64::from(config.cases) * 16 + 64;
            while accepted < config.cases {
                assert!(
                    attempt < max_attempts,
                    "proptest: too many rejected cases ({} accepted of {} wanted)",
                    accepted,
                    config.cases
                );
                let mut __proptest_rng =
                    $crate::__case_rng(concat!(module_path!(), "::", stringify!($name)), attempt);
                attempt += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match result {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} (attempt {}) of {} failed: {}",
                            accepted,
                            attempt - 1,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            n in 1usize..50,
            (flag, x) in (any::<bool>(), -10.0f64..10.0),
            label in prop::option::of(0u32..8),
            pick in prop::sample::select(vec![2u64, 4, 8]),
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((-10.0..10.0).contains(&x));
            prop_assert!(flag || !flag);
            if let Some(l) = label {
                prop_assert!(l < 8);
            }
            prop_assert!(pick == 2 || pick == 4 || pick == 8);
        }

        #[test]
        fn vectors_have_requested_lengths(
            exact in prop::collection::vec(0u32..10, 7),
            ranged in prop::collection::vec(-1.0f64..1.0, 1..5),
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!((1..5).contains(&ranged.len()));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0, "only even values survive the assume");
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u32..4) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
