//! Offline stand-in for the `criterion` crate (API subset of criterion
//! 0.5). Compiles the workspace's benches and, when run, times a short
//! fixed batch per benchmark and prints one line each — it is not a
//! statistically rigorous harness. See `offline/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export for convenience; benches mostly use `std::hint::black_box`
/// directly.
pub use std::hint::black_box;

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { id: s.clone() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs one benchmark's measured section.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Times `iters` calls of `routine` and records the total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let total = t0.elapsed();
        let per = total / u32::try_from(self.iters.max(1)).unwrap_or(u32::MAX);
        println!("    {} iters, {:?} total, {:?}/iter", self.iters, total, per);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {}/{}", self.name, id.into().id);
        f(&mut Bencher { iters: 3 });
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench {}/{}", self.name, id.into().id);
        f(&mut Bencher { iters: 3 }, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {}", id.into().id);
        f(&mut Bencher { iters: 3 });
        self
    }
}

/// Declares a group runner invoking each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_the_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = 0u32;
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("g", "x"), &5u64, |b, &v| {
            b.iter(|| black_box(v * 2))
        });
        group.finish();
        assert!(ran >= 1);
    }
}
