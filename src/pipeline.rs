//! High-level convenience pipeline: summary → OPTICS → flat clusters.
//!
//! Wires together the steps the paper's evaluation performs after every
//! batch of updates, so applications (and the experiment harness) don't
//! repeat the plumbing: run OPTICS over the live bubbles, expand the
//! ordering with virtual reachability into a point-level plot, extract
//! clusters with the Sander et al. cluster-tree method.

use idb_clustering::{extract_clusters, optics_bubbles, ExtractParams, ReachabilityPlot};
use idb_core::{DataSummary, IncrementalBubbles};

// (cluster_sample below additionally uses idb_clustering::optics_points and
// idb_store through full paths, to keep the top-level imports minimal.)

/// Everything the clustering step produces.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// The expanded, point-level reachability plot.
    pub plot: ReachabilityPlot,
    /// Extracted flat clusters as raw point ids.
    pub clusters: Vec<Vec<u64>>,
}

/// Clusters the current bubble population: OPTICS over the non-empty
/// bubbles (`eps = ∞`, the full hierarchy), virtual-reachability
/// expansion, cluster-tree extraction with `min_cluster_size`.
#[must_use]
pub fn cluster_bubbles(
    bubbles: &IncrementalBubbles,
    min_pts: usize,
    min_cluster_size: usize,
) -> ClusterOutcome {
    let ordering = optics_bubbles(bubbles.bubbles(), f64::INFINITY, min_pts);
    let plot = ordering.expand(|i| {
        bubbles
            .bubble(i)
            .members()
            .iter()
            .map(|id| u64::from(id.0))
            .collect::<Vec<_>>()
    });
    let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(min_cluster_size));
    ClusterOutcome { plot, clusters }
}

/// Clusters an arbitrary summary set (e.g. BIRCH CF leaves) the same way.
/// `members(i)` must yield the point ids summarized by summary `i` — when
/// the summarization doesn't track memberships (BIRCH does not), pass
/// synthetic ids and score at the summary level instead.
#[must_use]
pub fn cluster_summaries<S, F, I>(
    summaries: &[S],
    min_pts: usize,
    min_cluster_size: usize,
    members: F,
) -> ClusterOutcome
where
    S: DataSummary,
    F: FnMut(usize) -> I,
    I: IntoIterator<Item = u64>,
{
    let ordering = optics_bubbles(summaries, f64::INFINITY, min_pts);
    let plot = ordering.expand(members);
    let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(min_cluster_size));
    ClusterOutcome { plot, clusters }
}

/// The random-sampling baseline: cluster a uniform sample of the database
/// directly with point-level OPTICS (the naive compression data bubbles
/// were introduced to beat — a small sample under-represents small
/// clusters and carries no density information about the points it
/// dropped).
///
/// Returns the outcome (cluster ids refer to the *original* store) plus
/// the sample as its own store, so callers can score at sample level.
pub fn cluster_sample<R: rand::Rng + ?Sized>(
    store: &idb_store::PointStore,
    sample_size: usize,
    min_pts: usize,
    min_cluster_size: usize,
    rng: &mut R,
) -> (ClusterOutcome, idb_store::PointStore) {
    let ids = store.sample_distinct(sample_size, rng);
    let mut sample = idb_store::PointStore::with_capacity(store.dim(), ids.len());
    // Fresh stores assign slots sequentially, so slot i of the sample maps
    // back to ids[i].
    for &id in &ids {
        sample.insert(store.point(id), store.label(id));
    }
    let plot = idb_clustering::optics_points(&sample, f64::INFINITY, min_pts);
    let translated = ReachabilityPlot::from_entries(
        plot.entries()
            .iter()
            .map(|e| idb_clustering::PlotEntry {
                id: u64::from(ids[e.id as usize].0),
                reachability: e.reachability,
            })
            .collect(),
    );
    let clusters = extract_clusters(&translated, &ExtractParams::with_min_size(min_cluster_size));
    (
        ClusterOutcome {
            plot: translated,
            clusters,
        },
        sample,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use idb_core::MaintainerConfig;
    use idb_geometry::SearchStats;
    use idb_synth::{ClusterModel, MixtureModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A tiny cluster that a 5 % random sample nearly erases but that the
    /// bubble summarization keeps — the motivating contrast for data
    /// bubbles over sampling.
    #[test]
    fn small_cluster_survives_bubbles_but_not_tiny_sample() {
        let model = MixtureModel::new(
            2,
            vec![
                ClusterModel::new(vec![20.0, 20.0], 2.0),
                ClusterModel::new(vec![80.0, 80.0], 2.0),
            ],
            0.0,
            (0.0, 100.0),
        );
        let mut rng = StdRng::seed_from_u64(1234);
        let mut store = model.populate(8_000, &mut rng);
        // A small but real third cluster: 1 % of the data.
        for i in 0..80 {
            let t = i as f64 * 0.08;
            store.insert(&[60.0 + t.sin(), 10.0 + t.cos()], Some(2));
        }

        let mut search = SearchStats::new();
        let ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(120), &mut rng, &mut search);
        let bubble_outcome = cluster_bubbles(&ib, 6, 40);
        assert_eq!(
            bubble_outcome.clusters.len(),
            3,
            "bubbles keep the 1 % cluster"
        );

        let (sample_outcome, sample) = cluster_sample(&store, 400, 6, 40, &mut rng);
        assert_eq!(sample.len(), 400);
        // In a 400-point sample the small cluster has ~4 points — far below
        // the extraction minimum, so at most the two big clusters appear.
        assert!(
            sample_outcome.clusters.len() <= 2,
            "a tiny sample loses the small cluster ({} clusters)",
            sample_outcome.clusters.len()
        );
        // Sample cluster ids refer to the original store.
        for c in &sample_outcome.clusters {
            for &id in c {
                assert!(store.contains(idb_store::PointId(id as u32)));
            }
        }
    }

    #[test]
    fn cluster_bubbles_finds_generated_structure() {
        let model = MixtureModel::new(
            2,
            vec![
                ClusterModel::new(vec![10.0, 10.0], 1.5),
                ClusterModel::new(vec![90.0, 90.0], 1.5),
            ],
            0.0,
            (0.0, 100.0),
        );
        let mut rng = StdRng::seed_from_u64(31);
        let store = model.populate(1_000, &mut rng);
        let mut search = SearchStats::new();
        let ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(20), &mut rng, &mut search);
        let outcome = cluster_bubbles(&ib, 6, 40);
        assert_eq!(outcome.clusters.len(), 2);
        assert_eq!(outcome.plot.len(), store.len());
    }
}
