//! High-level convenience pipeline: summary → OPTICS → flat clusters.
//!
//! Wires together the steps the paper's evaluation performs after every
//! batch of updates, so applications (and the experiment harness) don't
//! repeat the plumbing: run OPTICS over the live bubbles, expand the
//! ordering with virtual reachability into a point-level plot, extract
//! clusters with the Sander et al. cluster-tree method.

use idb_clustering::{extract_clusters, optics_bubbles, ExtractParams, ReachabilityPlot};
use idb_core::{DataSummary, IncrementalBubbles};

// (cluster_sample below additionally uses idb_clustering::optics_points and
// idb_store through full paths, to keep the top-level imports minimal.)

/// Everything the clustering step produces.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// The expanded, point-level reachability plot.
    pub plot: ReachabilityPlot,
    /// Extracted flat clusters as raw point ids.
    pub clusters: Vec<Vec<u64>>,
}

/// Clusters the current bubble population: OPTICS over the non-empty
/// bubbles (`eps = ∞`, the full hierarchy), virtual-reachability
/// expansion, cluster-tree extraction with `min_cluster_size`.
#[must_use]
pub fn cluster_bubbles(
    bubbles: &IncrementalBubbles,
    min_pts: usize,
    min_cluster_size: usize,
) -> ClusterOutcome {
    let ordering = optics_bubbles(bubbles.bubbles(), f64::INFINITY, min_pts);
    let plot = ordering.expand(|i| {
        bubbles
            .bubble(i)
            .members()
            .iter()
            .map(|id| u64::from(id.0))
            .collect::<Vec<_>>()
    });
    let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(min_cluster_size));
    ClusterOutcome { plot, clusters }
}

/// Clusters an arbitrary summary set (e.g. BIRCH CF leaves) the same way.
/// `members(i)` must yield the point ids summarized by summary `i` — when
/// the summarization doesn't track memberships (BIRCH does not), pass
/// synthetic ids and score at the summary level instead.
#[must_use]
pub fn cluster_summaries<S, F, I>(
    summaries: &[S],
    min_pts: usize,
    min_cluster_size: usize,
    members: F,
) -> ClusterOutcome
where
    S: DataSummary + Sync,
    F: FnMut(usize) -> I,
    I: IntoIterator<Item = u64>,
{
    let ordering = optics_bubbles(summaries, f64::INFINITY, min_pts);
    let plot = ordering.expand(members);
    let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(min_cluster_size));
    ClusterOutcome { plot, clusters }
}

/// The random-sampling baseline: cluster a uniform sample of the database
/// directly with point-level OPTICS (the naive compression data bubbles
/// were introduced to beat — a small sample under-represents small
/// clusters and carries no density information about the points it
/// dropped).
///
/// Returns the outcome (cluster ids refer to the *original* store) plus
/// the sample as its own store, so callers can score at sample level.
pub fn cluster_sample<R: rand::Rng + ?Sized>(
    store: &idb_store::PointStore,
    sample_size: usize,
    min_pts: usize,
    min_cluster_size: usize,
    rng: &mut R,
) -> (ClusterOutcome, idb_store::PointStore) {
    let ids = store.sample_distinct(sample_size, rng);
    let mut sample = idb_store::PointStore::with_capacity(store.dim(), ids.len());
    // Fresh stores assign slots sequentially, so slot i of the sample maps
    // back to ids[i].
    for &id in &ids {
        sample.insert(store.point(id), store.label(id));
    }
    let plot = idb_clustering::optics_points(&sample, f64::INFINITY, min_pts);
    let translated = ReachabilityPlot::from_entries(
        plot.entries()
            .iter()
            .map(|e| idb_clustering::PlotEntry {
                id: u64::from(ids[e.id as usize].0),
                reachability: e.reachability,
            })
            .collect(),
    );
    let clusters = extract_clusters(&translated, &ExtractParams::with_min_size(min_cluster_size));
    (
        ClusterOutcome {
            plot: translated,
            clusters,
        },
        sample,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use idb_core::MaintainerConfig;
    use idb_geometry::SearchStats;
    use idb_synth::{ClusterModel, MixtureModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A tiny cluster that a 5 % random sample nearly erases but that the
    /// bubble summarization keeps — the motivating contrast for data
    /// bubbles over sampling.
    ///
    /// Asserts the paper-level invariant — a cluster dominated by the 1 %
    /// population survives summarization but not a 400-point sample — not
    /// any exact partition, which depends on the RNG stream. Each stage
    /// draws from its own seeded RNG so a change in one stage's
    /// consumption cannot perturb the others.
    #[test]
    fn small_cluster_survives_bubbles_but_not_tiny_sample() {
        let model = MixtureModel::new(
            2,
            vec![
                ClusterModel::new(vec![20.0, 20.0], 2.0),
                ClusterModel::new(vec![80.0, 80.0], 2.0),
            ],
            0.0,
            (0.0, 100.0),
        );
        let mut store = model.populate(8_000, &mut StdRng::seed_from_u64(1234));
        // A small but real third cluster: 1 % of the data, label 2.
        let small = 80usize;
        for i in 0..small {
            let t = i as f64 * 0.08;
            store.insert(&[60.0 + t.sin(), 10.0 + t.cos()], Some(2));
        }
        // Points of the small cluster held by `cluster`, as
        // (held, cluster size).
        let label2_share = |cluster: &[u64]| -> (usize, usize) {
            let held = cluster
                .iter()
                .filter(|&&id| store.label(idb_store::PointId(id as u32)) == Some(2))
                .count();
            (held, cluster.len())
        };

        // 200 bubbles ≈ 40 points per bubble: enough summarization
        // resolution that the 80-point cluster occupies its own bubbles
        // (the paper sizes its bubble populations the same way).
        let mut search = SearchStats::new();
        let ib = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(200),
            &mut StdRng::seed_from_u64(1000),
            &mut search,
        );
        let bubble_outcome = cluster_bubbles(&ib, 6, 40);
        // The big clusters are found...
        assert!(
            bubble_outcome.clusters.len() >= 2,
            "expected at least the two big clusters, got {}",
            bubble_outcome.clusters.len()
        );
        // ...and the 1 % cluster survives: some extracted cluster holds the
        // majority of its points and consists mostly of them.
        let survived = bubble_outcome.clusters.iter().any(|c| {
            let (held, size) = label2_share(c);
            held * 2 > small && held * 2 > size
        });
        assert!(
            survived,
            "bubbles lost the 1 % cluster: {:?}",
            bubble_outcome
                .clusters
                .iter()
                .map(|c| label2_share(c))
                .collect::<Vec<_>>()
        );

        let (sample_outcome, sample) =
            cluster_sample(&store, 400, 6, 40, &mut StdRng::seed_from_u64(4321));
        assert_eq!(sample.len(), 400);
        // A 400-point sample holds ~4 of the small cluster's points — far
        // below the extraction minimum, so no extracted cluster can be
        // dominated by it.
        let sample_kept = sample_outcome.clusters.iter().any(|c| {
            let (held, size) = label2_share(c);
            held * 2 > size
        });
        assert!(!sample_kept, "a tiny sample cannot keep the 1 % cluster");
        // Sample cluster ids refer to the original store.
        for c in &sample_outcome.clusters {
            for &id in c {
                assert!(store.contains(idb_store::PointId(id as u32)));
            }
        }
    }

    #[test]
    fn cluster_bubbles_finds_generated_structure() {
        let model = MixtureModel::new(
            2,
            vec![
                ClusterModel::new(vec![10.0, 10.0], 1.5),
                ClusterModel::new(vec![90.0, 90.0], 1.5),
            ],
            0.0,
            (0.0, 100.0),
        );
        let mut rng = StdRng::seed_from_u64(31);
        let store = model.populate(1_000, &mut rng);
        let mut search = SearchStats::new();
        let ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(20), &mut rng, &mut search);
        let outcome = cluster_bubbles(&ib, 6, 40);
        assert_eq!(outcome.clusters.len(), 2);
        assert_eq!(outcome.plot.len(), store.len());
    }
}
