//! # Incremental Data Bubbles
//!
//! A complete Rust implementation of *"Incremental and Effective Data
//! Summarization for Dynamic Hierarchical Clustering"* (Nassar, Sander,
//! Cheng — SIGMOD 2004), including every substrate its evaluation depends
//! on: OPTICS on points and on summaries, automatic reachability-plot
//! cluster extraction, SLINK, DBSCAN, a BIRCH CF-tree baseline, dynamic
//! workload generators and the full experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use incremental_data_bubbles::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A labeled synthetic database of three Gaussian clusters.
//! let model = MixtureModel::new(
//!     2,
//!     vec![
//!         ClusterModel::new(vec![20.0, 20.0], 2.0),
//!         ClusterModel::new(vec![50.0, 80.0], 2.0),
//!         ClusterModel::new(vec![80.0, 20.0], 2.0),
//!     ],
//!     0.02,
//!     (0.0, 100.0),
//! );
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut store = model.populate(2_000, &mut rng);
//!
//! // Summarize with 40 data bubbles and cluster the summary.
//! let mut search = SearchStats::new();
//! let mut bubbles =
//!     IncrementalBubbles::build(&store, MaintainerConfig::new(40), &mut rng, &mut search);
//! let outcome = pipeline::cluster_bubbles(&bubbles, 8, 50);
//! assert_eq!(outcome.clusters.len(), 3);
//!
//! // The database changes; the summary follows without a rebuild.
//! let batch = Batch {
//!     deletes: store.ids().take(50).collect(),
//!     inserts: (0..50).map(|i| (vec![50.0, 20.0 + i as f64 * 0.1], None)).collect(),
//! };
//! bubbles.apply_batch(&mut store, &batch, &mut search);
//! bubbles.maintain(&store, &mut rng, &mut search);
//! ```
//!
//! When inputs are untrusted, prefer [`core::IncrementalBubbles::try_apply_batch`]:
//! it validates the whole batch up front and rejects bad ones with a typed
//! [`core::UpdateError`], leaving store and summary untouched.
//! [`core::IncrementalBubbles::audit`] checks every internal invariant and
//! [`core::IncrementalBubbles::repair`] rebuilds whatever it flags.
//!
//! For crash safety, wrap store and summary in a
//! [`core::DurableMaintainer`]: every batch is appended to a CRC-framed
//! write-ahead log *before* it is applied, periodic checkpoints bound
//! replay work, and [`core::recover`] rebuilds the exact pre-crash state
//! from the newest usable checkpoint plus the WAL tail (see the
//! "Durability" section of the README for a quickstart).
//!
//! Durability can run *bounded*: a [`store::segment::SegmentedSink`]
//! rotates the log into segments and compaction reclaims everything
//! covered by the newest full checkpoint, checkpoints stream in chunks
//! (most as dirty-bubble deltas over a periodic full rebase), and a
//! [`store::StorageBudget`] turns disk exhaustion into typed,
//! exactly-rolled-back sheds instead of unbounded buffering
//! ([`core::recover_chain`] walks the segment chain after a crash; see
//! the "Storage" section of the README).
//!
//! Operational visibility comes from the [`obs`] layer: a metrics
//! registry of named counters and latency histograms, plus a structured
//! op journal — every insert, delete, merge, split, WAL commit,
//! checkpoint and recovery step emits a typed [`obs::Event`] through a
//! pluggable [`obs::Recorder`]. Observability is off by default and free
//! when off; set `IDB_OBS=metrics` or `IDB_OBS=jsonl` to turn it on (see
//! the "Observability" section of the README).
//!
//! To serve many independent update streams — or to fault-isolate one —
//! the [`shard`] layer runs `V` durable maintainer partitions behind a
//! deterministic router ([`shard::ShardRouter`]): per-shard bounded
//! queues with typed backpressure, a supervisor that quarantines
//! persistently degraded partitions while siblings keep serving, and
//! per-partition crash recovery. The shard count is a pure wall-clock
//! knob (set it with `IDB_SHARDS`): any value yields bit-identical
//! summaries and cluster orderings (see the "Sharding" section of the
//! README).
//!
//! Re-clustering from scratch every epoch wastes the work the
//! maintainer just saved; the [`delta`] layer keeps the *clustering*
//! incremental too. A [`delta::DeltaEngine`] consumes the maintainer's
//! structural change stream, recomputes only the touched distance
//! neighborhoods and changed tree components, and emits typed
//! [`delta::ClusterDelta`]s with stable cluster ids to registered
//! subscriptions — bit-identical to the from-scratch pipeline on every
//! epoch (see the "Delta clustering" section of the README).
//!
//! The individual layers are re-exported as modules: [`geometry`],
//! [`store`], [`synth`], [`core`], [`clustering`], [`birch`], [`eval`],
//! [`obs`], [`shard`], [`delta`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use idb_birch as birch;
pub use idb_clustering as clustering;
pub use idb_core as core;
pub use idb_delta as delta;
pub use idb_eval as eval;
pub use idb_geometry as geometry;
pub use idb_obs as obs;
pub use idb_shard as shard;
pub use idb_store as store;
pub use idb_synth as synth;

pub mod pipeline;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::pipeline;
    pub use idb_birch::{CfSummary, CfTree};
    pub use idb_clustering::{
        extract_clusters, optics_bubbles, optics_points, ExtractParams, ReachabilityPlot,
    };
    pub use idb_core::{
        recover, recover_chain, AuditError, AuditIssue, AuditReport, Bubble, CheckpointStore,
        DataSummary, DurabilityConfig, DurableMaintainer, FsCheckpoints, Health,
        IncrementalBubbles, MaintainerConfig, MemCheckpoints, QualityKind, Recovered,
        RecoveryError, RepairReport, SeedSearch, SplitSeedPolicy, SufficientStats, UpdateError,
    };
    pub use idb_delta::{
        router_epoch, ClusterDelta, ClusterId, DeltaEngine, DeltaParams, EpochReport, Interest,
        SubscriptionId, TreeReplica, VersionedDelta,
    };
    pub use idb_eval::{compactness_per_point, fscore, Aggregate};
    pub use idb_geometry::SearchStats;
    pub use idb_obs::{
        check_journal, check_journal_sharded, Cause, Event, EventKind, JsonlRecorder,
        MetricsRegistry, NullRecorder, Obs, Recorder, RingRecorder,
    };
    pub use idb_shard::{
        GlobalId, PartitionStatus, RestartReport, ShardConfig, ShardError, ShardRouter,
    };
    pub use idb_store::{
        segment::{FsSegments, MemSegments, SegmentedSink},
        Batch, DurableSink, FileSink, Label, MemSink, PointId, PointStore, StorageBudget,
        StorageError, WalError,
    };
    pub use idb_synth::{
        ClusterModel, MixtureModel, MultiStreamEngine, ScenarioEngine, ScenarioKind, ScenarioSpec,
    };
}
