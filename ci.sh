#!/usr/bin/env bash
# Full local CI gate: build, tests (in both parallelism modes), lints,
# formatting, bench compilation.
#
# The tier-1 gate is `cargo build --release && cargo test -q` at the repo
# root; this script runs that plus the workspace-wide test suite — twice,
# once per parallel execution mode (the IDB_PARALLELISM default, see
# DESIGN.md §9), which must be observationally identical — clippy with
# warnings promoted to errors, a formatting check, and a compile check of
# the criterion benches.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
IDB_PARALLELISM=serial cargo test -q
IDB_PARALLELISM=serial cargo test -q --workspace
IDB_PARALLELISM=auto cargo test -q
IDB_PARALLELISM=auto cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
cargo fmt --check
cargo bench --no-run

echo "ci: all green"
