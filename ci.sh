#!/usr/bin/env bash
# Full local CI gate: build, tests (in both parallelism modes and under
# every seed-search engine), crash-consistency suites, lints, formatting,
# bench compilation.
#
# The tier-1 gate is `cargo build --release && cargo test -q` at the repo
# root; this script runs that plus the workspace-wide test suite — twice,
# once per parallel execution mode (the IDB_PARALLELISM default, see
# DESIGN.md §9), which must be observationally identical — the
# differential suites once per assignment engine (the IDB_SEED_SEARCH
# default, see DESIGN.md §10), which must be bit-identical — the
# durability suites (DESIGN.md §11) with a kill-at-random-crash-point
# smoke loop under varying seeds — clippy with warnings promoted to
# errors, a formatting check, and a compile check of the criterion
# benches.
set -euo pipefail
cd "$(dirname "$0")"

# Hermetic scratch space for the file-backed durability tests: everything
# that honors IDB_WAL_DIR (FileSink fixtures, the crash smoke test, the
# durability bench) lands in a throwaway directory.
IDB_WAL_DIR="$(mktemp -d)"
export IDB_WAL_DIR
trap 'rm -rf "$IDB_WAL_DIR"' EXIT

cargo build --release
IDB_PARALLELISM=serial cargo test -q
IDB_PARALLELISM=serial cargo test -q --workspace
IDB_PARALLELISM=auto cargo test -q
IDB_PARALLELISM=auto cargo test -q --workspace
# Re-run the equivalence suites with each engine as the config default:
# tests that don't pin an engine must pass — and agree — under all three.
for engine in brute pruned kdtree; do
    IDB_SEED_SEARCH="$engine" cargo test -q -p idb-geometry --test differential
    IDB_SEED_SEARCH="$engine" cargo test -q -p idb-core --test differential
    IDB_SEED_SEARCH="$engine" cargo test -q -p idb-core --test properties
done
# Durability: the full crash-consistency differential suite and the
# hostile-input corpus, then the file-backed kill-at-random-crash-point
# smoke under a few distinct seeds (each seed picks a different scenario
# and crash byte).
cargo test -q -p idb-core --test crash_consistency
cargo test -q -p idb-store --test hardening
for crash_seed in 11 1986 777216; do
    IDB_CRASH_SEED="$crash_seed" cargo test -q -p idb-core --test crash_consistency \
        kill_at_random_crash_point_smoke
done
cargo clippy --all-targets -- -D warnings
cargo fmt --check
cargo bench --no-run

echo "ci: all green"
