#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
# The tier-1 gate is `cargo build --release && cargo test -q` at the repo
# root; this script runs that plus the workspace-wide test suite, clippy
# with warnings promoted to errors, and a formatting check.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
cargo fmt --check

echo "ci: all green"
