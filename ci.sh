#!/usr/bin/env bash
# Full local CI gate: build, tests (in both parallelism modes and under
# every seed-search engine), crash-consistency suites, observability
# journal validation, lints, formatting, bench compilation.
#
# The tier-1 gate is `cargo build --release && cargo test -q` at the repo
# root; this script runs that plus the workspace-wide test suite — twice,
# once per parallel execution mode (the IDB_PARALLELISM default, see
# DESIGN.md §9), which must be observationally identical — the
# differential suites once per assignment engine (the IDB_SEED_SEARCH
# default, see DESIGN.md §10), which must be bit-identical — the
# durability suites (DESIGN.md §11) with a kill-at-random-crash-point
# smoke loop under varying seeds — the sharded-service differential and
# fault-isolation suites under an ambient IDB_SHARDS=4 plus a smoke run
# of the shard report (DESIGN.md §13) — the delta-clustering equivalence
# and subscription suites with journaling on plus the delta report's
# savings floor (DESIGN.md §14) — the differential and durability
# suites once more with JSONL journaling on (DESIGN.md §12), every
# emitted journal validated by the journal_check tool — the kernel report
# with its 1.5x speedup floor plus a guarded target-cpu=native re-run of
# the kernel-sensitive suites (DESIGN.md §15) — clippy across the whole
# workspace with warnings promoted to errors, a formatting check, and a
# compile check of the criterion benches.
#
# Set CARGOFLAGS to pass extra flags to every cargo invocation (e.g.
# CARGOFLAGS="--config /path/to/offline-overrides.toml" in air-gapped
# environments; the flags go after the subcommand so they reach external
# subcommands like clippy too).
set -euo pipefail
cd "$(dirname "$0")"
CARGOFLAGS=${CARGOFLAGS:-}

# Hermetic scratch space: file-backed durability tests honor IDB_WAL_DIR
# (FileSink fixtures, the crash smoke test, the durability bench), and
# JSONL op journals land under IDB_OBS_DIR. Both are throwaway.
IDB_WAL_DIR="$(mktemp -d)"
IDB_OBS_DIR="$(mktemp -d)"
export IDB_WAL_DIR IDB_OBS_DIR
trap 'rm -rf "$IDB_WAL_DIR" "$IDB_OBS_DIR"' EXIT

# shellcheck disable=SC2086  # CARGOFLAGS is intentionally word-split.
cargo build $CARGOFLAGS --release
IDB_PARALLELISM=serial cargo test $CARGOFLAGS -q
IDB_PARALLELISM=serial cargo test $CARGOFLAGS -q --workspace
IDB_PARALLELISM=auto cargo test $CARGOFLAGS -q
IDB_PARALLELISM=auto cargo test $CARGOFLAGS -q --workspace
# Re-run the equivalence suites with each engine as the config default:
# tests that don't pin an engine must pass — and agree — under all three.
for engine in brute pruned kdtree; do
    IDB_SEED_SEARCH="$engine" cargo test $CARGOFLAGS -q -p idb-geometry --test differential
    IDB_SEED_SEARCH="$engine" cargo test $CARGOFLAGS -q -p idb-core --test differential
    IDB_SEED_SEARCH="$engine" cargo test $CARGOFLAGS -q -p idb-core --test properties
done
# Durability: the full crash-consistency differential suite and the
# hostile-input corpus, then the file-backed kill-at-random-crash-point
# smoke under a few distinct seeds (each seed picks a different scenario
# and crash byte).
cargo test $CARGOFLAGS -q -p idb-core --test crash_consistency
cargo test $CARGOFLAGS -q -p idb-store --test hardening
for crash_seed in 11 1986 777216; do
    IDB_CRASH_SEED="$crash_seed" cargo test $CARGOFLAGS -q -p idb-core --test crash_consistency \
        kill_at_random_crash_point_smoke
done
# Bounded storage (DESIGN.md §16): the differential, crash-consistency,
# fault-injection and hardening suites again under a tiny ambient segment
# budget and a finite disk budget in a hermetic WAL dir — rotation,
# compaction and budget enforcement must never change an outcome (suites
# that exercise the knobs pin their own values).
IDB_BUDGET_WAL_DIR="$(mktemp -d)"
IDB_WAL_SEGMENT_BYTES=2048 IDB_DISK_BUDGET=1048576 IDB_WAL_DIR="$IDB_BUDGET_WAL_DIR" \
    cargo test $CARGOFLAGS -q -p idb-core --test differential
IDB_WAL_SEGMENT_BYTES=2048 IDB_DISK_BUDGET=1048576 IDB_WAL_DIR="$IDB_BUDGET_WAL_DIR" \
    cargo test $CARGOFLAGS -q -p idb-core --test crash_consistency
IDB_WAL_SEGMENT_BYTES=2048 IDB_DISK_BUDGET=1048576 IDB_WAL_DIR="$IDB_BUDGET_WAL_DIR" \
    cargo test $CARGOFLAGS -q -p idb-core --test fault_injection
IDB_WAL_SEGMENT_BYTES=2048 IDB_DISK_BUDGET=1048576 IDB_WAL_DIR="$IDB_BUDGET_WAL_DIR" \
    cargo test $CARGOFLAGS -q -p idb-store --test hardening
rm -rf "$IDB_BUDGET_WAL_DIR"
# Tiered point store (DESIGN.md §17): the differential, crash-consistency
# and fault-injection suites again with an ambient 256-point hot budget
# and a hermetic file-backed cold spill dir — demand fetch, clock
# eviction and cold rewrites must never change an outcome (suites that
# exercise the tier pin their own budgets).
IDB_TIER_COLD_DIR="$(mktemp -d)"
IDB_HOT_POINTS=256 IDB_COLD_DIR="$IDB_TIER_COLD_DIR" \
    cargo test $CARGOFLAGS -q -p idb-core --test differential
IDB_HOT_POINTS=256 IDB_COLD_DIR="$IDB_TIER_COLD_DIR" \
    cargo test $CARGOFLAGS -q -p idb-core --test crash_consistency
IDB_HOT_POINTS=256 IDB_COLD_DIR="$IDB_TIER_COLD_DIR" \
    cargo test $CARGOFLAGS -q -p idb-core --test fault_injection
rm -rf "$IDB_TIER_COLD_DIR"
# Sharded service layer (DESIGN.md §13): the shard-count differential
# suite and the quarantine/crash fault-isolation suite, run under
# IDB_SHARDS=4 as the ambient default (the suites pin their own shard
# counts where the contract demands it — the knob must never change an
# outcome) with a hermetic per-partition WAL directory, plus the
# IDB_SHARDS parser cases with the variable unset.
IDB_SHARD_WAL_DIR="$(mktemp -d)"
IDB_SHARDS=4 IDB_WAL_DIR="$IDB_SHARD_WAL_DIR" cargo test $CARGOFLAGS -q -p idb-shard --test differential
IDB_SHARDS=4 IDB_WAL_DIR="$IDB_SHARD_WAL_DIR" cargo test $CARGOFLAGS -q -p idb-shard --test fault_isolation
cargo test $CARGOFLAGS -q -p idb-shard --test env_knob
# shellcheck disable=SC2086
cargo run $CARGOFLAGS --release -q -p idb-bench --bin shard_report -- "$IDB_SHARD_WAL_DIR/BENCH_shard_smoke.json"
rm -rf "$IDB_SHARD_WAL_DIR"
# Delta-maintained clustering (DESIGN.md §14): the bit-identity
# equivalence suite and the subscription delivery contract under the
# ambient parallelism/shard/journal knobs — the engines pick up
# IDB_OBS=jsonl, so the DeltaEpoch events they emit land in journals the
# journal_check run below validates (touched <= total per epoch) — plus
# the primitive property pins (pair-cache locality, cached extraction,
# 64-seed metric determinism) and a smoke run of the delta report with
# its >=2x touched-neighborhood savings floor.
IDB_PARALLELISM=auto IDB_SHARDS=4 IDB_OBS=jsonl cargo test $CARGOFLAGS -q -p idb-delta
cargo test $CARGOFLAGS -q -p idb-clustering --test delta_properties
cargo test $CARGOFLAGS -q -p idb-eval --test determinism
DELTA_SMOKE_DIR="$(mktemp -d)"
# shellcheck disable=SC2086
cargo run $CARGOFLAGS --release -q -p idb-bench --bin delta_report -- "$DELTA_SMOKE_DIR/BENCH_delta_smoke.json"
rm -rf "$DELTA_SMOKE_DIR"
# Observability: the differential and durability suites once more with
# JSONL journaling on, writing into the hermetic IDB_OBS_DIR, then every
# emitted journal is parsed and checked against the op-journal invariants
# (split pairing, batch accounting, non-empty commit groups).
IDB_OBS=jsonl cargo test $CARGOFLAGS -q -p idb-core --test differential
IDB_OBS=jsonl cargo test $CARGOFLAGS -q -p idb-core --test crash_consistency
IDB_OBS=jsonl cargo test $CARGOFLAGS -q -p idb-core --test fault_injection
cargo run $CARGOFLAGS --release -q -p idb-bench --bin journal_check -- "$IDB_OBS_DIR"
# Kernel & memory layout (DESIGN.md §15): the kernel report measures the
# canonical 4-lane kernels against the retained metric::scalar baseline
# and fails below the 1.5x speedup floor at d >= 64; its self-checks also
# exercise the incremental matrix/order-repair counters end to end.
KERNEL_SMOKE_DIR="$(mktemp -d)"
# shellcheck disable=SC2086
cargo run $CARGOFLAGS --release -q -p idb-bench --bin kernel_report -- "$KERNEL_SMOKE_DIR/BENCH_kernel_smoke.json"
rm -rf "$KERNEL_SMOKE_DIR"
# Bit-identity must survive wider codegen: re-run the kernel property
# suite and the re-baseline audit with the host's full instruction set.
# Guarded — skipped with a notice when the toolchain/target rejects the
# flag (e.g. cross-compilation or unsupported CPUs).
if RUSTFLAGS="-C target-cpu=native" cargo check $CARGOFLAGS -q -p idb-geometry 2>/dev/null; then
    RUSTFLAGS="-C target-cpu=native" cargo test $CARGOFLAGS -q -p idb-geometry --test kernels
    RUSTFLAGS="-C target-cpu=native" cargo test $CARGOFLAGS -q -p idb-geometry --test differential
    RUSTFLAGS="-C target-cpu=native" cargo test $CARGOFLAGS -q -p idb-delta --test rebaseline_audit
else
    echo "ci: target-cpu=native unsupported here; skipping native-codegen pass"
fi
# Lint every workspace crate's lib, bins and tests (bench targets need
# the real criterion crate and are compile-checked separately below).
cargo clippy $CARGOFLAGS --workspace --lib --bins --tests -- -D warnings
cargo fmt --check
cargo bench $CARGOFLAGS --no-run

echo "ci: all green"
