#!/usr/bin/env bash
# Full local CI gate: build, tests (in both parallelism modes and under
# every seed-search engine), lints, formatting, bench compilation.
#
# The tier-1 gate is `cargo build --release && cargo test -q` at the repo
# root; this script runs that plus the workspace-wide test suite — twice,
# once per parallel execution mode (the IDB_PARALLELISM default, see
# DESIGN.md §9), which must be observationally identical — the
# differential suites once per assignment engine (the IDB_SEED_SEARCH
# default, see DESIGN.md §10), which must be bit-identical — clippy with
# warnings promoted to errors, a formatting check, and a compile check of
# the criterion benches.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
IDB_PARALLELISM=serial cargo test -q
IDB_PARALLELISM=serial cargo test -q --workspace
IDB_PARALLELISM=auto cargo test -q
IDB_PARALLELISM=auto cargo test -q --workspace
# Re-run the equivalence suites with each engine as the config default:
# tests that don't pin an engine must pass — and agree — under all three.
for engine in brute pruned kdtree; do
    IDB_SEED_SEARCH="$engine" cargo test -q -p idb-geometry --test differential
    IDB_SEED_SEARCH="$engine" cargo test -q -p idb-core --test differential
    IDB_SEED_SEARCH="$engine" cargo test -q -p idb-core --test properties
done
cargo clippy --all-targets -- -D warnings
cargo fmt --check
cargo bench --no-run

echo "ci: all green"
