//! Reproducibility: every stochastic step draws from caller-seeded RNGs,
//! so identical seeds must yield bit-identical pipelines — the property
//! that makes EXPERIMENTS.md's numbers re-checkable.

use incremental_data_bubbles::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn full_run(seed: u64) -> (Vec<u64>, Vec<usize>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = ScenarioSpec::named(ScenarioKind::Complex, 2, 3_000, 0.05);
    let mut engine = ScenarioEngine::new(spec);
    let mut store = engine.populate(&mut rng);
    let mut search = SearchStats::new();
    let mut ib =
        IncrementalBubbles::build(&store, MaintainerConfig::new(50), &mut rng, &mut search);
    for _ in 0..6 {
        let batch = engine.plan(&mut rng);
        let ids = ib.apply_batch(&mut store, &batch, &mut search);
        ib.maintain(&store, &mut rng, &mut search);
        engine.confirm(&ids);
    }
    let bubble_sizes: Vec<u64> = ib.bubbles().iter().map(|b| b.stats().n()).collect();
    let outcome = pipeline::cluster_bubbles(&ib, 8, 30);
    let cluster_sizes: Vec<usize> = outcome.clusters.iter().map(Vec::len).collect();
    let f = fscore(&store, &outcome.clusters).overall;
    (bubble_sizes, cluster_sizes, f)
}

#[test]
fn identical_seeds_give_identical_runs() {
    let a = full_run(12345);
    let b = full_run(12345);
    assert_eq!(a.0, b.0, "bubble populations");
    assert_eq!(a.1, b.1, "extracted cluster sizes");
    assert_eq!(a.2, b.2, "F-score");
}

#[test]
fn different_seeds_give_different_runs() {
    let a = full_run(1);
    let b = full_run(2);
    // Bubble populations are a fine-grained fingerprint; identical output
    // across different seeds would indicate a seeding bug.
    assert_ne!(a.0, b.0);
}
