//! Checkpoint/restore across the whole pipeline: a run snapshotted
//! mid-stream and restored must continue exactly like the uninterrupted
//! original.

use incremental_data_bubbles::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn restored_run_continues_bit_identically() {
    let mut rng = StdRng::seed_from_u64(515);
    let spec = ScenarioSpec::named(ScenarioKind::Complex, 2, 2_500, 0.05);
    let mut engine = ScenarioEngine::new(spec);
    let mut store = engine.populate(&mut rng);
    let mut search = SearchStats::new();
    let mut bubbles =
        IncrementalBubbles::build(&store, MaintainerConfig::new(40), &mut rng, &mut search);

    // Warm up.
    for _ in 0..3 {
        let batch = engine.plan(&mut rng);
        let ids = bubbles.apply_batch(&mut store, &batch, &mut search);
        bubbles.maintain(&store, &mut rng, &mut search);
        engine.confirm(&ids);
    }

    // Checkpoint store + summary + RNG state.
    let mut store_snap = Vec::new();
    store.write_snapshot(&mut store_snap).unwrap();
    let mut bubble_snap = Vec::new();
    bubbles.write_snapshot(&mut bubble_snap).unwrap();
    let rng_at_checkpoint = rng.clone();
    let engine_at_checkpoint = engine.clone();

    // Continue the original for 3 more batches.
    for _ in 0..3 {
        let batch = engine.plan(&mut rng);
        let ids = bubbles.apply_batch(&mut store, &batch, &mut search);
        bubbles.maintain(&store, &mut rng, &mut search);
        engine.confirm(&ids);
    }
    let original: Vec<u64> = bubbles.bubbles().iter().map(|b| b.stats().n()).collect();

    // Restore and replay the same 3 batches.
    let mut store2 = PointStore::read_snapshot(&mut store_snap.as_slice()).unwrap();
    let mut bubbles2 =
        IncrementalBubbles::read_snapshot(&mut bubble_snap.as_slice(), &store2).unwrap();
    bubbles2.validate(&store2);
    let mut rng2 = rng_at_checkpoint;
    let mut engine2 = engine_at_checkpoint;
    let mut search2 = SearchStats::new();
    for _ in 0..3 {
        let batch = engine2.plan(&mut rng2);
        let ids = bubbles2.apply_batch(&mut store2, &batch, &mut search2);
        bubbles2.maintain(&store2, &mut rng2, &mut search2);
        engine2.confirm(&ids);
    }
    bubbles2.validate(&store2);
    let restored: Vec<u64> = bubbles2.bubbles().iter().map(|b| b.stats().n()).collect();

    assert_eq!(original, restored, "restored run diverged");
    assert_eq!(store.len(), store2.len());

    // The restored pipeline clusters identically too.
    let a = pipeline::cluster_bubbles(&bubbles, 8, 30);
    let b = pipeline::cluster_bubbles(&bubbles2, 8, 30);
    let sizes = |o: &pipeline::ClusterOutcome| o.clusters.iter().map(Vec::len).collect::<Vec<_>>();
    assert_eq!(sizes(&a), sizes(&b));
}
