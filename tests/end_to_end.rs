//! Repository-level integration tests: the full paper pipeline across all
//! crates — scenario generation → incremental summarization → OPTICS on
//! bubbles → extraction → F-score — with the complete-rebuild baseline and
//! the paper's efficiency claims checked end to end.

use incremental_data_bubbles::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZE: usize = 8_000;
const BUBBLES: usize = 120;
const MIN_PTS: usize = 10;
const MIN_CLUSTER: usize = 60;

struct RunResult {
    f_incremental: f64,
    f_complete: f64,
    pruned_fraction: f64,
    saving_factor: f64,
    total_splits: usize,
}

fn run_scenario(kind: ScenarioKind, dim: usize, seed: u64) -> RunResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = ScenarioSpec::named(kind, dim, SIZE, 0.05);
    let mut engine = ScenarioEngine::new(spec);
    let mut store = engine.populate(&mut rng);

    let mut build = SearchStats::new();
    // The incremental scheme runs the pruned (triangle-inequality) engine
    // explicitly: the Figure 10 pruning-fraction claim below is about it,
    // so the IDB_SEED_SEARCH environment must not swap it out.
    let mut ib = IncrementalBubbles::build(
        &store,
        MaintainerConfig::new(BUBBLES).with_seed_search(SeedSearch::Pruned),
        &mut rng,
        &mut build,
    );

    let mut batch_stats_total = SearchStats::new();
    let mut saving = Aggregate::new();
    let mut total_splits = 0usize;
    for _ in 0..10 {
        let batch = engine.plan(&mut rng);
        let mut stats = SearchStats::new();
        let ids = ib.apply_batch(&mut store, &batch, &mut stats);
        let report = ib.maintain(&store, &mut rng, &mut stats);
        engine.confirm(&ids);
        ib.validate(&store);
        total_splits += report.splits;
        saving.push(idb_eval::distance_saving_factor(
            store.len() as u64,
            BUBBLES as u64,
            stats,
        ));
        batch_stats_total += stats;
    }

    let inc = pipeline::cluster_bubbles(&ib, MIN_PTS, MIN_CLUSTER);
    let f_incremental = fscore(&store, &inc.clusters).overall;

    let mut rebuild = SearchStats::new();
    let complete = IncrementalBubbles::build(
        &store,
        MaintainerConfig::new(BUBBLES).with_seed_search(SeedSearch::Brute),
        &mut rng,
        &mut rebuild,
    );
    let com = pipeline::cluster_bubbles(&complete, MIN_PTS, MIN_CLUSTER);
    let f_complete = fscore(&store, &com.clusters).overall;

    RunResult {
        f_incremental,
        f_complete,
        pruned_fraction: batch_stats_total.pruned_fraction(),
        saving_factor: saving.mean(),
        total_splits,
    }
}

#[test]
fn incremental_matches_complete_rebuild_on_random_churn() {
    let r = run_scenario(ScenarioKind::Random, 2, 100);
    assert!(
        r.f_complete > 0.85,
        "complete baseline sane: {}",
        r.f_complete
    );
    assert!(
        r.f_incremental > r.f_complete - 0.1,
        "incremental within 0.1 F of complete ({} vs {})",
        r.f_incremental,
        r.f_complete
    );
}

#[test]
fn incremental_tracks_appearing_cluster() {
    let r = run_scenario(ScenarioKind::Appear, 2, 200);
    assert!(r.f_incremental > 0.8, "F = {}", r.f_incremental);
    assert!(r.total_splits > 0, "the new cluster forced splits");
}

#[test]
fn incremental_tracks_extreme_appearing_cluster() {
    let r = run_scenario(ScenarioKind::ExtremeAppear, 2, 300);
    assert!(r.f_incremental > 0.8, "F = {}", r.f_incremental);
    assert!(r.total_splits > 0);
}

#[test]
fn incremental_survives_disappearance_and_movement() {
    for (kind, seed) in [
        (ScenarioKind::Disappear, 400),
        (ScenarioKind::GradMove, 500),
    ] {
        let r = run_scenario(kind, 2, seed);
        assert!(
            r.f_incremental > r.f_complete - 0.15,
            "{kind:?}: {} vs {}",
            r.f_incremental,
            r.f_complete
        );
    }
}

#[test]
fn complex_scenario_in_higher_dimensions() {
    for dim in [5usize, 10] {
        let r = run_scenario(ScenarioKind::Complex, dim, 600 + dim as u64);
        assert!(r.f_incremental > 0.7, "dim {dim}: F = {}", r.f_incremental);
    }
}

#[test]
fn efficiency_claims_hold() {
    let r = run_scenario(ScenarioKind::Complex, 2, 700);
    // Figure 10: substantial pruning by the triangle inequality.
    assert!(
        r.pruned_fraction > 0.5,
        "pruned {:.1} %",
        r.pruned_fraction * 100.0
    );
    // Figure 11: an order of magnitude fewer distance computations than
    // rebuild-per-batch at 5 % updates.
    assert!(r.saving_factor > 10.0, "saving factor {}", r.saving_factor);
}
