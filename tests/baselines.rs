//! Cross-baseline integration: the alternative clustering substrates
//! (SLINK, DBSCAN, point-level OPTICS, BIRCH CF leaves) agree with the
//! data-bubble pipeline about obvious structure.

use incremental_data_bubbles::clustering::{dbscan::dbscan, slink::slink_points};
use incremental_data_bubbles::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn two_blob_store(n: usize, seed: u64) -> PointStore {
    let model = MixtureModel::new(
        2,
        vec![
            ClusterModel::new(vec![20.0, 20.0], 2.0),
            ClusterModel::new(vec![80.0, 80.0], 2.0),
        ],
        0.0,
        (0.0, 100.0),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    model.populate(n, &mut rng)
}

#[test]
fn all_substrates_find_the_two_blobs() {
    let store = two_blob_store(2_000, 4242);
    let mut rng = StdRng::seed_from_u64(1);

    // Data-bubble pipeline.
    let mut search = SearchStats::new();
    let ib = IncrementalBubbles::build(&store, MaintainerConfig::new(40), &mut rng, &mut search);
    let bubbles = pipeline::cluster_bubbles(&ib, 8, 400);
    assert_eq!(bubbles.clusters.len(), 2, "bubble pipeline");

    // Point-level OPTICS.
    let plot = optics_points(&store, f64::INFINITY, 8);
    let points = extract_clusters(&plot, &ExtractParams::with_min_size(400));
    assert_eq!(points.len(), 2, "point OPTICS");

    // DBSCAN.
    let flat = dbscan(&store, 3.0, 8);
    assert_eq!(flat.num_clusters, 2, "DBSCAN");

    // SLINK on a subsample (O(n²)).
    let sample: Vec<Vec<f64>> = store.iter().take(400).map(|(_, p, _)| p.to_vec()).collect();
    let dendro = slink_points(&sample);
    let labels = dendro.cut_into(2);
    let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
    assert_eq!(distinct.len(), 2, "SLINK");

    // BIRCH CF leaves through the same summary-OPTICS pipeline.
    let mut tree = CfTree::new(2, 8, 16, 4.0);
    for (_, p, _) in store.iter() {
        tree.insert(p);
    }
    let leaves = tree.leaf_entries();
    let cf = pipeline::cluster_summaries(&leaves, 8, 400, |i| {
        let n = leaves[i].n();
        (0..n).map(move |j| (i as u64) << 32 | j)
    });
    assert_eq!(cf.clusters.len(), 2, "BIRCH CF pipeline");
}

#[test]
fn bubble_and_point_optics_agree_on_memberships() {
    let store = two_blob_store(1_500, 777);
    let mut rng = StdRng::seed_from_u64(2);
    let mut search = SearchStats::new();
    let ib = IncrementalBubbles::build(&store, MaintainerConfig::new(30), &mut rng, &mut search);
    let bubble_clusters = pipeline::cluster_bubbles(&ib, 8, 80).clusters;
    let plot = optics_points(&store, f64::INFINITY, 8);
    let point_clusters = extract_clusters(&plot, &ExtractParams::with_min_size(80));

    // Build id → cluster maps and check the partitions agree on > 95 % of
    // points (up to cluster relabeling).
    let to_map = |clusters: &[Vec<u64>]| -> HashMap<u64, usize> {
        clusters
            .iter()
            .enumerate()
            .flat_map(|(c, ids)| ids.iter().map(move |&id| (id, c)))
            .collect()
    };
    let a = to_map(&bubble_clusters);
    let b = to_map(&point_clusters);
    let mut votes: HashMap<(usize, usize), usize> = HashMap::new();
    let mut common = 0usize;
    for (id, &ca) in &a {
        if let Some(&cb) = b.get(id) {
            *votes.entry((ca, cb)).or_default() += 1;
            common += 1;
        }
    }
    // Majority mapping.
    let mut best: HashMap<usize, (usize, usize)> = HashMap::new();
    for (&(ca, cb), &v) in &votes {
        let e = best.entry(ca).or_insert((cb, 0));
        if v > e.1 {
            *e = (cb, v);
        }
    }
    let agree: usize = best.values().map(|&(_, v)| v).sum();
    assert!(common > 0);
    assert!(
        agree as f64 / common as f64 > 0.95,
        "partitions agree on {:.1} % of shared points",
        agree as f64 / common as f64 * 100.0
    );
}
