//! BIRCH substrate (Zhang, Ramakrishnan, Livny — the paper's \[20\]).
//!
//! BIRCH compresses a database into *clustering features* `CF = (n, LS,
//! SS)` held in the leaves of a height-balanced CF-tree: each insertion
//! descends to the closest leaf entry and is absorbed when the entry's
//! diameter stays below a global threshold `T`, otherwise it starts a new
//! entry; full nodes split.
//!
//! Two roles in this reproduction:
//!
//! * the **comparison baseline** — the paper (following the Data Bubbles
//!   work) argues that data bubbles beat CF-based summaries for
//!   hierarchical clustering; [`cf::CfSummary`] implements
//!   [`idb_core::DataSummary`] so leaf CFs feed the same OPTICS pipeline;
//! * the **extent-threshold contrast** — the global threshold `T` is
//!   exactly the "spatial extent as quality measure" that Section 4.1
//!   argues against and Figure 7 demonstrates failing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cf;
pub mod tree;

pub use cf::CfSummary;
pub use tree::CfTree;
