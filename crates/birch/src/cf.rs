//! Clustering features and their summary view.
//!
//! A clustering feature is the same `(n, LS, SS)` triple as a data bubble's
//! sufficient statistics ([`SufficientStats`]); what differs is how BIRCH
//! uses it (absorb-under-threshold) and which derived quantity gates
//! absorption (the *diameter* — the average pairwise distance, i.e. the
//! bubble extent).

use idb_core::{DataSummary, SufficientStats};

/// One clustering feature: `(n, LS, SS)` plus BIRCH's derived quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct CfSummary {
    stats: SufficientStats,
}

impl CfSummary {
    /// An empty CF for points of dimensionality `dim`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            stats: SufficientStats::new(dim),
        }
    }

    /// A CF absorbing a single point.
    #[must_use]
    pub fn from_point(p: &[f64]) -> Self {
        let mut cf = Self::new(p.len());
        cf.stats.add(p);
        cf
    }

    /// The underlying sufficient statistics.
    #[must_use]
    pub fn stats(&self) -> &SufficientStats {
        &self.stats
    }

    /// Absorbs one point.
    pub fn add(&mut self, p: &[f64]) {
        self.stats.add(p);
    }

    /// CF additivity: merges another feature into this one.
    pub fn merge(&mut self, other: &Self) {
        self.stats.merge(other.stats());
    }

    /// Centroid `LS / n`; `None` when empty.
    #[must_use]
    pub fn centroid(&self) -> Option<Vec<f64>> {
        self.stats.rep()
    }

    /// BIRCH diameter: the average pairwise distance among the points
    /// (equal to the data-bubble extent by construction).
    #[must_use]
    pub fn diameter(&self) -> f64 {
        self.stats.extent()
    }

    /// BIRCH radius: root mean squared distance of the points to the
    /// centroid, `sqrt(SS/n − |LS/n|²)` (clamped at zero).
    #[must_use]
    pub fn radius(&self) -> f64 {
        let n = self.stats.n();
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        let c_sq: f64 = self
            .stats
            .linear_sum()
            .iter()
            .map(|&l| (l / n) * (l / n))
            .sum();
        (self.stats.square_sum() / n - c_sq).max(0.0).sqrt()
    }

    /// Diameter the feature would have after absorbing `p`, computed from
    /// the merged statistics without mutating the feature.
    #[must_use]
    pub fn diameter_with(&self, p: &[f64]) -> f64 {
        let mut tmp = self.clone();
        tmp.add(p);
        tmp.diameter()
    }
}

impl DataSummary for CfSummary {
    fn dim(&self) -> usize {
        self.stats.dim()
    }
    fn n(&self) -> u64 {
        self.stats.n()
    }
    fn rep(&self) -> Vec<f64> {
        self.stats
            .rep()
            .expect("rep() of an empty clustering feature")
    }
    fn extent(&self) -> f64 {
        self.stats.extent()
    }
    fn nn_dist(&self, k: usize) -> f64 {
        self.stats.nn_dist(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_point_and_absorb() {
        let mut cf = CfSummary::from_point(&[1.0, 1.0]);
        cf.add(&[3.0, 3.0]);
        assert_eq!(cf.n(), 2);
        assert_eq!(cf.centroid().unwrap(), vec![2.0, 2.0]);
        // Two points at distance 2√2: diameter = 2√2.
        assert!((cf.diameter() - 8f64.sqrt()).abs() < 1e-12);
        // Radius = distance from centroid = √2.
        assert!((cf.radius() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn additivity() {
        let mut a = CfSummary::from_point(&[0.0]);
        a.add(&[2.0]);
        let mut b = CfSummary::from_point(&[10.0]);
        b.add(&[12.0]);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut direct = CfSummary::new(1);
        for p in [[0.0], [2.0], [10.0], [12.0]] {
            direct.add(&p);
        }
        assert_eq!(merged, direct);
    }

    #[test]
    fn diameter_with_previews_absorption() {
        let mut cf = CfSummary::from_point(&[0.0]);
        cf.add(&[1.0]);
        let before = cf.clone();
        let d = cf.diameter_with(&[10.0]);
        assert_eq!(cf, before, "preview must not mutate");
        let mut abs = cf.clone();
        abs.add(&[10.0]);
        assert!((d - abs.diameter()).abs() < 1e-12);
        assert!(d > cf.diameter());
    }

    #[test]
    fn empty_feature_derived_quantities() {
        let cf = CfSummary::new(3);
        assert_eq!(cf.n(), 0);
        assert!(cf.centroid().is_none());
        assert_eq!(cf.diameter(), 0.0);
        assert_eq!(cf.radius(), 0.0);
    }

    #[test]
    fn summary_trait_matches_bubble_semantics() {
        let mut cf = CfSummary::new(2);
        for i in 0..50 {
            let t = i as f64 * 0.13;
            cf.add(&[5.0 + t.sin(), 5.0 + t.cos()]);
        }
        assert_eq!(cf.dim(), 2);
        assert_eq!(cf.n(), 50);
        assert!(cf.extent() > 0.0);
        assert!(cf.nn_dist(1) < cf.nn_dist(10));
    }
}
