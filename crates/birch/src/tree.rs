//! The CF-tree: BIRCH's height-balanced insertion structure.
//!
//! Parameters: branching factor `B` (maximum children of an internal
//! node), leaf capacity `L` (maximum clustering features per leaf) and the
//! absorption threshold `T` — a new point is absorbed by the closest leaf
//! entry iff the entry's *diameter* stays at most `T`, otherwise it starts
//! a new entry; overfull nodes split along their two farthest-apart
//! entries, and splits propagate upward (growing the tree at the root).
//!
//! The global, fixed `T` is precisely the "extent as a quality threshold"
//! design the paper's Section 4.1 critiques: it equalizes the spatial size
//! of all summaries regardless of how many points they hold.

use crate::cf::CfSummary;
use idb_core::DataSummary;
use idb_geometry::dist;

/// Node payload: either leaf entries (CFs) or child nodes.
#[derive(Debug, Clone)]
enum Children {
    Leaf(Vec<CfSummary>),
    Internal(Vec<Node>),
}

#[derive(Debug, Clone)]
struct Node {
    /// Aggregate CF of the whole subtree.
    cf: CfSummary,
    children: Children,
}

impl Node {
    fn new_leaf(dim: usize) -> Self {
        Self {
            cf: CfSummary::new(dim),
            children: Children::Leaf(Vec::new()),
        }
    }

    fn centroid_distance(&self, p: &[f64]) -> f64 {
        match self.cf.centroid() {
            Some(c) => dist(&c, p),
            None => f64::INFINITY,
        }
    }
}

/// A CF-tree.
///
/// # Examples
/// ```
/// use idb_birch::CfTree;
/// use idb_core::DataSummary;
///
/// let mut tree = CfTree::new(1, 4, 8, 2.0);
/// for i in 0..50 {
///     tree.insert(&[i as f64 % 2.0]);        // dense spot near 0..1
///     tree.insert(&[100.0 + i as f64 % 2.0]); // dense spot near 100..101
/// }
/// let leaves = tree.leaf_entries();
/// assert_eq!(leaves.len(), 2);
/// assert_eq!(leaves.iter().map(|l| l.n()).sum::<u64>(), 100);
/// assert!(leaves.iter().all(|l| l.diameter() <= 2.0));
/// ```
#[derive(Debug, Clone)]
pub struct CfTree {
    dim: usize,
    branching: usize,
    leaf_capacity: usize,
    threshold: f64,
    root: Node,
    points: u64,
}

impl CfTree {
    /// Creates an empty tree.
    ///
    /// # Panics
    /// Panics if `dim == 0`, `branching < 2`, `leaf_capacity < 2` or the
    /// threshold is negative/NaN.
    #[must_use]
    pub fn new(dim: usize, branching: usize, leaf_capacity: usize, threshold: f64) -> Self {
        assert!(dim > 0, "CfTree requires dim > 0");
        assert!(branching >= 2, "branching factor must be at least 2");
        assert!(leaf_capacity >= 2, "leaf capacity must be at least 2");
        assert!(threshold >= 0.0, "threshold must be non-negative");
        Self {
            dim,
            branching,
            leaf_capacity,
            threshold,
            root: Node::new_leaf(dim),
            points: 0,
        }
    }

    /// Number of absorbed points.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.points
    }

    /// `true` when no point was inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points == 0
    }

    /// The absorption threshold `T`.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Inserts a point.
    ///
    /// # Panics
    /// Panics if the point's dimensionality differs from the tree's.
    pub fn insert(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        self.points += 1;
        if let Some(sibling) = Self::insert_rec(
            &mut self.root,
            p,
            self.threshold,
            self.branching,
            self.leaf_capacity,
        ) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::new_leaf(self.dim));
            let mut cf = old_root.cf.clone();
            cf.merge(&sibling.cf);
            self.root = Node {
                cf,
                children: Children::Internal(vec![old_root, sibling]),
            };
        }
    }

    /// Recursive insertion; returns a new sibling when `node` split.
    fn insert_rec(
        node: &mut Node,
        p: &[f64],
        threshold: f64,
        branching: usize,
        leaf_capacity: usize,
    ) -> Option<Node> {
        node.cf.add(p);
        match &mut node.children {
            Children::Leaf(entries) => {
                // Closest entry by centroid.
                let closest = entries
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (i, e.centroid().map_or(f64::INFINITY, |c| dist(&c, p))))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i);
                match closest {
                    Some(i) if entries[i].diameter_with(p) <= threshold => {
                        entries[i].add(p);
                        None
                    }
                    _ => {
                        entries.push(CfSummary::from_point(p));
                        if entries.len() > leaf_capacity {
                            Some(Self::split_leaf(node))
                        } else {
                            None
                        }
                    }
                }
            }
            Children::Internal(kids) => {
                let i = kids
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        a.1.centroid_distance(p)
                            .partial_cmp(&b.1.centroid_distance(p))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i)
                    .expect("internal nodes always have children");
                if let Some(sibling) =
                    Self::insert_rec(&mut kids[i], p, threshold, branching, leaf_capacity)
                {
                    kids.push(sibling);
                    if kids.len() > branching {
                        return Some(Self::split_internal(node));
                    }
                }
                None
            }
        }
    }

    /// Splits an overfull leaf along its two farthest-apart entries,
    /// returning the new sibling. `node.cf` is recomputed for both halves.
    fn split_leaf(node: &mut Node) -> Node {
        let Children::Leaf(entries) = &mut node.children else {
            unreachable!("split_leaf on an internal node");
        };
        let taken = std::mem::take(entries);
        let (ia, ib) = farthest_pair(&taken, |e| e.centroid().expect("leaf entries non-empty"));
        let mut left: Vec<CfSummary> = Vec::with_capacity(taken.len());
        let mut right: Vec<CfSummary> = Vec::with_capacity(taken.len());
        let ca = taken[ia].centroid().expect("non-empty");
        let cb = taken[ib].centroid().expect("non-empty");
        for (i, e) in taken.into_iter().enumerate() {
            let c = e.centroid().expect("non-empty");
            if i == ia || (i != ib && dist(&c, &ca) <= dist(&c, &cb)) {
                left.push(e);
            } else {
                right.push(e);
            }
        }
        let dim = node.cf.dim();
        let agg = |entries: &[CfSummary]| {
            let mut cf = CfSummary::new(dim);
            for e in entries {
                cf.merge(e);
            }
            cf
        };
        node.cf = agg(&left);
        let sibling_cf = agg(&right);
        node.children = Children::Leaf(left);
        Node {
            cf: sibling_cf,
            children: Children::Leaf(right),
        }
    }

    /// Splits an overfull internal node along its two farthest children.
    fn split_internal(node: &mut Node) -> Node {
        let Children::Internal(kids) = &mut node.children else {
            unreachable!("split_internal on a leaf");
        };
        let taken = std::mem::take(kids);
        let (ia, ib) = farthest_pair(&taken, |n| n.cf.centroid().expect("children non-empty"));
        let ca = taken[ia].cf.centroid().expect("non-empty");
        let cb = taken[ib].cf.centroid().expect("non-empty");
        let mut left = Vec::with_capacity(taken.len());
        let mut right = Vec::with_capacity(taken.len());
        for (i, n) in taken.into_iter().enumerate() {
            let c = n.cf.centroid().expect("non-empty");
            if i == ia || (i != ib && dist(&c, &ca) <= dist(&c, &cb)) {
                left.push(n);
            } else {
                right.push(n);
            }
        }
        let dim = node.cf.dim();
        let agg = |nodes: &[Node]| {
            let mut cf = CfSummary::new(dim);
            for n in nodes {
                cf.merge(&n.cf);
            }
            cf
        };
        node.cf = agg(&left);
        let sibling_cf = agg(&right);
        node.children = Children::Internal(left);
        Node {
            cf: sibling_cf,
            children: Children::Internal(right),
        }
    }

    /// All leaf clustering features, left to right — the summary set a
    /// clustering algorithm consumes.
    #[must_use]
    pub fn leaf_entries(&self) -> Vec<CfSummary> {
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            match &node.children {
                Children::Leaf(entries) => out.extend(entries.iter().cloned()),
                Children::Internal(kids) => stack.extend(kids.iter()),
            }
        }
        out
    }

    /// Height of the tree (1 for a single leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Children::Internal(kids) = &node.children {
            h += 1;
            node = &kids[0];
        }
        h
    }
}

/// Indices of the two elements whose centroids are farthest apart
/// (O(n²); node fan-outs are small constants).
fn farthest_pair<T, F: Fn(&T) -> Vec<f64>>(items: &[T], centroid: F) -> (usize, usize) {
    debug_assert!(items.len() >= 2);
    let cs: Vec<Vec<f64>> = items.iter().map(centroid).collect();
    let mut best = (0usize, 1usize, -1.0f64);
    for i in 0..cs.len() {
        for j in (i + 1)..cs.len() {
            let d = dist(&cs[i], &cs[j]);
            if d > best.2 {
                best = (i, j, d);
            }
        }
    }
    (best.0, best.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_points_under_threshold() {
        let mut t = CfTree::new(2, 4, 4, 10.0);
        for i in 0..50 {
            t.insert(&[(i % 5) as f64 * 0.1, 0.0]);
        }
        assert_eq!(t.len(), 50);
        // Everything fits in one entry: the spread is far below T.
        let leaves = t.leaf_entries();
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].n(), 50);
    }

    #[test]
    fn separate_clusters_get_separate_entries() {
        let mut t = CfTree::new(2, 4, 8, 5.0);
        for i in 0..30 {
            t.insert(&[i as f64 * 0.01, 0.0]);
            t.insert(&[100.0 + i as f64 * 0.01, 0.0]);
        }
        let leaves = t.leaf_entries();
        assert_eq!(leaves.len(), 2);
        let total: u64 = leaves.iter().map(CfSummary::n).sum();
        assert_eq!(total, 60);
        for l in &leaves {
            assert!(l.diameter() <= 5.0, "threshold respected");
        }
    }

    #[test]
    fn point_count_is_preserved_through_splits() {
        let mut t = CfTree::new(2, 3, 3, 0.5);
        // 100 well-separated points force many entries and splits.
        for i in 0..100 {
            t.insert(&[(i % 10) as f64 * 10.0, (i / 10) as f64 * 10.0]);
        }
        let leaves = t.leaf_entries();
        let total: u64 = leaves.iter().map(CfSummary::n).sum();
        assert_eq!(total, 100);
        assert!(leaves.len() >= 10, "distinct locations stay distinct");
        assert!(t.height() > 1, "splits grew the tree");
    }

    #[test]
    fn threshold_zero_gives_one_entry_per_distinct_point() {
        let mut t = CfTree::new(1, 4, 4, 0.0);
        for i in 0..20 {
            t.insert(&[i as f64]);
            t.insert(&[i as f64]); // duplicate: diameter stays 0, absorbed
        }
        let leaves = t.leaf_entries();
        assert_eq!(leaves.len(), 20);
        assert!(leaves.iter().all(|l| l.n() == 2));
    }

    #[test]
    fn aggregate_cf_is_consistent() {
        let mut t = CfTree::new(2, 3, 3, 1.0);
        let mut direct = CfSummary::new(2);
        for i in 0..200 {
            let p = [(i % 17) as f64 * 3.0, (i % 13) as f64 * 7.0];
            t.insert(&p);
            direct.add(&p);
        }
        let leaves = t.leaf_entries();
        let mut agg = CfSummary::new(2);
        for l in &leaves {
            agg.merge(l);
        }
        assert_eq!(agg.n(), direct.n());
        for (a, b) in agg
            .stats()
            .linear_sum()
            .iter()
            .zip(direct.stats().linear_sum())
        {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_tree() {
        let t = CfTree::new(3, 4, 4, 1.0);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.leaf_entries().is_empty());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_dim_panics() {
        let mut t = CfTree::new(2, 4, 4, 1.0);
        t.insert(&[1.0]);
    }
}
