//! Property-based tests for the CF-tree.
//!
//! Whatever the insertion order and parameters, a CF-tree must (a) never
//! lose or duplicate a point, (b) keep every leaf entry's diameter within
//! the threshold, and (c) keep the additive statistics consistent with a
//! direct one-pass computation.

use idb_birch::{CfSummary, CfTree};
use idb_core::DataSummary;
use proptest::prelude::*;

fn points(dim: usize, max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, dim), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn point_count_preserved(
        pts in points(3, 200),
        branching in 2usize..6,
        leaf_cap in 2usize..8,
        threshold in 0.0f64..30.0,
    ) {
        let mut tree = CfTree::new(3, branching, leaf_cap, threshold);
        for p in &pts {
            tree.insert(p);
        }
        prop_assert_eq!(tree.len(), pts.len() as u64);
        let total: u64 = tree.leaf_entries().iter().map(CfSummary::n).sum();
        prop_assert_eq!(total, pts.len() as u64);
    }

    #[test]
    fn threshold_respected_by_every_leaf(
        pts in points(2, 150),
        threshold in 0.1f64..20.0,
    ) {
        let mut tree = CfTree::new(2, 4, 8, threshold);
        for p in &pts {
            tree.insert(p);
        }
        for leaf in tree.leaf_entries() {
            // The absorb test uses the post-insertion diameter, so every
            // multi-point entry obeys the threshold exactly.
            prop_assert!(
                leaf.diameter() <= threshold + 1e-9,
                "diameter {} > threshold {threshold}",
                leaf.diameter()
            );
        }
    }

    #[test]
    fn aggregate_statistics_match_direct_computation(
        pts in points(2, 150),
        threshold in 0.0f64..10.0,
    ) {
        let mut tree = CfTree::new(2, 3, 4, threshold);
        let mut direct = CfSummary::new(2);
        for p in &pts {
            tree.insert(p);
            direct.add(p);
        }
        let mut agg = CfSummary::new(2);
        for leaf in tree.leaf_entries() {
            prop_assert!(leaf.n() > 0, "no empty leaf entries");
            agg.merge(&leaf);
        }
        prop_assert_eq!(agg.n(), direct.n());
        for (a, b) in agg.stats().linear_sum().iter().zip(direct.stats().linear_sum()) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
        let ss_tol = 1e-9 * (1.0 + direct.stats().square_sum().abs());
        prop_assert!((agg.stats().square_sum() - direct.stats().square_sum()).abs() < ss_tol.max(1e-6));
    }

    #[test]
    fn radius_never_exceeds_diameter_bound(pts in points(2, 100)) {
        // For any point set, radius <= diameter (in fact diameter² =
        // 2·(n/(n−1))·radius², so radius < diameter for n >= 2).
        let mut cf = CfSummary::new(2);
        for p in &pts {
            cf.add(p);
        }
        if cf.n() >= 2 {
            prop_assert!(cf.radius() <= cf.diameter() + 1e-9);
        }
    }
}
