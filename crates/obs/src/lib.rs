//! Zero-dependency observability for the incremental data bubbles stack:
//! a metrics registry of named monotonic counters and fixed-bucket
//! latency histograms, and a structured op journal of typed events behind
//! a pluggable [`Recorder`].
//!
//! The paper's evaluation (Figures 8–10) is built on per-operation cost
//! accounting — pruned vs. computed distances, maintenance work per
//! update batch, which structural operations fire. This crate makes that
//! accounting first-class and always-on-capable:
//!
//! * [`MetricsRegistry`] — lock-free counters and histograms; parallel
//!   sections accumulate into per-worker shards folded in chunk order, so
//!   counter values stay bit-identical across `Parallelism` modes;
//! * [`Event`] / [`EventKind`] — one typed journal entry per structural
//!   op (insert, delete, merge-away, split, retire, grow, maintenance
//!   round, audit/repair), durability action (WAL append/commit,
//!   checkpoint) and recovery step, carrying cause, affected bubble ids
//!   and duration;
//! * [`Recorder`] — where events go: [`NullRecorder`] (default, free),
//!   [`RingRecorder`] (tests), [`JsonlRecorder`] (files);
//! * [`Obs`] — the cheap cloneable handle instrumented components carry,
//!   with `IDB_OBS` environment wiring;
//! * [`check_journal`] — the journal invariants the robustness suites and
//!   the CI checker assert.
//!
//! Event streams are emitted only from the thread driving the maintainer,
//! so the journal is deterministic; the duration field is the single
//! wall-clock-dependent value and equivalence suites compare through
//! [`Event::masked`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod event;
mod metrics;
mod obs;
mod recorder;

pub use check::{check_journal, check_journal_sharded, JournalSummary};
pub use event::{Cause, Event, EventKind, SinkOp};
pub use metrics::{Counter, Histogram, MetricsRegistry, MetricsShard, LATENCY_BOUNDS_US};
pub use obs::{Obs, ObsTimer};
pub use recorder::{JsonlRecorder, NullRecorder, Recorder, RingRecorder};
