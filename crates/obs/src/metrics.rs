//! Named monotonic counters and fixed-bucket latency histograms.
//!
//! The hot path is lock-free: handles are `Arc`-shared atomics updated
//! with relaxed ordering; the registry's mutex is touched only when a
//! metric is first named. Parallel sections never update shared metrics
//! directly — each worker accumulates into its own shard (for the
//! assignment engines that shard *is* the per-chunk `SearchStats`) and
//! the coordinator folds the shards into the registry **in chunk order**,
//! so `Parallelism::Threads(n)` produces bit-identical counter values to
//! `Parallelism::Serial`. Histogram *latency* observations are wall-clock
//! and therefore excluded from the bit-identity contract; counters and
//! value-distribution histograms (e.g. group-commit sizes) are covered.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default histogram bucket upper bounds for latencies, in microseconds:
/// powers of four from 1µs to ~17s, plus an overflow bucket.
pub const LATENCY_BOUNDS_US: [u64; 13] = [
    1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
];

/// A named monotonic counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the value buckets; one extra overflow bucket
    /// follows the last bound.
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram. Cloning shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let core = &*self.0;
        let i = core.bounds.partition_point(|&b| b < value);
        core.buckets[i].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }

    /// Per-bucket observation counts (one overflow bucket past the last
    /// bound).
    #[must_use]
    pub fn buckets(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named counters and histograms.
///
/// Handles returned by [`MetricsRegistry::counter`] /
/// [`MetricsRegistry::histogram`] are cheap to clone and update the same
/// underlying cells, so hot paths should look a handle up once and hold
/// on to it.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The latency histogram named `name` (bounds
    /// [`LATENCY_BOUNDS_US`]), created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &LATENCY_BOUNDS_US)
    }

    /// The histogram named `name` with explicit bucket bounds, created on
    /// first use. An existing histogram keeps its original bounds.
    #[must_use]
    pub fn histogram_with(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// A name-sorted snapshot of every counter value — the deterministic
    /// slice of the registry (histogram latency observations are
    /// wall-clock).
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .counters
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// Renders every metric as plain text, one per line, sorted by name:
    ///
    /// ```text
    /// counter assign.pruned.computed 123456
    /// hist    wal.commit_us count=12 sum=3456 buckets=[le1:0 le4:1 ... inf:0]
    /// ```
    #[must_use]
    pub fn dump(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, c) in &inner.counters {
            let _ = writeln!(out, "counter {name} {}", c.get());
        }
        for (name, h) in &inner.histograms {
            let _ = write!(out, "hist    {name} count={} sum={}", h.count(), h.sum());
            out.push_str(" buckets=[");
            let buckets = h.buckets();
            for (i, n) in buckets.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                match h.bounds().get(i) {
                    Some(b) => {
                        let _ = write!(out, "le{b}:{n}");
                    }
                    None => {
                        let _ = write!(out, "inf:{n}");
                    }
                }
            }
            out.push_str("]\n");
        }
        out
    }
}

/// A private, single-threaded accumulator for parallel sections: workers
/// add into their own shard without synchronization, and the coordinator
/// folds the shards into the shared registry in chunk order.
#[derive(Debug, Clone, Default)]
pub struct MetricsShard {
    counts: BTreeMap<String, u64>,
}

impl MetricsShard {
    /// An empty shard.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the shard-local counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counts.entry(name.to_string()).or_default() += n;
    }

    /// Folds this shard into `registry` and clears it.
    pub fn merge_into(&mut self, registry: &MetricsRegistry) {
        for (name, n) in std::mem::take(&mut self.counts) {
            registry.counter(&name).add(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_and_monotonic() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.calls");
        let b = reg.counter("x.calls");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x.calls").get(), 5);
        assert_eq!(reg.counters(), vec![("x.calls".to_string(), 5)]);
    }

    #[test]
    fn histogram_buckets_values_correctly() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("sizes", &[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1045);
        // le1: {0,1}, le4: {2,4}, le16: {5,16}, inf: {17,1000}
        assert_eq!(h.buckets(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn histogram_keeps_first_bounds() {
        let reg = MetricsRegistry::new();
        let h1 = reg.histogram_with("h", &[10, 20]);
        let h2 = reg.histogram_with("h", &[1]);
        assert_eq!(h2.bounds(), &[10, 20]);
        h1.record(15);
        assert_eq!(h2.count(), 1);
    }

    #[test]
    fn shards_merge_into_the_registry() {
        let reg = MetricsRegistry::new();
        let mut s1 = MetricsShard::new();
        let mut s2 = MetricsShard::new();
        s1.add("n", 3);
        s2.add("n", 4);
        s2.add("m", 1);
        // Chunk order: shard 1 then shard 2. Addition is commutative, so
        // any merge order lands on the same totals — the ordering
        // discipline matters for event streams, not counters, but the
        // fold still walks shards in chunk order by construction.
        s1.merge_into(&reg);
        s2.merge_into(&reg);
        assert_eq!(
            reg.counters(),
            vec![("m".to_string(), 1), ("n".to_string(), 7)]
        );
        assert!(s1.counts.is_empty() && s2.counts.is_empty());
    }

    #[test]
    fn dump_renders_sorted_plain_text() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").add(1);
        reg.histogram_with("lat", &[1, 4]).record(3);
        let dump = reg.dump();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines[0], "counter a.first 1");
        assert_eq!(lines[1], "counter b.second 2");
        assert!(lines[2].starts_with("hist    lat count=1 sum=3"));
        assert!(lines[2].contains("le4:1"));
    }
}
