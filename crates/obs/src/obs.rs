//! The [`Obs`] handle: one cheap, cloneable bundle of recorder + metrics
//! registry that instrumented components carry around.

use crate::event::{Event, EventKind};
use crate::metrics::MetricsRegistry;
use crate::recorder::{JsonlRecorder, NullRecorder, Recorder};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Instant;

/// The observability handle threaded through the maintainer stack.
///
/// Bundles a journal [`Recorder`] and a [`MetricsRegistry`], plus cached
/// enable flags so disabled observability costs one branch per emission
/// site. Cloning shares both underlying sinks — a
/// [`DurableMaintainer`](https://docs.rs) holding a clone of the
/// summarizer's handle journals into the same stream.
#[derive(Clone)]
pub struct Obs {
    recorder: Arc<dyn Recorder>,
    metrics: Arc<MetricsRegistry>,
    journal_on: bool,
    metrics_on: bool,
    shard: Option<u32>,
}

impl Obs {
    /// Fully inert observability: [`NullRecorder`], metrics off. This is
    /// the default everywhere and must stay free.
    #[must_use]
    pub fn disabled() -> Self {
        Obs {
            recorder: Arc::new(NullRecorder),
            metrics: Arc::new(MetricsRegistry::new()),
            journal_on: false,
            metrics_on: false,
            shard: None,
        }
    }

    /// Journal into `recorder` (if it reports itself enabled) and collect
    /// metrics into `metrics`.
    #[must_use]
    pub fn new(recorder: Arc<dyn Recorder>, metrics: Arc<MetricsRegistry>) -> Self {
        let journal_on = recorder.is_enabled();
        Obs {
            recorder,
            metrics,
            journal_on,
            metrics_on: true,
            shard: None,
        }
    }

    /// Journal into `recorder` with a fresh metrics registry.
    #[must_use]
    pub fn with_recorder(recorder: Arc<dyn Recorder>) -> Self {
        Obs::new(recorder, Arc::new(MetricsRegistry::new()))
    }

    /// Collect metrics only; no journal.
    #[must_use]
    pub fn metrics_only() -> Self {
        Obs::new(Arc::new(NullRecorder), Arc::new(MetricsRegistry::new()))
    }

    /// The observability the `IDB_OBS` environment variable asks for:
    ///
    /// * unset / `off` / `0` / `none` — [`Obs::disabled`];
    /// * `metrics` — metrics only;
    /// * `jsonl` — a [`JsonlRecorder`] writing
    ///   `journal-<pid>-<n>.jsonl` under `IDB_OBS_DIR` (default: an
    ///   `idb-obs` directory under the system temp dir), plus metrics.
    ///
    /// Anything else warns once on stderr and falls back to disabled —
    /// observability must never take the host down.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("IDB_OBS") {
            Err(_) => Obs::disabled(),
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "" | "off" | "0" | "none" => Obs::disabled(),
                "metrics" => Obs::metrics_only(),
                "jsonl" => Obs::with_recorder(Arc::new(JsonlRecorder::create(next_journal_path()))),
                other => {
                    static WARN: Once = Once::new();
                    let msg = format!(
                        "idb-obs: unrecognized IDB_OBS value {other:?} \
                         (expected off|metrics|jsonl); observability disabled"
                    );
                    WARN.call_once(|| eprintln!("{msg}"));
                    Obs::disabled()
                }
            },
        }
    }

    /// A clone of this handle that stamps every emitted event with the
    /// given shard (maintainer-domain) tag. The clone shares the recorder
    /// and metrics registry, so a sharded deployment writes one combined
    /// journal whose events [`check_journal_sharded`](crate::check_journal_sharded)
    /// can demultiplex per domain.
    #[must_use]
    pub fn tagged(&self, shard: u32) -> Self {
        let mut o = self.clone();
        o.shard = Some(shard);
        o
    }

    /// The shard tag stamped onto emitted events, if any.
    #[must_use]
    pub fn shard(&self) -> Option<u32> {
        self.shard
    }

    /// Whether any emission site should do work at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.journal_on || self.metrics_on
    }

    /// Whether journal events are being recorded.
    #[must_use]
    pub fn journal_on(&self) -> bool {
        self.journal_on
    }

    /// Whether metrics are being collected.
    #[must_use]
    pub fn metrics_on(&self) -> bool {
        self.metrics_on
    }

    /// The journal recorder.
    #[must_use]
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// The metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Starts a stopwatch — a live one only when observability is
    /// enabled, so disabled handles never read the clock.
    #[must_use]
    pub fn start(&self) -> ObsTimer {
        ObsTimer(self.enabled().then(Instant::now))
    }

    /// Emits one journal event, if journaling is on.
    pub fn emit(&self, kind: EventKind, us: u64) {
        if self.journal_on {
            self.recorder.record(Event {
                kind,
                us,
                shard: self.shard,
            });
        }
    }

    /// Emits one journal event stamped with the stopwatch's elapsed time.
    pub fn emit_timed(&self, kind: EventKind, timer: &ObsTimer) {
        self.emit(kind, timer.us());
    }

    /// Flushes the journal recorder.
    pub fn flush(&self) {
        self.recorder.flush();
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("journal_on", &self.journal_on)
            .field("metrics_on", &self.metrics_on)
            .field("shard", &self.shard)
            .finish_non_exhaustive()
    }
}

/// A stopwatch handed out by [`Obs::start`]: live only when observability
/// is enabled.
#[derive(Debug, Clone, Copy)]
pub struct ObsTimer(Option<Instant>);

impl ObsTimer {
    /// Elapsed microseconds since [`Obs::start`]; zero when the handle was
    /// disabled.
    #[must_use]
    pub fn us(&self) -> u64 {
        self.0.map_or(0, |t0| {
            u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
        })
    }
}

/// A process-unique journal path under the `IDB_OBS_DIR` (or temp)
/// directory.
fn next_journal_path() -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::var_os("IDB_OBS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("idb-obs"));
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("journal-{}-{n}.jsonl", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RingRecorder;

    #[test]
    fn disabled_obs_emits_nothing_and_skips_the_clock() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        let t = obs.start();
        obs.emit(EventKind::Insert { bubble: 0 }, t.us());
        assert_eq!(t.us(), 0);
    }

    #[test]
    fn ring_backed_obs_records_in_order() {
        let ring = Arc::new(RingRecorder::new());
        let obs = Obs::with_recorder(ring.clone());
        assert!(obs.journal_on() && obs.metrics_on());
        obs.emit(EventKind::Insert { bubble: 1 }, 5);
        obs.emit(EventKind::Delete { bubble: 2 }, 6);
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Insert { bubble: 1 });
        assert_eq!(events[1].kind, EventKind::Delete { bubble: 2 });
    }

    #[test]
    fn null_recorder_obs_keeps_metrics_but_no_journal() {
        let obs = Obs::with_recorder(Arc::new(NullRecorder));
        assert!(!obs.journal_on());
        assert!(obs.metrics_on());
        obs.emit(EventKind::Insert { bubble: 1 }, 5); // Dropped.
        obs.metrics().counter("x").inc();
        assert_eq!(obs.metrics().counters(), vec![("x".to_string(), 1)]);
    }

    #[test]
    fn tagged_handles_stamp_the_shard_and_share_sinks() {
        let ring = Arc::new(RingRecorder::new());
        let obs = Obs::with_recorder(ring.clone());
        let s0 = obs.tagged(0);
        let s3 = obs.tagged(3);
        obs.emit(EventKind::Insert { bubble: 1 }, 0);
        s0.emit(EventKind::Insert { bubble: 2 }, 0);
        s3.emit(EventKind::Delete { bubble: 3 }, 0);
        let events = ring.events();
        assert_eq!(
            events.iter().map(|e| e.shard).collect::<Vec<_>>(),
            vec![None, Some(0), Some(3)]
        );
        assert_eq!(s3.shard(), Some(3));
        assert_eq!(obs.shard(), None);
    }

    #[test]
    fn clones_share_sinks() {
        let ring = Arc::new(RingRecorder::new());
        let obs = Obs::with_recorder(ring.clone());
        let clone = obs.clone();
        clone.emit(EventKind::Insert { bubble: 9 }, 0);
        obs.metrics().counter("shared").inc();
        assert_eq!(ring.len(), 1);
        assert_eq!(clone.metrics().counter("shared").get(), 1);
    }
}
