//! Journal invariant checking — the contract the fault-injection and
//! crash-consistency suites (and the CI `journal_check` tool) assert
//! against a recorded event stream.
//!
//! Invariants over one maintainer's journal:
//!
//! 1. **Split pairing** — every [`EventKind::Split`] is immediately
//!    preceded (among structural events) by the [`EventKind::MergeAway`]
//!    that freed its donor seed, or by the [`EventKind::Grow`] that
//!    spawned it; the donor ids must match.
//! 2. **Batch accounting** — a [`EventKind::BatchApplied`] reports
//!    exactly the per-point [`EventKind::Insert`]/[`EventKind::Delete`]
//!    events emitted since the previous structural boundary.
//! 3. **Commit groups** — every [`EventKind::WalCommit`] flushes at least
//!    one record.
//! 4. **Rotation monotonicity** — the `base` of successive
//!    [`EventKind::WalRotate`] events never decreases: segments are
//!    sealed in batch order.
//! 5. **Compaction monotonicity** — every [`EventKind::WalCompact`]
//!    reclaims at least one segment and its `floor` never decreases:
//!    checkpoint coverage only moves forward.
//! 6. **Chunk streams** — within one streaming checkpoint's
//!    [`EventKind::CheckpointChunk`] events, `written` is strictly
//!    increasing, `total` is constant, and `written <= total`; the
//!    [`EventKind::Checkpoint`] that closes the stream sees
//!    `written == total`. A trailing incomplete stream (crash mid
//!    checkpoint) is tolerated.
//! 7. **Tier traffic** — every [`EventKind::TierFetch`] reports a
//!    nonzero fetch count with nonzero bytes, and every
//!    [`EventKind::TierEvict`] a nonzero eviction count: zero-traffic
//!    windows are elided, never journaled.
//!
//! A sharded deployment interleaves several maintainers' events into one
//! journal; the invariants above only hold *per maintainer domain*, so
//! [`check_journal_sharded`] demultiplexes on [`Event::shard`] first and
//! checks each sub-stream independently.

use crate::event::{Event, EventKind};

/// Aggregate counts over a checked journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalSummary {
    /// Total events checked.
    pub events: u64,
    /// Structural events (see [`EventKind::is_structural`]).
    pub structural: u64,
    /// Per-point inserts.
    pub inserts: u64,
    /// Per-point deletes.
    pub deletes: u64,
    /// Applied batches.
    pub batches: u64,
    /// Merge-away operations.
    pub merges: u64,
    /// Splits.
    pub splits: u64,
    /// Retired bubbles.
    pub retires: u64,
    /// Grown bubbles.
    pub grows: u64,
    /// WAL commit groups.
    pub wal_commits: u64,
    /// WAL segment rotations.
    pub wal_rotations: u64,
    /// WAL compaction passes that reclaimed at least one segment.
    pub wal_compactions: u64,
    /// Checkpoints persisted.
    pub checkpoints: u64,
    /// Streaming-checkpoint chunks written.
    pub checkpoint_chunks: u64,
    /// Batches shed at the degraded-buffer cap.
    pub sheds: u64,
    /// Cold records demand-fetched across all `tier_fetch` events.
    pub tier_fetches: u64,
    /// Points evicted to the cold tier across all `tier_evict` events.
    pub tier_evictions: u64,
    /// Delta-clustering epochs.
    pub delta_epochs: u64,
}

/// Checks the journal invariants over `events`, returning aggregate
/// counts on success and a description naming the offending event index
/// on violation.
///
/// # Errors
/// Returns `Err` when any invariant is violated.
pub fn check_journal(events: &[Event]) -> Result<JournalSummary, String> {
    let mut summary = JournalSummary::default();
    // The previous *structural* event, for the split-pairing rule.
    let mut prev_structural: Option<(usize, &EventKind)> = None;
    // Per-point ops since the last structural boundary, for batch
    // accounting.
    let mut pending_inserts: u32 = 0;
    let mut pending_deletes: u32 = 0;
    // Monotonicity witnesses for the segmented-WAL events.
    let mut last_rotate_base: Option<u64> = None;
    let mut last_compact_floor: Option<u64> = None;
    // The open streaming-checkpoint chunk stream: (seq, written, total).
    let mut open_chunks: Option<(u64, u64, u64)> = None;

    for (i, ev) in events.iter().enumerate() {
        summary.events += 1;
        if ev.kind.is_structural() {
            summary.structural += 1;
        }
        match &ev.kind {
            EventKind::Insert { .. } => {
                summary.inserts += 1;
                pending_inserts += 1;
            }
            EventKind::Delete { .. } => {
                summary.deletes += 1;
                pending_deletes += 1;
            }
            EventKind::BatchApplied { inserts, deletes } => {
                summary.batches += 1;
                if *inserts != pending_inserts || *deletes != pending_deletes {
                    return Err(format!(
                        "event {i}: batch reports {inserts} inserts / {deletes} deletes \
                         but {pending_inserts} / {pending_deletes} per-point events \
                         were journaled since the last boundary"
                    ));
                }
                pending_inserts = 0;
                pending_deletes = 0;
            }
            EventKind::Split { donor, .. } => {
                summary.splits += 1;
                let paired = match prev_structural {
                    Some((_, EventKind::MergeAway { donor: d, .. })) => d == donor,
                    Some((_, EventKind::Grow { bubble, .. })) => bubble == donor,
                    _ => false,
                };
                if !paired {
                    return Err(format!(
                        "event {i}: split onto donor {donor} is not paired with a \
                         merge_away or grow of that bubble (previous structural \
                         event: {:?})",
                        prev_structural.map(|(j, k)| (j, k.tag()))
                    ));
                }
            }
            EventKind::MergeAway { .. } => summary.merges += 1,
            EventKind::RetireBubble { .. } => summary.retires += 1,
            EventKind::Grow { .. } => summary.grows += 1,
            EventKind::WalCommit { records, .. } => {
                summary.wal_commits += 1;
                if *records == 0 {
                    return Err(format!("event {i}: wal_commit with an empty group"));
                }
            }
            EventKind::WalRotate { base, .. } => {
                summary.wal_rotations += 1;
                if let Some(prev) = last_rotate_base {
                    if *base < prev {
                        return Err(format!(
                            "event {i}: wal_rotate base {base} went backwards (previous \
                             rotation sealed at {prev})"
                        ));
                    }
                }
                last_rotate_base = Some(*base);
            }
            EventKind::WalCompact {
                segments, floor, ..
            } => {
                summary.wal_compactions += 1;
                if *segments == 0 {
                    return Err(format!("event {i}: wal_compact reclaimed no segments"));
                }
                if let Some(prev) = last_compact_floor {
                    if *floor < prev {
                        return Err(format!(
                            "event {i}: wal_compact floor {floor} went backwards \
                             (previous floor {prev})"
                        ));
                    }
                }
                last_compact_floor = Some(*floor);
            }
            EventKind::Checkpoint { seq, .. } => {
                summary.checkpoints += 1;
                if let Some((cseq, written, total)) = open_chunks.take() {
                    if cseq == *seq && written != total {
                        return Err(format!(
                            "event {i}: checkpoint {seq} closed a chunk stream at \
                             {written} of {total} bytes"
                        ));
                    }
                }
            }
            EventKind::CheckpointChunk {
                seq,
                written,
                total,
            } => {
                summary.checkpoint_chunks += 1;
                if *written > *total {
                    return Err(format!(
                        "event {i}: checkpoint_chunk wrote {written} of only {total} bytes"
                    ));
                }
                if let Some((cseq, cwritten, ctotal)) = open_chunks {
                    if cseq == *seq {
                        if *written <= cwritten {
                            return Err(format!(
                                "event {i}: checkpoint_chunk for seq {seq} did not \
                                 advance ({written} after {cwritten})"
                            ));
                        }
                        if *total != ctotal {
                            return Err(format!(
                                "event {i}: checkpoint_chunk for seq {seq} changed its \
                                 total ({total} after {ctotal})"
                            ));
                        }
                    }
                    // A new seq abandons the previous stream: crash or
                    // typed abort mid-checkpoint, tolerated.
                }
                open_chunks = Some((*seq, *written, *total));
            }
            EventKind::StorageShed { .. } => summary.sheds += 1,
            EventKind::TierFetch { fetches, bytes } => {
                summary.tier_fetches += fetches;
                if *fetches == 0 {
                    return Err(format!(
                        "event {i}: tier_fetch with zero fetches (must be elided)"
                    ));
                }
                if *bytes == 0 {
                    return Err(format!(
                        "event {i}: tier_fetch of {fetches} records moved no bytes"
                    ));
                }
            }
            EventKind::TierEvict { evicted, .. } => {
                summary.tier_evictions += evicted;
                if *evicted == 0 {
                    return Err(format!(
                        "event {i}: tier_evict with zero evictions (must be elided)"
                    ));
                }
            }
            EventKind::DeltaEpoch { touched, total, .. } => {
                summary.delta_epochs += 1;
                if touched > total {
                    return Err(format!(
                        "event {i}: delta_epoch touched {touched} of only {total} slots"
                    ));
                }
            }
            _ => {}
        }
        if ev.kind.is_structural() {
            if !matches!(ev.kind, EventKind::Insert { .. } | EventKind::Delete { .. }) {
                pending_inserts = 0;
                pending_deletes = 0;
            }
            prev_structural = Some((i, &ev.kind));
        }
    }
    Ok(summary)
}

/// Checks a journal that may interleave events from several maintainer
/// domains (shards): events are grouped by [`Event::shard`] — preserving
/// each group's relative order — and [`check_journal`] runs per group.
///
/// Returns one `(shard, summary)` pair per domain present, untagged events
/// (`None`) first, then tagged domains in ascending shard order. A journal
/// with no shard tags behaves exactly like [`check_journal`]: one `None`
/// group.
///
/// # Errors
/// Returns `Err` naming the offending domain when any group violates an
/// invariant.
pub fn check_journal_sharded(
    events: &[Event],
) -> Result<Vec<(Option<u32>, JournalSummary)>, String> {
    let mut shards: Vec<Option<u32>> = events.iter().map(|e| e.shard).collect();
    shards.sort_unstable();
    shards.dedup();
    let mut out = Vec::with_capacity(shards.len());
    for shard in shards {
        let group: Vec<Event> = events
            .iter()
            .filter(|e| e.shard == shard)
            .cloned()
            .collect();
        let summary = check_journal(&group).map_err(|e| match shard {
            Some(s) => format!("shard {s}: {e}"),
            None => format!("untagged events: {e}"),
        })?;
        out.push((shard, summary));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Cause;

    fn ev(kind: EventKind) -> Event {
        Event::new(kind, 1)
    }

    fn ev_on(shard: u32, kind: EventKind) -> Event {
        let mut e = Event::new(kind, 1);
        e.shard = Some(shard);
        e
    }

    #[test]
    fn a_well_formed_journal_passes() {
        let events = vec![
            ev(EventKind::Build {
                points: 100,
                bubbles: 10,
            }),
            ev(EventKind::Delete { bubble: 1 }),
            ev(EventKind::Insert { bubble: 0 }),
            ev(EventKind::Insert { bubble: 2 }),
            ev(EventKind::BatchApplied {
                inserts: 2,
                deletes: 1,
            }),
            ev(EventKind::MergeAway {
                donor: 4,
                moved: 8,
                cause: Cause::Maintain,
            }),
            ev(EventKind::Split {
                over: 1,
                donor: 4,
                moved: 5,
                cause: Cause::Maintain,
            }),
            ev(EventKind::MaintainRound {
                merges: 1,
                splits: 1,
                cause: Cause::Maintain,
            }),
            ev(EventKind::Grow {
                from: 1,
                bubble: 10,
            }),
            ev(EventKind::Split {
                over: 1,
                donor: 10,
                moved: 4,
                cause: Cause::Adaptive,
            }),
            ev(EventKind::WalAppend {
                bytes: 100,
                records: 1,
            }),
            ev(EventKind::WalCommit {
                bytes: 100,
                records: 1,
            }),
            ev(EventKind::Checkpoint {
                seq: 1,
                covered: 1,
                bytes: 900,
            }),
        ];
        let summary = check_journal(&events).expect("well-formed");
        assert_eq!(summary.batches, 1);
        assert_eq!(summary.splits, 2);
        assert_eq!(summary.merges, 1);
        assert_eq!(summary.grows, 1);
        assert_eq!(summary.inserts, 2);
        assert_eq!(summary.deletes, 1);
        assert_eq!(summary.wal_commits, 1);
        assert_eq!(summary.checkpoints, 1);
    }

    #[test]
    fn an_unpaired_split_is_flagged() {
        let events = vec![
            ev(EventKind::Insert { bubble: 0 }),
            ev(EventKind::Split {
                over: 1,
                donor: 4,
                moved: 5,
                cause: Cause::Maintain,
            }),
        ];
        let err = check_journal(&events).unwrap_err();
        assert!(err.contains("not paired"), "{err}");
    }

    #[test]
    fn a_mismatched_donor_is_flagged() {
        let events = vec![
            ev(EventKind::MergeAway {
                donor: 3,
                moved: 8,
                cause: Cause::Maintain,
            }),
            ev(EventKind::Split {
                over: 1,
                donor: 4,
                moved: 5,
                cause: Cause::Maintain,
            }),
        ];
        assert!(check_journal(&events).is_err());
    }

    #[test]
    fn batch_accounting_mismatch_is_flagged() {
        let events = vec![
            ev(EventKind::Insert { bubble: 0 }),
            ev(EventKind::BatchApplied {
                inserts: 2,
                deletes: 0,
            }),
        ];
        let err = check_journal(&events).unwrap_err();
        assert!(err.contains("per-point events"), "{err}");
    }

    #[test]
    fn empty_commit_groups_are_flagged() {
        let events = vec![ev(EventKind::WalCommit {
            bytes: 0,
            records: 0,
        })];
        assert!(check_journal(&events).is_err());
    }

    #[test]
    fn delta_epochs_are_counted_and_bounded() {
        let events = vec![
            ev(EventKind::DeltaEpoch {
                touched: 2,
                total: 9,
                deltas: 1,
            }),
            ev(EventKind::DeltaEpoch {
                touched: 9,
                total: 9,
                deltas: 0,
            }),
        ];
        let summary = check_journal(&events).expect("well-formed");
        assert_eq!(summary.delta_epochs, 2);

        let bad = vec![ev(EventKind::DeltaEpoch {
            touched: 10,
            total: 9,
            deltas: 0,
        })];
        let err = check_journal(&bad).unwrap_err();
        assert!(err.contains("touched 10 of only 9"), "{err}");
    }

    #[test]
    fn rotation_bases_must_not_go_backwards() {
        let rotate = |base| {
            ev(EventKind::WalRotate {
                epoch: 1,
                seq: 1,
                base,
                sealed_bytes: 100,
            })
        };
        let good = vec![rotate(4), rotate(4), rotate(9)];
        let summary = check_journal(&good).expect("monotone bases");
        assert_eq!(summary.wal_rotations, 3);

        let bad = vec![rotate(9), rotate(4)];
        let err = check_journal(&bad).unwrap_err();
        assert!(err.contains("went backwards"), "{err}");
    }

    #[test]
    fn compaction_must_reclaim_and_floors_must_advance() {
        let compact = |segments, floor| {
            ev(EventKind::WalCompact {
                segments,
                bytes: 100,
                floor,
            })
        };
        let good = vec![compact(2, 8), compact(1, 8), compact(3, 20)];
        let summary = check_journal(&good).expect("monotone floors");
        assert_eq!(summary.wal_compactions, 3);

        let empty = vec![compact(0, 8)];
        assert!(check_journal(&empty).unwrap_err().contains("no segments"));

        let backwards = vec![compact(1, 8), compact(1, 4)];
        let err = check_journal(&backwards).unwrap_err();
        assert!(err.contains("went backwards"), "{err}");
    }

    #[test]
    fn chunk_streams_advance_and_close_exactly() {
        let chunk = |seq, written, total| {
            ev(EventKind::CheckpointChunk {
                seq,
                written,
                total,
            })
        };
        let close = |seq| {
            ev(EventKind::Checkpoint {
                seq,
                covered: 10,
                bytes: 30,
            })
        };
        let good = vec![
            chunk(2, 10, 30),
            chunk(2, 20, 30),
            chunk(2, 30, 30),
            close(2),
        ];
        let summary = check_journal(&good).expect("well-formed stream");
        assert_eq!(summary.checkpoint_chunks, 3);
        assert_eq!(summary.checkpoints, 1);

        // A trailing incomplete stream is a crash, not a violation.
        let torn = vec![chunk(2, 10, 30), chunk(2, 20, 30)];
        assert!(check_journal(&torn).is_ok());

        // An abandoned stream followed by a fresh seq is tolerated too.
        let abandoned = vec![
            chunk(2, 10, 30),
            chunk(3, 5, 50),
            chunk(3, 50, 50),
            close(3),
        ];
        assert!(check_journal(&abandoned).is_ok());

        let stalled = vec![chunk(2, 10, 30), chunk(2, 10, 30)];
        assert!(check_journal(&stalled).unwrap_err().contains("advance"));

        let resized = vec![chunk(2, 10, 30), chunk(2, 20, 40)];
        assert!(check_journal(&resized).unwrap_err().contains("total"));

        let overflow = vec![chunk(2, 31, 30)];
        assert!(check_journal(&overflow).unwrap_err().contains("of only"));

        let short_close = vec![chunk(2, 10, 30), close(2)];
        let err = check_journal(&short_close).unwrap_err();
        assert!(err.contains("closed a chunk stream"), "{err}");
    }

    #[test]
    fn sheds_are_counted() {
        let events = vec![
            ev(EventKind::StorageShed {
                buffered: 64,
                shed: 1,
            }),
            ev(EventKind::StorageShed {
                buffered: 64,
                shed: 2,
            }),
        ];
        let summary = check_journal(&events).expect("well-formed");
        assert_eq!(summary.sheds, 2);
    }

    #[test]
    fn tier_traffic_is_counted_and_zero_windows_are_flagged() {
        let events = vec![
            ev(EventKind::TierFetch {
                fetches: 3,
                bytes: 96,
            }),
            ev(EventKind::TierEvict {
                evicted: 7,
                resident: 256,
            }),
            ev(EventKind::TierFetch {
                fetches: 2,
                bytes: 64,
            }),
        ];
        let summary = check_journal(&events).expect("well-formed");
        assert_eq!(summary.tier_fetches, 5);
        assert_eq!(summary.tier_evictions, 7);

        let empty_fetch = vec![ev(EventKind::TierFetch {
            fetches: 0,
            bytes: 0,
        })];
        assert!(check_journal(&empty_fetch)
            .unwrap_err()
            .contains("zero fetches"));

        let zero_bytes = vec![ev(EventKind::TierFetch {
            fetches: 2,
            bytes: 0,
        })];
        assert!(check_journal(&zero_bytes).unwrap_err().contains("no bytes"));

        let empty_evict = vec![ev(EventKind::TierEvict {
            evicted: 0,
            resident: 1,
        })];
        assert!(check_journal(&empty_evict)
            .unwrap_err()
            .contains("zero evictions"));
    }

    #[test]
    fn sharded_check_demultiplexes_interleaved_domains() {
        // Shard 1's batch accounting interleaves with shard 0's: a flat
        // check would see 2 inserts before shard 0's batch boundary and
        // flag it, but per-domain streams are both well-formed.
        let events = vec![
            ev_on(0, EventKind::Insert { bubble: 0 }),
            ev_on(1, EventKind::Insert { bubble: 3 }),
            ev_on(
                0,
                EventKind::BatchApplied {
                    inserts: 1,
                    deletes: 0,
                },
            ),
            ev_on(
                1,
                EventKind::BatchApplied {
                    inserts: 1,
                    deletes: 0,
                },
            ),
            ev(EventKind::WalCommit {
                bytes: 10,
                records: 1,
            }),
        ];
        assert!(check_journal(&events).is_err());
        let groups = check_journal_sharded(&events).expect("per-domain streams are well-formed");
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, None);
        assert_eq!(groups[0].1.wal_commits, 1);
        assert_eq!(groups[1].0, Some(0));
        assert_eq!(groups[1].1.batches, 1);
        assert_eq!(groups[2].0, Some(1));
        assert_eq!(groups[2].1.inserts, 1);
    }

    #[test]
    fn sharded_check_names_the_offending_domain() {
        let events = vec![ev_on(
            4,
            EventKind::BatchApplied {
                inserts: 2,
                deletes: 0,
            },
        )];
        let err = check_journal_sharded(&events).unwrap_err();
        assert!(err.starts_with("shard 4:"), "{err}");
    }

    #[test]
    fn untagged_journals_check_like_the_flat_form() {
        let events = vec![
            ev(EventKind::Insert { bubble: 0 }),
            ev(EventKind::BatchApplied {
                inserts: 1,
                deletes: 0,
            }),
        ];
        let flat = check_journal(&events).expect("flat");
        let groups = check_journal_sharded(&events).expect("sharded");
        assert_eq!(groups, vec![(None, flat)]);
    }
}
