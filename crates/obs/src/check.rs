//! Journal invariant checking — the contract the fault-injection and
//! crash-consistency suites (and the CI `journal_check` tool) assert
//! against a recorded event stream.
//!
//! Invariants over one maintainer's journal:
//!
//! 1. **Split pairing** — every [`EventKind::Split`] is immediately
//!    preceded (among structural events) by the [`EventKind::MergeAway`]
//!    that freed its donor seed, or by the [`EventKind::Grow`] that
//!    spawned it; the donor ids must match.
//! 2. **Batch accounting** — a [`EventKind::BatchApplied`] reports
//!    exactly the per-point [`EventKind::Insert`]/[`EventKind::Delete`]
//!    events emitted since the previous structural boundary.
//! 3. **Commit groups** — every [`EventKind::WalCommit`] flushes at least
//!    one record.
//!
//! A sharded deployment interleaves several maintainers' events into one
//! journal; the invariants above only hold *per maintainer domain*, so
//! [`check_journal_sharded`] demultiplexes on [`Event::shard`] first and
//! checks each sub-stream independently.

use crate::event::{Event, EventKind};

/// Aggregate counts over a checked journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalSummary {
    /// Total events checked.
    pub events: u64,
    /// Structural events (see [`EventKind::is_structural`]).
    pub structural: u64,
    /// Per-point inserts.
    pub inserts: u64,
    /// Per-point deletes.
    pub deletes: u64,
    /// Applied batches.
    pub batches: u64,
    /// Merge-away operations.
    pub merges: u64,
    /// Splits.
    pub splits: u64,
    /// Retired bubbles.
    pub retires: u64,
    /// Grown bubbles.
    pub grows: u64,
    /// WAL commit groups.
    pub wal_commits: u64,
    /// Checkpoints persisted.
    pub checkpoints: u64,
    /// Delta-clustering epochs.
    pub delta_epochs: u64,
}

/// Checks the journal invariants over `events`, returning aggregate
/// counts on success and a description naming the offending event index
/// on violation.
///
/// # Errors
/// Returns `Err` when any invariant is violated.
pub fn check_journal(events: &[Event]) -> Result<JournalSummary, String> {
    let mut summary = JournalSummary::default();
    // The previous *structural* event, for the split-pairing rule.
    let mut prev_structural: Option<(usize, &EventKind)> = None;
    // Per-point ops since the last structural boundary, for batch
    // accounting.
    let mut pending_inserts: u32 = 0;
    let mut pending_deletes: u32 = 0;

    for (i, ev) in events.iter().enumerate() {
        summary.events += 1;
        if ev.kind.is_structural() {
            summary.structural += 1;
        }
        match &ev.kind {
            EventKind::Insert { .. } => {
                summary.inserts += 1;
                pending_inserts += 1;
            }
            EventKind::Delete { .. } => {
                summary.deletes += 1;
                pending_deletes += 1;
            }
            EventKind::BatchApplied { inserts, deletes } => {
                summary.batches += 1;
                if *inserts != pending_inserts || *deletes != pending_deletes {
                    return Err(format!(
                        "event {i}: batch reports {inserts} inserts / {deletes} deletes \
                         but {pending_inserts} / {pending_deletes} per-point events \
                         were journaled since the last boundary"
                    ));
                }
                pending_inserts = 0;
                pending_deletes = 0;
            }
            EventKind::Split { donor, .. } => {
                summary.splits += 1;
                let paired = match prev_structural {
                    Some((_, EventKind::MergeAway { donor: d, .. })) => d == donor,
                    Some((_, EventKind::Grow { bubble, .. })) => bubble == donor,
                    _ => false,
                };
                if !paired {
                    return Err(format!(
                        "event {i}: split onto donor {donor} is not paired with a \
                         merge_away or grow of that bubble (previous structural \
                         event: {:?})",
                        prev_structural.map(|(j, k)| (j, k.tag()))
                    ));
                }
            }
            EventKind::MergeAway { .. } => summary.merges += 1,
            EventKind::RetireBubble { .. } => summary.retires += 1,
            EventKind::Grow { .. } => summary.grows += 1,
            EventKind::WalCommit { records, .. } => {
                summary.wal_commits += 1;
                if *records == 0 {
                    return Err(format!("event {i}: wal_commit with an empty group"));
                }
            }
            EventKind::Checkpoint { .. } => summary.checkpoints += 1,
            EventKind::DeltaEpoch { touched, total, .. } => {
                summary.delta_epochs += 1;
                if touched > total {
                    return Err(format!(
                        "event {i}: delta_epoch touched {touched} of only {total} slots"
                    ));
                }
            }
            _ => {}
        }
        if ev.kind.is_structural() {
            if !matches!(ev.kind, EventKind::Insert { .. } | EventKind::Delete { .. }) {
                pending_inserts = 0;
                pending_deletes = 0;
            }
            prev_structural = Some((i, &ev.kind));
        }
    }
    Ok(summary)
}

/// Checks a journal that may interleave events from several maintainer
/// domains (shards): events are grouped by [`Event::shard`] — preserving
/// each group's relative order — and [`check_journal`] runs per group.
///
/// Returns one `(shard, summary)` pair per domain present, untagged events
/// (`None`) first, then tagged domains in ascending shard order. A journal
/// with no shard tags behaves exactly like [`check_journal`]: one `None`
/// group.
///
/// # Errors
/// Returns `Err` naming the offending domain when any group violates an
/// invariant.
pub fn check_journal_sharded(
    events: &[Event],
) -> Result<Vec<(Option<u32>, JournalSummary)>, String> {
    let mut shards: Vec<Option<u32>> = events.iter().map(|e| e.shard).collect();
    shards.sort_unstable();
    shards.dedup();
    let mut out = Vec::with_capacity(shards.len());
    for shard in shards {
        let group: Vec<Event> = events
            .iter()
            .filter(|e| e.shard == shard)
            .cloned()
            .collect();
        let summary = check_journal(&group).map_err(|e| match shard {
            Some(s) => format!("shard {s}: {e}"),
            None => format!("untagged events: {e}"),
        })?;
        out.push((shard, summary));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Cause;

    fn ev(kind: EventKind) -> Event {
        Event::new(kind, 1)
    }

    fn ev_on(shard: u32, kind: EventKind) -> Event {
        let mut e = Event::new(kind, 1);
        e.shard = Some(shard);
        e
    }

    #[test]
    fn a_well_formed_journal_passes() {
        let events = vec![
            ev(EventKind::Build {
                points: 100,
                bubbles: 10,
            }),
            ev(EventKind::Delete { bubble: 1 }),
            ev(EventKind::Insert { bubble: 0 }),
            ev(EventKind::Insert { bubble: 2 }),
            ev(EventKind::BatchApplied {
                inserts: 2,
                deletes: 1,
            }),
            ev(EventKind::MergeAway {
                donor: 4,
                moved: 8,
                cause: Cause::Maintain,
            }),
            ev(EventKind::Split {
                over: 1,
                donor: 4,
                moved: 5,
                cause: Cause::Maintain,
            }),
            ev(EventKind::MaintainRound {
                merges: 1,
                splits: 1,
                cause: Cause::Maintain,
            }),
            ev(EventKind::Grow {
                from: 1,
                bubble: 10,
            }),
            ev(EventKind::Split {
                over: 1,
                donor: 10,
                moved: 4,
                cause: Cause::Adaptive,
            }),
            ev(EventKind::WalAppend {
                bytes: 100,
                records: 1,
            }),
            ev(EventKind::WalCommit {
                bytes: 100,
                records: 1,
            }),
            ev(EventKind::Checkpoint {
                seq: 1,
                covered: 1,
                bytes: 900,
            }),
        ];
        let summary = check_journal(&events).expect("well-formed");
        assert_eq!(summary.batches, 1);
        assert_eq!(summary.splits, 2);
        assert_eq!(summary.merges, 1);
        assert_eq!(summary.grows, 1);
        assert_eq!(summary.inserts, 2);
        assert_eq!(summary.deletes, 1);
        assert_eq!(summary.wal_commits, 1);
        assert_eq!(summary.checkpoints, 1);
    }

    #[test]
    fn an_unpaired_split_is_flagged() {
        let events = vec![
            ev(EventKind::Insert { bubble: 0 }),
            ev(EventKind::Split {
                over: 1,
                donor: 4,
                moved: 5,
                cause: Cause::Maintain,
            }),
        ];
        let err = check_journal(&events).unwrap_err();
        assert!(err.contains("not paired"), "{err}");
    }

    #[test]
    fn a_mismatched_donor_is_flagged() {
        let events = vec![
            ev(EventKind::MergeAway {
                donor: 3,
                moved: 8,
                cause: Cause::Maintain,
            }),
            ev(EventKind::Split {
                over: 1,
                donor: 4,
                moved: 5,
                cause: Cause::Maintain,
            }),
        ];
        assert!(check_journal(&events).is_err());
    }

    #[test]
    fn batch_accounting_mismatch_is_flagged() {
        let events = vec![
            ev(EventKind::Insert { bubble: 0 }),
            ev(EventKind::BatchApplied {
                inserts: 2,
                deletes: 0,
            }),
        ];
        let err = check_journal(&events).unwrap_err();
        assert!(err.contains("per-point events"), "{err}");
    }

    #[test]
    fn empty_commit_groups_are_flagged() {
        let events = vec![ev(EventKind::WalCommit {
            bytes: 0,
            records: 0,
        })];
        assert!(check_journal(&events).is_err());
    }

    #[test]
    fn delta_epochs_are_counted_and_bounded() {
        let events = vec![
            ev(EventKind::DeltaEpoch {
                touched: 2,
                total: 9,
                deltas: 1,
            }),
            ev(EventKind::DeltaEpoch {
                touched: 9,
                total: 9,
                deltas: 0,
            }),
        ];
        let summary = check_journal(&events).expect("well-formed");
        assert_eq!(summary.delta_epochs, 2);

        let bad = vec![ev(EventKind::DeltaEpoch {
            touched: 10,
            total: 9,
            deltas: 0,
        })];
        let err = check_journal(&bad).unwrap_err();
        assert!(err.contains("touched 10 of only 9"), "{err}");
    }

    #[test]
    fn sharded_check_demultiplexes_interleaved_domains() {
        // Shard 1's batch accounting interleaves with shard 0's: a flat
        // check would see 2 inserts before shard 0's batch boundary and
        // flag it, but per-domain streams are both well-formed.
        let events = vec![
            ev_on(0, EventKind::Insert { bubble: 0 }),
            ev_on(1, EventKind::Insert { bubble: 3 }),
            ev_on(
                0,
                EventKind::BatchApplied {
                    inserts: 1,
                    deletes: 0,
                },
            ),
            ev_on(
                1,
                EventKind::BatchApplied {
                    inserts: 1,
                    deletes: 0,
                },
            ),
            ev(EventKind::WalCommit {
                bytes: 10,
                records: 1,
            }),
        ];
        assert!(check_journal(&events).is_err());
        let groups = check_journal_sharded(&events).expect("per-domain streams are well-formed");
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, None);
        assert_eq!(groups[0].1.wal_commits, 1);
        assert_eq!(groups[1].0, Some(0));
        assert_eq!(groups[1].1.batches, 1);
        assert_eq!(groups[2].0, Some(1));
        assert_eq!(groups[2].1.inserts, 1);
    }

    #[test]
    fn sharded_check_names_the_offending_domain() {
        let events = vec![ev_on(
            4,
            EventKind::BatchApplied {
                inserts: 2,
                deletes: 0,
            },
        )];
        let err = check_journal_sharded(&events).unwrap_err();
        assert!(err.starts_with("shard 4:"), "{err}");
    }

    #[test]
    fn untagged_journals_check_like_the_flat_form() {
        let events = vec![
            ev(EventKind::Insert { bubble: 0 }),
            ev(EventKind::BatchApplied {
                inserts: 1,
                deletes: 0,
            }),
        ];
        let flat = check_journal(&events).expect("flat");
        let groups = check_journal_sharded(&events).expect("sharded");
        assert_eq!(groups, vec![(None, flat)]);
    }
}
