//! The recorder contract: where journal events go.
//!
//! * [`NullRecorder`] — the default; reports itself disabled so emission
//!   sites skip event construction and timing entirely.
//! * [`RingRecorder`] — an in-memory ring for tests and the equivalence
//!   suites.
//! * [`JsonlRecorder`] — appends one JSON object per event to a file,
//!   opened lazily on the first event so idle maintainers leave no
//!   artifacts.

use crate::event::Event;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A sink for journal [`Event`]s.
///
/// Recorders must be cheap: events arrive on the thread driving the
/// maintainer, inside structural operations. Implementations that report
/// [`Recorder::is_enabled`] `false` are never sent events and emission
/// sites skip the surrounding timing, which is what makes the default
/// [`NullRecorder`] free.
pub trait Recorder: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: Event);

    /// Whether emission sites should construct and send events at all.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered events to their destination.
    fn flush(&self) {}
}

/// The default recorder: drops everything and reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: Event) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// An in-memory recorder keeping the most recent events (all of them by
/// default), for tests and the bit-identity suites.
#[derive(Debug, Default)]
pub struct RingRecorder {
    inner: Mutex<RingInner>,
}

#[derive(Debug, Default)]
struct RingInner {
    events: Vec<Event>,
    capacity: Option<usize>,
    dropped: u64,
}

impl RingRecorder {
    /// An unbounded recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder keeping only the newest `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity ring records nothing");
        RingRecorder {
            inner: Mutex::new(RingInner {
                events: Vec::new(),
                capacity: Some(capacity),
                dropped: 0,
            }),
        }
    }

    /// A snapshot of the retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().expect("ring poisoned").events.clone()
    }

    /// The number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring poisoned").events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events the capacity bound evicted.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("ring poisoned").dropped
    }

    /// Removes and returns every retained event, oldest first.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.inner.lock().expect("ring poisoned").events)
    }
}

impl Recorder for RingRecorder {
    fn record(&self, event: Event) {
        let mut inner = self.inner.lock().expect("ring poisoned");
        if let Some(cap) = inner.capacity {
            if inner.events.len() == cap {
                inner.events.remove(0);
                inner.dropped += 1;
            }
        }
        inner.events.push(event);
    }
}

/// A recorder appending one JSONL line per event to a file.
///
/// The file is created lazily on the first event. Write errors disable
/// the recorder for the rest of its life (journaling must never take the
/// maintainer down) and are surfaced once on stderr.
#[derive(Debug)]
pub struct JsonlRecorder {
    inner: Mutex<JsonlInner>,
}

#[derive(Debug)]
struct JsonlInner {
    path: PathBuf,
    state: JsonlState,
}

#[derive(Debug)]
enum JsonlState {
    Closed,
    Open(BufWriter<File>),
    Poisoned,
}

impl JsonlRecorder {
    /// A recorder that will append to `path`, creating parent directories
    /// and the file on the first event.
    #[must_use]
    pub fn create<P: AsRef<Path>>(path: P) -> Self {
        JsonlRecorder {
            inner: Mutex::new(JsonlInner {
                path: path.as_ref().to_path_buf(),
                state: JsonlState::Closed,
            }),
        }
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> PathBuf {
        self.inner.lock().expect("jsonl poisoned").path.clone()
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: Event) {
        let mut inner = self.inner.lock().expect("jsonl poisoned");
        if matches!(inner.state, JsonlState::Closed) {
            let opened = inner
                .path
                .parent()
                .map_or(Ok(()), std::fs::create_dir_all)
                .and_then(|()| {
                    OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&inner.path)
                });
            inner.state = match opened {
                Ok(f) => JsonlState::Open(BufWriter::new(f)),
                Err(e) => {
                    eprintln!(
                        "idb-obs: cannot open journal {}: {e}; journaling disabled",
                        inner.path.display()
                    );
                    JsonlState::Poisoned
                }
            };
        }
        if let JsonlState::Open(w) = &mut inner.state {
            let mut line = event.to_jsonl();
            line.push('\n');
            if let Err(e) = w.write_all(line.as_bytes()) {
                eprintln!(
                    "idb-obs: journal write to {} failed: {e}; journaling disabled",
                    inner.path.display()
                );
                inner.state = JsonlState::Poisoned;
            }
        }
    }

    fn flush(&self) {
        let mut inner = self.inner.lock().expect("jsonl poisoned");
        if let JsonlState::Open(w) = &mut inner.state {
            let _ = w.flush();
        }
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(bubble: u32) -> Event {
        Event::new(EventKind::Insert { bubble }, 1)
    }

    #[test]
    fn null_recorder_is_disabled() {
        let r = NullRecorder;
        assert!(!r.is_enabled());
        r.record(ev(0)); // No-op.
    }

    #[test]
    fn ring_keeps_order_and_honors_capacity() {
        let r = RingRecorder::with_capacity(2);
        assert!(r.is_enabled() && r.is_empty());
        for i in 0..4 {
            r.record(ev(i));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 2);
        let events: Vec<u32> = r
            .take()
            .iter()
            .map(|e| match e.kind {
                EventKind::Insert { bubble } => bubble,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(events, vec![2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn jsonl_recorder_writes_parseable_lines_lazily() {
        let dir = std::env::temp_dir().join(format!(
            "idb-obs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("journal.jsonl");
        let r = JsonlRecorder::create(&path);
        assert!(!path.exists(), "file must not exist before the first event");
        r.record(ev(3));
        r.record(ev(4));
        r.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Event> = text
            .lines()
            .map(|l| Event::parse_jsonl(l).expect("parseable"))
            .collect();
        assert_eq!(events, vec![ev(3), ev(4)]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
