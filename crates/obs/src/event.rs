//! The structured op journal: typed events with cause, affected bubble
//! ids, and duration.
//!
//! Every structural operation of the maintainer (insert, delete,
//! merge-away, split, retire, grow, maintenance rounds, audit/repair),
//! every durability action (WAL append/commit/truncate, checkpoint) and
//! every recovery step emits one [`Event`]. Events are always emitted from
//! the thread driving the maintainer — never from worker threads — so the
//! journal order is identical under `Parallelism::Serial` and
//! `Parallelism::Threads(n)`. The only wall-clock-dependent field is the
//! duration [`Event::us`]; equivalence suites compare journals through
//! [`Event::masked`], which zeroes it.

use std::fmt;

/// Why a structural operation fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Initial construction over the store.
    Build,
    /// Direct consequence of applying an update batch.
    Batch,
    /// The synchronized merge/split maintenance round (Section 4.2).
    Maintain,
    /// The adaptive grow/retire policy.
    Adaptive,
    /// An explicit `retire_bubble` call.
    Retire,
    /// The invariant repair path.
    Repair,
}

impl Cause {
    fn as_str(self) -> &'static str {
        match self {
            Cause::Build => "build",
            Cause::Batch => "batch",
            Cause::Maintain => "maintain",
            Cause::Adaptive => "adaptive",
            Cause::Retire => "retire",
            Cause::Repair => "repair",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "build" => Cause::Build,
            "batch" => Cause::Batch,
            "maintain" => Cause::Maintain,
            "adaptive" => Cause::Adaptive,
            "retire" => Cause::Retire,
            "repair" => Cause::Repair,
            _ => return None,
        })
    }
}

/// Which sink operation a fault injector failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkOp {
    /// An `append` call.
    Append,
    /// A `sync` (fsync) call.
    Sync,
}

impl SinkOp {
    fn as_str(self) -> &'static str {
        match self {
            SinkOp::Append => "append",
            SinkOp::Sync => "sync",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "append" => SinkOp::Append,
            "sync" => SinkOp::Sync,
            _ => return None,
        })
    }
}

/// The typed payload of one journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Initial construction finished.
    Build {
        /// Points summarized.
        points: u64,
        /// Bubbles created.
        bubbles: u32,
    },
    /// One point inserted into a bubble.
    Insert {
        /// The receiving bubble index.
        bubble: u32,
    },
    /// One point deleted from a bubble.
    Delete {
        /// The bubble the point was removed from.
        bubble: u32,
    },
    /// An update batch finished applying.
    BatchApplied {
        /// Points inserted by the batch.
        inserts: u32,
        /// Points deleted by the batch.
        deletes: u32,
    },
    /// A bubble's members were redistributed to its neighbours.
    MergeAway {
        /// The dissolved (donor) bubble index.
        donor: u32,
        /// Points redistributed.
        moved: u64,
        /// Why the merge fired.
        cause: Cause,
    },
    /// An over-filled bubble was split onto a freed seed.
    Split {
        /// The over-filled bubble that was split.
        over: u32,
        /// The bubble whose seed received the far half.
        donor: u32,
        /// Points moved onto the donor seed.
        moved: u64,
        /// Why the split fired.
        cause: Cause,
    },
    /// A bubble was retired (merged away and swap-removed).
    RetireBubble {
        /// The retired bubble's index at call time.
        bubble: u32,
        /// The index the former last bubble moved from, when the
        /// swap-remove relocated one.
        swapped: Option<u32>,
    },
    /// A new bubble was spawned from an over-filled one.
    Grow {
        /// The over-filled source bubble.
        from: u32,
        /// The new bubble's index.
        bubble: u32,
    },
    /// A synchronized maintenance round finished.
    MaintainRound {
        /// Merge-away operations performed.
        merges: u32,
        /// Splits performed.
        splits: u32,
        /// `Maintain` for the plain round, `Adaptive` for grow/retire.
        cause: Cause,
    },
    /// An invariant audit finished.
    Audit {
        /// Issues found (0 = green).
        issues: u64,
    },
    /// An invariant repair finished.
    Repair {
        /// Issues the triggering audit reported.
        found: u64,
        /// Bubbles quarantined and rebuilt.
        quarantined: u32,
        /// Seeds re-anchored.
        reseeded: u32,
        /// Points reassigned.
        reassigned: u64,
    },
    /// Bytes were staged onto the WAL (not yet durable).
    WalAppend {
        /// Encoded record bytes staged.
        bytes: u64,
        /// Records staged (currently always 1).
        records: u32,
    },
    /// A group commit flushed staged records and fsynced.
    WalCommit {
        /// Bytes made durable by this commit.
        bytes: u64,
        /// Records in the commit group.
        records: u32,
    },
    /// The WAL was truncated back to its committed prefix.
    WalTruncate {
        /// The length truncated to.
        len: u64,
    },
    /// The segmented WAL sealed its active segment and rotated to a new
    /// one.
    WalRotate {
        /// Epoch of the new active segment.
        epoch: u64,
        /// Sequence number of the new active segment within its epoch.
        seq: u64,
        /// Absolute batch sequence number the new segment starts at.
        base: u64,
        /// Bytes in the segment that was sealed.
        sealed_bytes: u64,
    },
    /// Compaction reclaimed sealed WAL segments fully covered by a
    /// durable checkpoint.
    WalCompact {
        /// Segments deleted.
        segments: u64,
        /// Bytes those segments held.
        bytes: u64,
        /// The checkpoint coverage (absolute batch sequence number) that
        /// made them reclaimable.
        floor: u64,
    },
    /// A checkpoint was persisted.
    Checkpoint {
        /// Checkpoint sequence number.
        seq: u64,
        /// Batches the checkpoint covers.
        covered: u64,
        /// Encoded checkpoint size.
        bytes: u64,
    },
    /// One chunk of a streaming checkpoint was written (the final chunk
    /// is followed by the `checkpoint` event for the same sequence).
    CheckpointChunk {
        /// The streaming checkpoint's sequence number.
        seq: u64,
        /// Bytes written so far, including this chunk.
        written: u64,
        /// Total encoded checkpoint size.
        total: u64,
    },
    /// The degraded-mode buffer hit its hard cap and a batch was shed
    /// with a typed error instead of growing memory without limit.
    StorageShed {
        /// Records buffered when the shed happened.
        buffered: u64,
        /// Batches shed so far in this degradation episode.
        shed: u64,
    },
    /// A batch's maintenance window read points from the cold tier
    /// (aggregated per batch; absent when everything needed was hot).
    TierFetch {
        /// Cold records demand-fetched during the window.
        fetches: u64,
        /// Payload bytes read from the cold medium.
        bytes: u64,
    },
    /// A hot-budget sweep evicted points to the cold tier.
    TierEvict {
        /// Points written out by this sweep.
        evicted: u64,
        /// Resident points after the sweep.
        resident: u64,
    },
    /// Recovery started over a WAL image.
    RecoverStart {
        /// WAL bytes presented to recovery.
        wal_bytes: u64,
    },
    /// Recovery locked onto a usable checkpoint.
    RecoverCheckpoint {
        /// The checkpoint's sequence number.
        seq: u64,
        /// Batches it covers.
        covered: u64,
    },
    /// Recovery finished.
    RecoverDone {
        /// WAL records replayed on top of the checkpoint.
        replayed: u64,
        /// Total durable batches after recovery.
        batches_durable: u64,
        /// Whether a torn final record was discarded.
        torn_tail: bool,
    },
    /// The durable maintainer changed health.
    Health {
        /// `true` when entering degraded mode, `false` on heal.
        degraded: bool,
        /// Batches buffered in memory while degraded.
        buffered: u64,
    },
    /// A fault injector failed a sink operation (test harnesses only).
    SinkFault {
        /// The operation that failed.
        op: SinkOp,
    },
    /// A shard supervisor quarantined or released a maintainer domain
    /// (the domain itself is carried by the event's shard tag).
    Quarantine {
        /// `true` on entering quarantine, `false` on release.
        entered: bool,
    },
    /// One delta-clustering epoch finished: the incremental layer
    /// refreshed only the touched distance neighborhoods and diffed the
    /// resulting cluster tree against the previous epoch.
    DeltaEpoch {
        /// Bubble slots whose distance neighborhood was recomputed.
        touched: u32,
        /// Total tracked bubble slots a full recompute would have
        /// touched.
        total: u32,
        /// Typed cluster deltas emitted to subscribers this epoch.
        deltas: u32,
    },
    /// A client registered a cluster-delta subscription.
    DeltaSubscribe {
        /// The subscription's id.
        id: u64,
    },
    /// A client cancelled a cluster-delta subscription.
    DeltaUnsubscribe {
        /// The subscription's id.
        id: u64,
    },
}

impl EventKind {
    /// The journal tag, as used in the JSONL encoding.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Build { .. } => "build",
            EventKind::Insert { .. } => "insert",
            EventKind::Delete { .. } => "delete",
            EventKind::BatchApplied { .. } => "batch",
            EventKind::MergeAway { .. } => "merge_away",
            EventKind::Split { .. } => "split",
            EventKind::RetireBubble { .. } => "retire_bubble",
            EventKind::Grow { .. } => "grow",
            EventKind::MaintainRound { .. } => "maintain",
            EventKind::Audit { .. } => "audit",
            EventKind::Repair { .. } => "repair",
            EventKind::WalAppend { .. } => "wal_append",
            EventKind::WalCommit { .. } => "wal_commit",
            EventKind::WalTruncate { .. } => "wal_truncate",
            EventKind::WalRotate { .. } => "wal_rotate",
            EventKind::WalCompact { .. } => "wal_compact",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::CheckpointChunk { .. } => "checkpoint_chunk",
            EventKind::StorageShed { .. } => "storage_shed",
            EventKind::TierFetch { .. } => "tier_fetch",
            EventKind::TierEvict { .. } => "tier_evict",
            EventKind::RecoverStart { .. } => "recover_start",
            EventKind::RecoverCheckpoint { .. } => "recover_checkpoint",
            EventKind::RecoverDone { .. } => "recover_done",
            EventKind::Health { .. } => "health",
            EventKind::SinkFault { .. } => "sink_fault",
            EventKind::Quarantine { .. } => "quarantine",
            EventKind::DeltaEpoch { .. } => "delta_epoch",
            EventKind::DeltaSubscribe { .. } => "delta_subscribe",
            EventKind::DeltaUnsubscribe { .. } => "delta_unsubscribe",
        }
    }

    /// Whether this is a structural summarization operation (as opposed to
    /// durability, recovery or health bookkeeping). The replay-equivalence
    /// suites compare exactly the structural sub-stream.
    #[must_use]
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            EventKind::Insert { .. }
                | EventKind::Delete { .. }
                | EventKind::BatchApplied { .. }
                | EventKind::MergeAway { .. }
                | EventKind::Split { .. }
                | EventKind::RetireBubble { .. }
                | EventKind::Grow { .. }
                | EventKind::MaintainRound { .. }
        )
    }
}

/// One journal entry: a typed payload plus the operation's duration in
/// microseconds (the only wall-clock-dependent field) and, in sharded
/// deployments, the maintainer-domain (shard) the event came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// How long it took, in microseconds. Zero when timing was off.
    pub us: u64,
    /// Which maintainer domain emitted the event: `None` for the classic
    /// single-maintainer deployment, `Some(shard)` when the emitting
    /// [`Obs`](crate::Obs) handle was tagged via
    /// [`Obs::tagged`](crate::Obs::tagged). Journals from a sharded run
    /// interleave domains; [`check_journal_sharded`](crate::check_journal_sharded)
    /// demultiplexes on this tag before checking the per-maintainer
    /// invariants.
    pub shard: Option<u32>,
}

impl Event {
    /// An untagged event (the classic single-maintainer form).
    #[must_use]
    pub fn new(kind: EventKind, us: u64) -> Event {
        Event {
            kind,
            us,
            shard: None,
        }
    }

    /// The event with its duration zeroed — the canonical form the
    /// bit-identity suites compare, since durations are the only field
    /// that may differ between otherwise identical runs. The shard tag is
    /// kept: it is deterministic.
    #[must_use]
    pub fn masked(&self) -> Event {
        Event {
            kind: self.kind.clone(),
            us: 0,
            shard: self.shard,
        }
    }

    /// Encodes the event as one flat JSON object (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"k\":\"");
        s.push_str(self.kind.tag());
        s.push('"');
        if let Some(shard) = self.shard {
            s.push_str(",\"shard\":");
            s.push_str(&shard.to_string());
        }
        let num = |s: &mut String, key: &str, v: u64| {
            s.push_str(",\"");
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&v.to_string());
        };
        match &self.kind {
            EventKind::Build { points, bubbles } => {
                num(&mut s, "points", *points);
                num(&mut s, "bubbles", u64::from(*bubbles));
            }
            EventKind::Insert { bubble } | EventKind::Delete { bubble } => {
                num(&mut s, "bubble", u64::from(*bubble));
            }
            EventKind::BatchApplied { inserts, deletes } => {
                num(&mut s, "inserts", u64::from(*inserts));
                num(&mut s, "deletes", u64::from(*deletes));
            }
            EventKind::MergeAway {
                donor,
                moved,
                cause,
            } => {
                num(&mut s, "donor", u64::from(*donor));
                num(&mut s, "moved", *moved);
                push_str_field(&mut s, "cause", cause.as_str());
            }
            EventKind::Split {
                over,
                donor,
                moved,
                cause,
            } => {
                num(&mut s, "over", u64::from(*over));
                num(&mut s, "donor", u64::from(*donor));
                num(&mut s, "moved", *moved);
                push_str_field(&mut s, "cause", cause.as_str());
            }
            EventKind::RetireBubble { bubble, swapped } => {
                num(&mut s, "bubble", u64::from(*bubble));
                if let Some(sw) = swapped {
                    num(&mut s, "swapped", u64::from(*sw));
                }
            }
            EventKind::Grow { from, bubble } => {
                num(&mut s, "from", u64::from(*from));
                num(&mut s, "bubble", u64::from(*bubble));
            }
            EventKind::MaintainRound {
                merges,
                splits,
                cause,
            } => {
                num(&mut s, "merges", u64::from(*merges));
                num(&mut s, "splits", u64::from(*splits));
                push_str_field(&mut s, "cause", cause.as_str());
            }
            EventKind::Audit { issues } => num(&mut s, "issues", *issues),
            EventKind::Repair {
                found,
                quarantined,
                reseeded,
                reassigned,
            } => {
                num(&mut s, "found", *found);
                num(&mut s, "quarantined", u64::from(*quarantined));
                num(&mut s, "reseeded", u64::from(*reseeded));
                num(&mut s, "reassigned", *reassigned);
            }
            EventKind::WalAppend { bytes, records } => {
                num(&mut s, "bytes", *bytes);
                num(&mut s, "records", u64::from(*records));
            }
            EventKind::WalCommit { bytes, records } => {
                num(&mut s, "bytes", *bytes);
                num(&mut s, "records", u64::from(*records));
            }
            EventKind::WalTruncate { len } => num(&mut s, "len", *len),
            EventKind::WalRotate {
                epoch,
                seq,
                base,
                sealed_bytes,
            } => {
                num(&mut s, "epoch", *epoch);
                num(&mut s, "seq", *seq);
                num(&mut s, "base", *base);
                num(&mut s, "sealed_bytes", *sealed_bytes);
            }
            EventKind::WalCompact {
                segments,
                bytes,
                floor,
            } => {
                num(&mut s, "segments", *segments);
                num(&mut s, "bytes", *bytes);
                num(&mut s, "floor", *floor);
            }
            EventKind::Checkpoint {
                seq,
                covered,
                bytes,
            } => {
                num(&mut s, "seq", *seq);
                num(&mut s, "covered", *covered);
                num(&mut s, "bytes", *bytes);
            }
            EventKind::CheckpointChunk {
                seq,
                written,
                total,
            } => {
                num(&mut s, "seq", *seq);
                num(&mut s, "written", *written);
                num(&mut s, "total", *total);
            }
            EventKind::StorageShed { buffered, shed } => {
                num(&mut s, "buffered", *buffered);
                num(&mut s, "shed", *shed);
            }
            EventKind::TierFetch { fetches, bytes } => {
                num(&mut s, "fetches", *fetches);
                num(&mut s, "bytes", *bytes);
            }
            EventKind::TierEvict { evicted, resident } => {
                num(&mut s, "evicted", *evicted);
                num(&mut s, "resident", *resident);
            }
            EventKind::RecoverStart { wal_bytes } => num(&mut s, "wal_bytes", *wal_bytes),
            EventKind::RecoverCheckpoint { seq, covered } => {
                num(&mut s, "seq", *seq);
                num(&mut s, "covered", *covered);
            }
            EventKind::RecoverDone {
                replayed,
                batches_durable,
                torn_tail,
            } => {
                num(&mut s, "replayed", *replayed);
                num(&mut s, "batches_durable", *batches_durable);
                s.push_str(",\"torn_tail\":");
                s.push_str(if *torn_tail { "true" } else { "false" });
            }
            EventKind::Health { degraded, buffered } => {
                s.push_str(",\"degraded\":");
                s.push_str(if *degraded { "true" } else { "false" });
                num(&mut s, "buffered", *buffered);
            }
            EventKind::SinkFault { op } => push_str_field(&mut s, "op", op.as_str()),
            EventKind::Quarantine { entered } => {
                s.push_str(",\"entered\":");
                s.push_str(if *entered { "true" } else { "false" });
            }
            EventKind::DeltaEpoch {
                touched,
                total,
                deltas,
            } => {
                num(&mut s, "touched", u64::from(*touched));
                num(&mut s, "total", u64::from(*total));
                num(&mut s, "deltas", u64::from(*deltas));
            }
            EventKind::DeltaSubscribe { id } | EventKind::DeltaUnsubscribe { id } => {
                num(&mut s, "id", *id);
            }
        }
        num(&mut s, "us", self.us);
        s.push('}');
        s
    }

    /// Parses one line of the JSONL encoding back into an event.
    ///
    /// Returns `None` on anything that is not a flat object produced by
    /// [`Event::to_jsonl`] — the journal checker treats that as damage.
    #[must_use]
    pub fn parse_jsonl(line: &str) -> Option<Event> {
        let fields = parse_flat_object(line)?;
        let get = |k: &str| fields.iter().find(|(key, _)| *key == k).map(|(_, v)| *v);
        let get_u64 = |k: &str| get(k).and_then(|v| v.parse::<u64>().ok());
        let get_u32 = |k: &str| get(k).and_then(|v| v.parse::<u32>().ok());
        let get_bool = |k: &str| match get(k) {
            Some("true") => Some(true),
            Some("false") => Some(false),
            _ => None,
        };
        let get_cause = |k: &str| get(k).and_then(Cause::parse);
        let kind = match get("k")? {
            "build" => EventKind::Build {
                points: get_u64("points")?,
                bubbles: get_u32("bubbles")?,
            },
            "insert" => EventKind::Insert {
                bubble: get_u32("bubble")?,
            },
            "delete" => EventKind::Delete {
                bubble: get_u32("bubble")?,
            },
            "batch" => EventKind::BatchApplied {
                inserts: get_u32("inserts")?,
                deletes: get_u32("deletes")?,
            },
            "merge_away" => EventKind::MergeAway {
                donor: get_u32("donor")?,
                moved: get_u64("moved")?,
                cause: get_cause("cause")?,
            },
            "split" => EventKind::Split {
                over: get_u32("over")?,
                donor: get_u32("donor")?,
                moved: get_u64("moved")?,
                cause: get_cause("cause")?,
            },
            "retire_bubble" => EventKind::RetireBubble {
                bubble: get_u32("bubble")?,
                swapped: get_u32("swapped"),
            },
            "grow" => EventKind::Grow {
                from: get_u32("from")?,
                bubble: get_u32("bubble")?,
            },
            "maintain" => EventKind::MaintainRound {
                merges: get_u32("merges")?,
                splits: get_u32("splits")?,
                cause: get_cause("cause")?,
            },
            "audit" => EventKind::Audit {
                issues: get_u64("issues")?,
            },
            "repair" => EventKind::Repair {
                found: get_u64("found")?,
                quarantined: get_u32("quarantined")?,
                reseeded: get_u32("reseeded")?,
                reassigned: get_u64("reassigned")?,
            },
            "wal_append" => EventKind::WalAppend {
                bytes: get_u64("bytes")?,
                records: get_u32("records")?,
            },
            "wal_commit" => EventKind::WalCommit {
                bytes: get_u64("bytes")?,
                records: get_u32("records")?,
            },
            "wal_truncate" => EventKind::WalTruncate {
                len: get_u64("len")?,
            },
            "wal_rotate" => EventKind::WalRotate {
                epoch: get_u64("epoch")?,
                seq: get_u64("seq")?,
                base: get_u64("base")?,
                sealed_bytes: get_u64("sealed_bytes")?,
            },
            "wal_compact" => EventKind::WalCompact {
                segments: get_u64("segments")?,
                bytes: get_u64("bytes")?,
                floor: get_u64("floor")?,
            },
            "checkpoint" => EventKind::Checkpoint {
                seq: get_u64("seq")?,
                covered: get_u64("covered")?,
                bytes: get_u64("bytes")?,
            },
            "checkpoint_chunk" => EventKind::CheckpointChunk {
                seq: get_u64("seq")?,
                written: get_u64("written")?,
                total: get_u64("total")?,
            },
            "storage_shed" => EventKind::StorageShed {
                buffered: get_u64("buffered")?,
                shed: get_u64("shed")?,
            },
            "tier_fetch" => EventKind::TierFetch {
                fetches: get_u64("fetches")?,
                bytes: get_u64("bytes")?,
            },
            "tier_evict" => EventKind::TierEvict {
                evicted: get_u64("evicted")?,
                resident: get_u64("resident")?,
            },
            "recover_start" => EventKind::RecoverStart {
                wal_bytes: get_u64("wal_bytes")?,
            },
            "recover_checkpoint" => EventKind::RecoverCheckpoint {
                seq: get_u64("seq")?,
                covered: get_u64("covered")?,
            },
            "recover_done" => EventKind::RecoverDone {
                replayed: get_u64("replayed")?,
                batches_durable: get_u64("batches_durable")?,
                torn_tail: get_bool("torn_tail")?,
            },
            "health" => EventKind::Health {
                degraded: get_bool("degraded")?,
                buffered: get_u64("buffered")?,
            },
            "sink_fault" => EventKind::SinkFault {
                op: get("op").and_then(SinkOp::parse)?,
            },
            "quarantine" => EventKind::Quarantine {
                entered: get_bool("entered")?,
            },
            "delta_epoch" => EventKind::DeltaEpoch {
                touched: get_u32("touched")?,
                total: get_u32("total")?,
                deltas: get_u32("deltas")?,
            },
            "delta_subscribe" => EventKind::DeltaSubscribe { id: get_u64("id")? },
            "delta_unsubscribe" => EventKind::DeltaUnsubscribe { id: get_u64("id")? },
            _ => return None,
        };
        Some(Event {
            kind,
            us: get_u64("us")?,
            shard: get_u32("shard"),
        })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_jsonl())
    }
}

fn push_str_field(s: &mut String, key: &str, v: &str) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":\"");
    s.push_str(v);
    s.push('"');
}

/// Splits a flat `{"key":value,...}` object into `(key, raw value)` pairs.
/// Values are either bare tokens (numbers, booleans) or simple quoted
/// strings without escapes — exactly what [`Event::to_jsonl`] produces.
fn parse_flat_object(line: &str) -> Option<Vec<(&str, &str)>> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut out = Vec::new();
    for pair in body.split(',') {
        let (k, v) = pair.split_once(':')?;
        let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
        let v = v.trim();
        let v = if let Some(inner) = v.strip_prefix('"') {
            inner.strip_suffix('"')?
        } else {
            v
        };
        out.push((k, v));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Event> {
        vec![
            Event::new(
                EventKind::Build {
                    points: 1000,
                    bubbles: 40,
                },
                1234,
            ),
            Event::new(EventKind::Insert { bubble: 7 }, 3),
            Event::new(EventKind::Delete { bubble: 0 }, 0),
            Event::new(
                EventKind::BatchApplied {
                    inserts: 12,
                    deletes: 9,
                },
                88,
            ),
            Event::new(
                EventKind::MergeAway {
                    donor: 3,
                    moved: 17,
                    cause: Cause::Maintain,
                },
                41,
            ),
            Event::new(
                EventKind::Split {
                    over: 1,
                    donor: 3,
                    moved: 9,
                    cause: Cause::Adaptive,
                },
                52,
            ),
            Event::new(
                EventKind::RetireBubble {
                    bubble: 2,
                    swapped: Some(11),
                },
                60,
            ),
            Event::new(
                EventKind::RetireBubble {
                    bubble: 5,
                    swapped: None,
                },
                61,
            ),
            Event::new(
                EventKind::Grow {
                    from: 4,
                    bubble: 12,
                },
                70,
            ),
            Event::new(
                EventKind::MaintainRound {
                    merges: 2,
                    splits: 2,
                    cause: Cause::Maintain,
                },
                300,
            ),
            Event::new(EventKind::Audit { issues: 0 }, 15),
            Event::new(
                EventKind::Repair {
                    found: 4,
                    quarantined: 2,
                    reseeded: 1,
                    reassigned: 33,
                },
                900,
            ),
            Event::new(
                EventKind::WalAppend {
                    bytes: 256,
                    records: 1,
                },
                2,
            ),
            Event::new(
                EventKind::WalCommit {
                    bytes: 512,
                    records: 2,
                },
                1800,
            ),
            Event::new(EventKind::WalTruncate { len: 20 }, 5),
            Event::new(
                EventKind::WalRotate {
                    epoch: 1,
                    seq: 4,
                    base: 96,
                    sealed_bytes: 4096,
                },
                9,
            ),
            Event::new(
                EventKind::WalCompact {
                    segments: 3,
                    bytes: 12_288,
                    floor: 96,
                },
                14,
            ),
            Event::new(
                EventKind::Checkpoint {
                    seq: 3,
                    covered: 12,
                    bytes: 40_000,
                },
                2500,
            ),
            Event::new(
                EventKind::CheckpointChunk {
                    seq: 3,
                    written: 16_384,
                    total: 40_000,
                },
                30,
            ),
            Event::new(
                EventKind::StorageShed {
                    buffered: 1024,
                    shed: 2,
                },
                0,
            ),
            Event::new(
                EventKind::TierFetch {
                    fetches: 12,
                    bytes: 768,
                },
                4,
            ),
            Event::new(
                EventKind::TierEvict {
                    evicted: 32,
                    resident: 256,
                },
                4,
            ),
            Event::new(EventKind::RecoverStart { wal_bytes: 812 }, 0),
            Event::new(EventKind::RecoverCheckpoint { seq: 2, covered: 8 }, 120),
            Event::new(
                EventKind::RecoverDone {
                    replayed: 4,
                    batches_durable: 12,
                    torn_tail: true,
                },
                4000,
            ),
            Event::new(
                EventKind::Health {
                    degraded: true,
                    buffered: 3,
                },
                0,
            ),
            Event::new(EventKind::SinkFault { op: SinkOp::Sync }, 0),
            Event::new(EventKind::Quarantine { entered: true }, 0),
            Event::new(EventKind::Quarantine { entered: false }, 7),
            Event::new(
                EventKind::DeltaEpoch {
                    touched: 3,
                    total: 40,
                    deltas: 5,
                },
                150,
            ),
            Event::new(EventKind::DeltaSubscribe { id: 2 }, 0),
            Event::new(EventKind::DeltaUnsubscribe { id: 2 }, 1),
        ]
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        for ev in corpus() {
            let line = ev.to_jsonl();
            let back =
                Event::parse_jsonl(&line).unwrap_or_else(|| panic!("failed to parse back: {line}"));
            assert_eq!(back, ev, "{line}");
        }
    }

    #[test]
    fn jsonl_round_trips_the_shard_tag() {
        for mut ev in corpus() {
            ev.shard = Some(3);
            let line = ev.to_jsonl();
            assert!(line.contains("\"shard\":3"), "{line}");
            let back =
                Event::parse_jsonl(&line).unwrap_or_else(|| panic!("failed to parse back: {line}"));
            assert_eq!(back, ev, "{line}");
        }
        // Untagged lines parse back to an untagged event.
        let plain = Event::new(EventKind::Insert { bubble: 1 }, 9);
        assert_eq!(Event::parse_jsonl(&plain.to_jsonl()), Some(plain));
    }

    #[test]
    fn masking_zeroes_only_the_duration() {
        let mut ev = Event::new(EventKind::Insert { bubble: 9 }, 77);
        ev.shard = Some(2);
        let m = ev.masked();
        assert_eq!(m.us, 0);
        assert_eq!(m.kind, ev.kind);
        assert_eq!(m.shard, Some(2));
    }

    #[test]
    fn damaged_lines_parse_to_none() {
        for line in [
            "",
            "{}",
            "not json",
            "{\"k\":\"insert\"}",                        // missing fields
            "{\"k\":\"insert\",\"bubble\":-1,\"us\":0}", // negative
            "{\"k\":\"nope\",\"us\":0}",                 // unknown tag
            "{\"k\":\"split\",\"over\":1,\"donor\":2,\"moved\":3,\"cause\":\"weird\",\"us\":0}",
        ] {
            assert!(Event::parse_jsonl(line).is_none(), "{line:?}");
        }
    }

    #[test]
    fn structural_classification_matches_the_replay_contract() {
        assert!(EventKind::Insert { bubble: 0 }.is_structural());
        assert!(EventKind::MaintainRound {
            merges: 0,
            splits: 0,
            cause: Cause::Maintain
        }
        .is_structural());
        assert!(!EventKind::WalCommit {
            bytes: 0,
            records: 0
        }
        .is_structural());
        assert!(!EventKind::Audit { issues: 0 }.is_structural());
        assert!(!EventKind::Health {
            degraded: false,
            buffered: 0
        }
        .is_structural());
    }
}
