//! Delta-maintained clustering with typed subscription deltas.
//!
//! The maintainer crates keep the *summarization* incremental: data
//! bubbles absorb inserts and deletes in sub-linear time. But every
//! epoch the service layers still re-cluster from scratch — a full
//! O(s²) pairwise pass over all `s` bubbles plus a full tree
//! extraction, even when a batch touched three of them. This crate
//! closes that gap: it consumes the maintainer's structural change
//! stream ([`idb_core::BubbleChange`]) and incrementally repairs only
//! the touched reachability neighborhoods, re-extracting the cluster
//! tree through the component cache. The results are **bit-identical**
//! to the from-scratch pipeline on every epoch — incremental
//! bookkeeping decides what to *recompute*, never what the values are —
//! and the differential suite in `tests/equivalence.rs` proves it
//! across every dynamic scenario, engine, parallelism mode and
//! partition count.
//!
//! On top of the maintained tree sits a subscription layer: clients
//! register an [`Interest`] (the whole tree, one subtree, or a
//! predicate) and receive typed [`ClusterDelta`]s — [`ClusterDelta::Born`],
//! [`ClusterDelta::Split`], [`ClusterDelta::Absorbed`],
//! [`ClusterDelta::MembershipChanged`], [`ClusterDelta::Retired`] —
//! with **stable cluster ids**: a cluster that persists across epochs
//! keeps its [`ClusterId`] even as its members drift, so downstream
//! consumers can track "their" cluster through churn. Replaying the
//! full delta stream into a [`TreeReplica`] reconstructs the hierarchy
//! exactly (`tests/subscriptions.rs`).
//!
//! Entry points:
//!
//! * [`DeltaEngine::maintainer_epoch`] — one unsharded
//!   [`idb_core::IncrementalBubbles`];
//! * [`router_epoch`] — every partition of an
//!   [`idb_shard::ShardRouter`], merged in partition order,
//!   bit-identical to the router's own cross-partition pass;
//! * [`DeltaEngine::epoch`] — explicit domains and change logs, for
//!   anything else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deltas;
mod engine;
mod sharded;
mod subscribe;

pub use deltas::{ClusterDelta, ClusterId, TreeReplica};
pub use engine::{DeltaEngine, DeltaParams, EpochReport};
pub use sharded::router_epoch;
pub use subscribe::{Interest, SubscriptionId, VersionedDelta};
