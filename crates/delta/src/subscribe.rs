//! Typed subscriptions over the delta stream.
//!
//! Clients register an [`Interest`] with
//! [`DeltaEngine::subscribe`](crate::DeltaEngine::subscribe) and drain
//! matched [`VersionedDelta`]s with
//! [`DeltaEngine::poll`](crate::DeltaEngine::poll). Delivery guarantees:
//!
//! * **exactly once** — every delta an interest matches is queued for
//!   that subscription exactly once;
//! * **in order** — queued deltas carry their epoch number and are
//!   drained in (epoch, emission) order;
//! * **bounded by the subscription's lifetime** — nothing from epochs
//!   that ran before `subscribe` or after `unsubscribe` is ever
//!   delivered.

use crate::deltas::{ClusterDelta, ClusterId};
use std::collections::VecDeque;
use std::fmt;

/// What a subscription wants to see.
pub enum Interest {
    /// Every delta of every epoch.
    Tree,
    /// Deltas whose subject lies in the subtree rooted at the given
    /// cluster (the cluster itself included). Removal deltas are matched
    /// against the tree they removed the subject *from*, so the final
    /// [`Retired`](ClusterDelta::Retired) of a watched subtree is still
    /// delivered.
    Subtree(ClusterId),
    /// Deltas matching an arbitrary predicate.
    Predicate(Box<dyn Fn(&ClusterDelta) -> bool + Send>),
}

impl fmt::Debug for Interest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interest::Tree => f.write_str("Tree"),
            Interest::Subtree(id) => f.debug_tuple("Subtree").field(id).finish(),
            Interest::Predicate(_) => f.write_str("Predicate(..)"),
        }
    }
}

/// Handle of a registered subscription, unique for the engine's
/// lifetime (ids are never reused, even after unsubscribe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

/// One delivered delta, stamped with the epoch that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionedDelta {
    /// The producing epoch ([`EpochReport::epoch`](crate::EpochReport::epoch)).
    pub epoch: u64,
    /// The delta itself.
    pub delta: ClusterDelta,
}

/// The engine's subscription registry: interests plus their undrained
/// delivery queues.
#[derive(Debug, Default)]
pub(crate) struct Subscriptions {
    next: u64,
    subs: Vec<(SubscriptionId, Interest, VecDeque<VersionedDelta>)>,
}

impl Subscriptions {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn subscribe(&mut self, interest: Interest) -> SubscriptionId {
        let id = SubscriptionId(self.next);
        self.next += 1;
        self.subs.push((id, interest, VecDeque::new()));
        id
    }

    pub(crate) fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let before = self.subs.len();
        self.subs.retain(|(sid, _, _)| *sid != id);
        self.subs.len() != before
    }

    pub(crate) fn poll(&mut self, id: SubscriptionId) -> Vec<VersionedDelta> {
        self.subs
            .iter_mut()
            .find(|(sid, _, _)| *sid == id)
            .map_or_else(Vec::new, |(_, _, queue)| queue.drain(..).collect())
    }

    /// Queues `deltas` (already in emission order) for every subscription
    /// whose interest matches; `in_subtree(root, delta)` answers subtree
    /// membership against the epoch's trees.
    pub(crate) fn fanout(
        &mut self,
        epoch: u64,
        deltas: &[ClusterDelta],
        in_subtree: impl Fn(ClusterId, &ClusterDelta) -> bool,
    ) {
        for (_, interest, queue) in &mut self.subs {
            for delta in deltas {
                let matched = match interest {
                    Interest::Tree => true,
                    Interest::Subtree(root) => in_subtree(*root, delta),
                    Interest::Predicate(pred) => pred(delta),
                };
                if matched {
                    queue.push_back(VersionedDelta {
                        epoch,
                        delta: delta.clone(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn born(id: u64) -> ClusterDelta {
        ClusterDelta::Born {
            id: ClusterId(id),
            parent: None,
            members: vec![id],
        }
    }

    #[test]
    fn ids_are_never_reused_and_poll_after_unsubscribe_is_empty() {
        let mut subs = Subscriptions::new();
        let a = subs.subscribe(Interest::Tree);
        assert!(subs.unsubscribe(a));
        assert!(!subs.unsubscribe(a), "double unsubscribe reports false");
        let b = subs.subscribe(Interest::Tree);
        assert_ne!(a, b);
        subs.fanout(0, &[born(1)], |_, _| true);
        assert!(subs.poll(a).is_empty(), "dead id yields nothing");
        assert_eq!(subs.poll(b).len(), 1);
        assert!(subs.poll(b).is_empty(), "drained exactly once");
    }

    #[test]
    fn predicates_and_subtrees_filter_the_stream() {
        let mut subs = Subscriptions::new();
        let odd = subs.subscribe(Interest::Predicate(Box::new(|d| d.subject().0 % 2 == 1)));
        let sub = subs.subscribe(Interest::Subtree(ClusterId(2)));
        subs.fanout(3, &[born(1), born(2), born(3)], |root, d| {
            d.subject() == root
        });
        let got: Vec<u64> = subs.poll(odd).iter().map(|v| v.delta.subject().0).collect();
        assert_eq!(got, [1, 3]);
        let got: Vec<u64> = subs.poll(sub).iter().map(|v| v.delta.subject().0).collect();
        assert_eq!(got, [2]);
        assert!(subs.poll(sub)[..].is_empty());
    }
}
