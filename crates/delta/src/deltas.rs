//! Typed cluster deltas and the cross-epoch tree diff that emits them.
//!
//! Every epoch the delta engine re-extracts the cluster tree (reusing
//! unchanged components) and diffs it against the previous epoch's tree
//! to produce a stream of [`ClusterDelta`]s with **stable cluster ids**:
//!
//! * the root always carries id 0, for the lifetime of the engine;
//! * a cluster that persists across epochs keeps its id — "persists" is
//!   decided by *point-overlap voting*: under a matched pair of parents,
//!   each new child is matched to the old child contributing the most of
//!   its points (ties broken toward the smaller old id, then the
//!   leftmost new child), each old child matched at most once;
//! * unmatched new clusters are born with fresh, never-reused ids;
//! * unmatched old clusters are retired — as [`ClusterDelta::Absorbed`]
//!   naming the sibling that received the plurality of their points, or
//!   as [`ClusterDelta::Retired`] when none of their points survive
//!   under the parent.
//!
//! The diff is a pure function of the two trees and their memberships —
//! no hash-map iteration order, no RNG — so the delta stream is as
//! deterministic as the trees themselves. Replaying a recorded stream
//! into a [`TreeReplica`] reconstructs the engine's final `(id → parent,
//! members)` view byte for byte; that equivalence is the subscription
//! suite's core assertion.

use idb_clustering::{ClusterNode, ReachabilityPlot};
use std::collections::{BTreeMap, HashMap};

/// A stable cluster identity, valid across epochs for as long as the
/// cluster persists. Ids are never reused; the root is always `ClusterId(0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u64);

/// One typed change to the cluster hierarchy, emitted by the epoch diff.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterDelta {
    /// A cluster that did not exist in the previous epoch. Carries its
    /// full (sorted) membership; `parent` is `None` only for the root in
    /// the engine's first epoch.
    Born {
        /// The new cluster's id.
        id: ClusterId,
        /// The parent cluster, already known to subscribers.
        parent: Option<ClusterId>,
        /// Sorted point ids in the cluster's plot region.
        members: Vec<u64>,
    },
    /// A surviving cluster that was a leaf and now has sub-clusters.
    /// Advisory: the children are separately announced as
    /// [`ClusterDelta::Born`] events in the same epoch.
    Split {
        /// The cluster that split.
        id: ClusterId,
        /// Its new sub-clusters, left to right.
        children: Vec<ClusterId>,
    },
    /// A cluster that ended, with the plurality of its points surviving
    /// inside a sibling under the same parent.
    Absorbed {
        /// The ended cluster.
        id: ClusterId,
        /// The cluster that received most of its points.
        into: ClusterId,
    },
    /// A cluster that ended with none of its points surviving under its
    /// parent (e.g. the points were deleted).
    Retired {
        /// The ended cluster.
        id: ClusterId,
    },
    /// A surviving cluster whose membership changed. Carries the full new
    /// (sorted) membership.
    MembershipChanged {
        /// The cluster whose membership changed.
        id: ClusterId,
        /// The new sorted membership.
        members: Vec<u64>,
    },
}

impl ClusterDelta {
    /// The cluster this delta is about.
    #[must_use]
    pub fn subject(&self) -> ClusterId {
        match self {
            ClusterDelta::Born { id, .. }
            | ClusterDelta::Split { id, .. }
            | ClusterDelta::Absorbed { id, .. }
            | ClusterDelta::Retired { id }
            | ClusterDelta::MembershipChanged { id, .. } => *id,
        }
    }
}

/// The identity-carrying mirror of one extracted cluster tree: the same
/// shape as the epoch's [`ClusterNode`] tree, with the stable id and
/// sorted membership of every node.
#[derive(Debug, Clone)]
pub(crate) struct IdNode {
    pub id: ClusterId,
    pub members: Vec<u64>,
    pub children: Vec<IdNode>,
}

impl IdNode {
    /// `(id, parent)` pairs over the whole tree.
    pub fn parents(&self) -> HashMap<ClusterId, Option<ClusterId>> {
        let mut out = HashMap::new();
        self.collect_parents(None, &mut out);
        out
    }

    fn collect_parents(
        &self,
        parent: Option<ClusterId>,
        out: &mut HashMap<ClusterId, Option<ClusterId>>,
    ) {
        out.insert(self.id, parent);
        for c in &self.children {
            c.collect_parents(Some(self.id), out);
        }
    }

    /// The canonical `(id, parent, members)` view, sorted by id — the
    /// representation [`TreeReplica::snapshot`] reconstructs.
    pub fn canonical(&self) -> Vec<(ClusterId, Option<ClusterId>, Vec<u64>)> {
        let mut out = Vec::new();
        self.collect_canonical(None, &mut out);
        out.sort_by_key(|(id, _, _)| *id);
        out
    }

    fn collect_canonical(
        &self,
        parent: Option<ClusterId>,
        out: &mut Vec<(ClusterId, Option<ClusterId>, Vec<u64>)>,
    ) {
        out.push((self.id, parent, self.members.clone()));
        for c in &self.children {
            c.collect_canonical(Some(self.id), out);
        }
    }
}

/// Sorted point ids of the plot region `[start, end)`.
fn region_members(plot: &ReachabilityPlot, range: (usize, usize)) -> Vec<u64> {
    let mut ids: Vec<u64> = plot.entries()[range.0..range.1]
        .iter()
        .map(|e| e.id)
        .collect();
    ids.sort_unstable();
    ids
}

/// The four delta buckets of one epoch, concatenated in emission order:
/// removals (old-tree postorder) → splits → births (new-tree preorder) →
/// membership changes.
#[derive(Debug, Default)]
struct DiffOut {
    removals: Vec<ClusterDelta>,
    splits: Vec<ClusterDelta>,
    born: Vec<ClusterDelta>,
    membership: Vec<ClusterDelta>,
}

/// Diffs the previous epoch's identity tree against the freshly extracted
/// tree. Returns the new identity tree and the epoch's delta stream.
pub(crate) fn diff_trees(
    prev: Option<&IdNode>,
    tree: &ClusterNode,
    plot: &ReachabilityPlot,
    next_id: &mut u64,
) -> (IdNode, Vec<ClusterDelta>) {
    let mut out = DiffOut::default();
    let root = match prev {
        None => build_fresh(tree, plot, None, next_id, &mut out),
        Some(old) => diff_node(old, tree, plot, next_id, &mut out),
    };
    let mut deltas = out.removals;
    deltas.extend(out.splits);
    deltas.extend(out.born);
    deltas.extend(out.membership);
    (root, deltas)
}

/// Assigns fresh ids to a subtree with no previous-epoch counterpart,
/// emitting `Born` in preorder (parents before children).
fn build_fresh(
    tree: &ClusterNode,
    plot: &ReachabilityPlot,
    parent: Option<ClusterId>,
    next_id: &mut u64,
    out: &mut DiffOut,
) -> IdNode {
    let id = ClusterId(*next_id);
    *next_id += 1;
    let members = region_members(plot, tree.range);
    out.born.push(ClusterDelta::Born {
        id,
        parent,
        members: members.clone(),
    });
    let children = tree
        .children
        .iter()
        .map(|c| build_fresh(c, plot, Some(id), next_id, out))
        .collect();
    IdNode {
        id,
        members,
        children,
    }
}

/// Diffs one matched `(old, new)` pair: carries the old id over, matches
/// the children by point-overlap voting, recurses into matched pairs,
/// births unmatched new children and retires unmatched old ones.
fn diff_node(
    old: &IdNode,
    new: &ClusterNode,
    plot: &ReachabilityPlot,
    next_id: &mut u64,
    out: &mut DiffOut,
) -> IdNode {
    let members = region_members(plot, new.range);
    if members != old.members {
        out.membership.push(ClusterDelta::MembershipChanged {
            id: old.id,
            members: members.clone(),
        });
    }

    // Which old child owns each point (children have disjoint regions, so
    // each point has at most one owner). Lookup only — never iterated.
    let mut point_owner: HashMap<u64, usize> = HashMap::new();
    for (ocp, oc) in old.children.iter().enumerate() {
        for &p in &oc.members {
            point_owner.insert(p, ocp);
        }
    }
    let new_members: Vec<Vec<u64>> = new
        .children
        .iter()
        .map(|c| region_members(plot, c.range))
        .collect();

    // Vote: candidate (overlap, old child, new child) triples, strongest
    // first; ties toward the smaller (older) id, then the leftmost new
    // child. Greedy one-to-one assignment.
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
    for (ncp, nm) in new_members.iter().enumerate() {
        let mut votes = vec![0usize; old.children.len()];
        for p in nm {
            if let Some(&ocp) = point_owner.get(p) {
                votes[ocp] += 1;
            }
        }
        for (ocp, &v) in votes.iter().enumerate() {
            if v > 0 {
                candidates.push((v, ocp, ncp));
            }
        }
    }
    candidates.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then(old.children[a.1].id.cmp(&old.children[b.1].id))
            .then(a.2.cmp(&b.2))
    });
    let mut old_match: Vec<Option<usize>> = vec![None; old.children.len()]; // ocp -> ncp
    let mut new_match: Vec<Option<usize>> = vec![None; new.children.len()]; // ncp -> ocp
    for (_, ocp, ncp) in candidates {
        if old_match[ocp].is_none() && new_match[ncp].is_none() {
            old_match[ocp] = Some(ncp);
            new_match[ncp] = Some(ocp);
        }
    }

    // Build the new children left to right: matched pairs recurse, the
    // rest are born fresh.
    let id_children: Vec<IdNode> = new
        .children
        .iter()
        .enumerate()
        .map(|(ncp, nc)| match new_match[ncp] {
            Some(ocp) => diff_node(&old.children[ocp], nc, plot, next_id, out),
            None => build_fresh(nc, plot, Some(old.id), next_id, out),
        })
        .collect();

    // Retire unmatched old children (whole subtrees, postorder) now that
    // every surviving new child id is known.
    let mut point_dest: HashMap<u64, ClusterId> = HashMap::new();
    for (nm, idc) in new_members.iter().zip(&id_children) {
        for &p in nm {
            point_dest.insert(p, idc.id);
        }
    }
    for (ocp, oc) in old.children.iter().enumerate() {
        if old_match[ocp].is_none() {
            retire_subtree(oc, &point_dest, out);
        }
    }

    // A leaf that grew children split.
    if old.children.is_empty() && !id_children.is_empty() {
        out.splits.push(ClusterDelta::Split {
            id: old.id,
            children: id_children.iter().map(|c| c.id).collect(),
        });
    }

    IdNode {
        id: old.id,
        members,
        children: id_children,
    }
}

/// Emits `Absorbed`/`Retired` for a dead old subtree, children first.
/// `point_dest` maps surviving points to the new child now holding them;
/// a dead cluster is absorbed into the destination of the plurality of
/// its points (ties toward the smaller id), or retired when none survive.
fn retire_subtree(node: &IdNode, point_dest: &HashMap<u64, ClusterId>, out: &mut DiffOut) {
    for c in &node.children {
        retire_subtree(c, point_dest, out);
    }
    let mut counts: BTreeMap<ClusterId, usize> = BTreeMap::new();
    for p in &node.members {
        if let Some(&dest) = point_dest.get(p) {
            *counts.entry(dest).or_default() += 1;
        }
    }
    // BTreeMap iterates in ascending id order, so `max_by_key` on the
    // count alone already breaks ties toward the smaller id (strictly
    // greater counts are required to displace an earlier entry).
    let best = counts
        .iter()
        .fold(None::<(ClusterId, usize)>, |acc, (&id, &n)| match acc {
            Some((_, m)) if m >= n => acc,
            _ => Some((id, n)),
        });
    out.removals.push(match best {
        Some((into, _)) => ClusterDelta::Absorbed { id: node.id, into },
        None => ClusterDelta::Retired { id: node.id },
    });
}

/// A client-side mirror of the cluster hierarchy, driven purely by the
/// delta stream. Applying every delta of every epoch, in order, to an
/// empty replica reconstructs the engine's canonical `(id → parent,
/// members)` view exactly — the replayability contract of the
/// subscription API.
#[derive(Debug, Clone, Default)]
pub struct TreeReplica {
    nodes: BTreeMap<ClusterId, (Option<ClusterId>, Vec<u64>)>,
}

impl TreeReplica {
    /// An empty replica.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one delta.
    pub fn apply(&mut self, delta: &ClusterDelta) {
        match delta {
            ClusterDelta::Born {
                id,
                parent,
                members,
            } => {
                self.nodes.insert(*id, (*parent, members.clone()));
            }
            ClusterDelta::Absorbed { id, .. } | ClusterDelta::Retired { id } => {
                self.nodes.remove(id);
            }
            ClusterDelta::MembershipChanged { id, members } => {
                if let Some((_, m)) = self.nodes.get_mut(id) {
                    *m = members.clone();
                }
            }
            ClusterDelta::Split { .. } => {} // Advisory; births carry the state.
        }
    }

    /// Live clusters as `(id, parent, members)`, sorted by id — directly
    /// comparable to the engine's canonical view.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(ClusterId, Option<ClusterId>, Vec<u64>)> {
        self.nodes
            .iter()
            .map(|(&id, (parent, members))| (id, *parent, members.clone()))
            .collect()
    }

    /// Number of live clusters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no cluster is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plot_of(reach: &[f64]) -> ReachabilityPlot {
        let mut p = ReachabilityPlot::new();
        for (i, &r) in reach.iter().enumerate() {
            p.push(i as u64, r);
        }
        p
    }

    fn leaf(range: (usize, usize)) -> ClusterNode {
        ClusterNode {
            range,
            split_value: None,
            children: Vec::new(),
        }
    }

    fn node(range: (usize, usize), children: Vec<ClusterNode>) -> ClusterNode {
        ClusterNode {
            range,
            split_value: None,
            children,
        }
    }

    #[test]
    fn first_epoch_births_everything_in_preorder() {
        let plot = plot_of(&[f64::INFINITY, 1.0, 1.0, 5.0, 1.0, 1.0]);
        let tree = node((0, 6), vec![leaf((0, 3)), leaf((3, 6))]);
        let mut next = 0;
        let (id_tree, deltas) = diff_trees(None, &tree, &plot, &mut next);
        assert_eq!(id_tree.id, ClusterId(0));
        assert_eq!(
            deltas.iter().map(ClusterDelta::subject).collect::<Vec<_>>(),
            vec![ClusterId(0), ClusterId(1), ClusterId(2)]
        );
        assert!(deltas
            .iter()
            .all(|d| matches!(d, ClusterDelta::Born { .. })));
        let mut replica = TreeReplica::new();
        for d in &deltas {
            replica.apply(d);
        }
        assert_eq!(replica.snapshot(), id_tree.canonical());
    }

    #[test]
    fn stable_ids_survive_an_unchanged_epoch() {
        let plot = plot_of(&[f64::INFINITY, 1.0, 1.0, 5.0, 1.0, 1.0]);
        let tree = node((0, 6), vec![leaf((0, 3)), leaf((3, 6))]);
        let mut next = 0;
        let (first, born) = diff_trees(None, &tree, &plot, &mut next);
        assert_eq!(born.len(), 3);
        let (second, deltas) = diff_trees(Some(&first), &tree, &plot, &mut next);
        assert!(deltas.is_empty(), "{deltas:?}");
        assert_eq!(second.canonical(), first.canonical());
    }

    #[test]
    fn a_split_leaf_reports_split_and_births() {
        let plot = plot_of(&[f64::INFINITY, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let flat = node((0, 6), vec![]);
        let mut next = 0;
        let (first, _) = diff_trees(None, &flat, &plot, &mut next);
        let split = node((0, 6), vec![leaf((0, 3)), leaf((3, 6))]);
        let (second, deltas) = diff_trees(Some(&first), &split, &plot, &mut next);
        assert_eq!(second.id, ClusterId(0));
        let kinds: Vec<&ClusterDelta> = deltas.iter().collect();
        assert!(matches!(
            kinds[0],
            ClusterDelta::Split { id: ClusterId(0), children } if children.len() == 2
        ));
        assert!(matches!(kinds[1], ClusterDelta::Born { .. }));
        assert!(matches!(kinds[2], ClusterDelta::Born { .. }));
    }

    #[test]
    fn overlap_voting_keeps_ids_under_membership_drift() {
        // Two leaves; epoch 2 moves one point between them and keeps both.
        let plot1 = plot_of(&[f64::INFINITY, 1.0, 1.0, 5.0, 1.0, 1.0]);
        let tree1 = node((0, 6), vec![leaf((0, 3)), leaf((3, 6))]);
        let mut next = 0;
        let (first, _) = diff_trees(None, &tree1, &plot1, &mut next);

        // Same ids, boundary shifted: point 3 now in the left region.
        let tree2 = node((0, 6), vec![leaf((0, 4)), leaf((4, 6))]);
        let (second, deltas) = diff_trees(Some(&first), &tree2, &plot1, &mut next);
        assert_eq!(second.children[0].id, first.children[0].id);
        assert_eq!(second.children[1].id, first.children[1].id);
        // Only membership changes, no births or removals.
        assert!(deltas
            .iter()
            .all(|d| matches!(d, ClusterDelta::MembershipChanged { .. })));
        assert_eq!(deltas.len(), 2);
    }

    #[test]
    fn a_vanished_cluster_is_absorbed_into_the_survivor() {
        let plot1 = plot_of(&[f64::INFINITY, 1.0, 1.0, 5.0, 1.0, 1.0]);
        let tree1 = node((0, 6), vec![leaf((0, 3)), leaf((3, 6))]);
        let mut next = 0;
        let (first, _) = diff_trees(None, &tree1, &plot1, &mut next);

        // The right cluster's region merges into the left: one child
        // covering everything. Its points survive inside the survivor.
        let tree2 = node((0, 6), vec![leaf((0, 6))]);
        let (second, deltas) = diff_trees(Some(&first), &tree2, &plot1, &mut next);
        let survivor = second.children[0].id;
        assert_eq!(
            survivor, first.children[0].id,
            "plurality keeps the left id"
        );
        assert!(deltas.iter().any(|d| matches!(
            d,
            ClusterDelta::Absorbed { id, into } if *id == first.children[1].id && *into == survivor
        )));
    }

    #[test]
    fn a_cluster_of_deleted_points_is_retired() {
        let plot1 = plot_of(&[f64::INFINITY, 1.0, 1.0, 5.0, 1.0, 1.0]);
        let tree1 = node((0, 6), vec![leaf((0, 3)), leaf((3, 6))]);
        let mut next = 0;
        let (first, _) = diff_trees(None, &tree1, &plot1, &mut next);

        // Points 3..6 are gone entirely.
        let plot2 = plot_of(&[f64::INFINITY, 1.0, 1.0]);
        let tree2 = node((0, 3), vec![leaf((0, 3))]);
        let (_, deltas) = diff_trees(Some(&first), &tree2, &plot2, &mut next);
        assert!(deltas
            .iter()
            .any(|d| matches!(d, ClusterDelta::Retired { id } if *id == first.children[1].id)));
    }

    #[test]
    fn replay_reconstructs_across_structural_epochs() {
        let mut next = 0;
        let mut replica = TreeReplica::new();
        let plot1 = plot_of(&[f64::INFINITY, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let (mut id_tree, deltas) = diff_trees(None, &node((0, 6), vec![]), &plot1, &mut next);
        for d in &deltas {
            replica.apply(d);
        }

        let epochs: Vec<(ReachabilityPlot, ClusterNode)> = vec![
            (
                plot1.clone(),
                node((0, 6), vec![leaf((0, 3)), leaf((3, 6))]),
            ),
            (
                plot1.clone(),
                node(
                    (0, 6),
                    vec![node((0, 3), vec![leaf((0, 1)), leaf((1, 3))]), leaf((3, 6))],
                ),
            ),
            (
                plot_of(&[f64::INFINITY, 1.0, 1.0]),
                node((0, 3), vec![leaf((0, 3))]),
            ),
        ];
        for (plot, tree) in &epochs {
            let (nt, deltas) = diff_trees(Some(&id_tree), tree, plot, &mut next);
            for d in &deltas {
                replica.apply(d);
            }
            id_tree = nt;
            assert_eq!(replica.snapshot(), id_tree.canonical());
        }
    }
}
