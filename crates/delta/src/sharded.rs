//! Delta clustering over a sharded router.
//!
//! [`router_epoch`] is the sharded counterpart of
//! [`DeltaEngine::maintainer_epoch`]: each online partition's change log
//! is drained and its bubble set becomes one engine domain, in partition
//! order — the exact domain order of
//! [`ShardRouter::cluster`](idb_shard::ShardRouter::cluster), so the
//! delta-maintained ordering is bit-identical to the router's own merged
//! cross-partition pass. Point ids in plots and memberships are
//! [`GlobalId::as_u64`] (partition in the high word).
//!
//! A partition restarted since the previous epoch comes back with
//! change tracking off; [`router_epoch`] re-enables it, which leaves the
//! log invalid for this one epoch and forces a full resync — recovery
//! can never smuggle stale incremental state past the engine.

use crate::engine::{DeltaEngine, EpochReport};
use idb_core::{Bubble, CheckpointStore};
use idb_shard::{GlobalId, ShardError, ShardRouter};
use idb_store::DurableSink;

/// Runs one delta epoch over every partition of `router`.
///
/// # Errors
/// [`ShardError::Unavailable`] naming the first offline partition — like
/// the router's own merged pass, delta clustering needs every domain
/// present.
pub fn router_epoch<S: DurableSink, C: CheckpointStore>(
    engine: &mut DeltaEngine,
    router: &mut ShardRouter<S, C>,
) -> Result<EpochReport, ShardError> {
    let partitions = router.config().partitions;
    let mut changes = Vec::with_capacity(partitions as usize);
    for p in 0..partitions {
        let maintainer = router
            .maintainer_mut(p)
            .ok_or(ShardError::Unavailable { partition: p })?;
        if !maintainer.bubbles().change_tracking() {
            maintainer.set_change_tracking(true);
        }
        changes.push(maintainer.take_changes());
    }
    let domains: Vec<&[Bubble]> = (0..partitions)
        .map(|p| {
            router
                .partition_bubbles(p)
                .expect("checked online above; no drains since")
        })
        .collect();
    Ok(engine.epoch(&domains, changes, |partition, local| {
        GlobalId { partition, local }.as_u64()
    }))
}
