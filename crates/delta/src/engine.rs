//! The delta-maintained clustering engine.
//!
//! [`DeltaEngine`] consumes the maintainer's structural change stream
//! ([`BubbleChange`]) and keeps the whole bubble-level clustering
//! pipeline incrementally maintained across epochs:
//!
//! 1. **Candidate generation** — a [`PairCache`] mirrors the bubble slot
//!    space of every domain (push / swap-remove / in-place stat changes)
//!    and recomputes only the distance neighborhoods of *touched* slots,
//!    bit-identical to a from-scratch matrix;
//! 2. **Expansion** — [`optics_from_matrix`] runs the exact best-first
//!    OPTICS stage `optics_bubbles_with` would run over that matrix;
//! 3. **Extraction** — [`cluster_tree_delta`] re-extracts the cluster
//!    tree, copying components whose reachability bits are unchanged
//!    from the previous epoch's [`TreeCache`];
//! 4. **Diff** — the new tree is diffed against the previous epoch's
//!    identity tree into typed [`ClusterDelta`]s with stable cluster
//!    ids, fanned out to registered subscriptions.
//!
//! Every stage is bit-identical to the from-scratch pipeline
//! (`optics_merged` → `expand` → `cluster_tree`) by construction: the
//! incremental parts only decide *what to recompute*, never *what the
//! values are*. The differential suite in `tests/equivalence.rs` proves
//! it over every dynamic scenario, engine, parallelism mode and
//! partition count.
//!
//! When any domain's change log is unavailable (`take_changes` returned
//! `None`: tracking just enabled, or invalidated by a repair/restart),
//! the engine falls back to a **full resync** — every slot recomputed,
//! same bits, no silent staleness.

use crate::deltas::{diff_trees, ClusterDelta, ClusterId, IdNode};
use crate::subscribe::{Interest, Subscriptions, VersionedDelta};
use idb_clustering::merged::MergedRef;
use idb_clustering::{
    cluster_tree_delta, optics_from_matrix_with_scratch, BubbleOrdering, ClusterNode,
    ExtractParams, OpticsScratch, PairCache, ReachabilityPlot, TreeCache, TreeDeltaStats,
};
use idb_core::{Bubble, BubbleChange, DataSummary, IncrementalBubbles};
use idb_geometry::Parallelism;
use idb_obs::{EventKind, Obs};
use idb_store::PointId;
use std::collections::HashMap;

/// Clustering parameters of a [`DeltaEngine`] — fixed for the engine's
/// lifetime so cached state stays comparable across epochs.
#[derive(Debug, Clone)]
pub struct DeltaParams {
    /// OPTICS neighborhood bound (`f64::INFINITY` for the full
    /// hierarchy).
    pub eps: f64,
    /// OPTICS density threshold, counted in points.
    pub min_pts: usize,
    /// Cluster-tree extraction parameters.
    pub extract: ExtractParams,
    /// Parallelism of the touched-row refresh (a wall-clock knob only —
    /// outputs are bit-identical across modes).
    pub par: Parallelism,
}

impl DeltaParams {
    /// The full hierarchy (`eps = ∞`) with the given density threshold
    /// and minimum cluster size.
    #[must_use]
    pub fn new(min_pts: usize, min_cluster_size: usize) -> Self {
        Self {
            eps: f64::INFINITY,
            min_pts,
            extract: ExtractParams::with_min_size(min_cluster_size),
            par: Parallelism::default(),
        }
    }
}

/// What one [`DeltaEngine::epoch`] did.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// The epoch number (0 for the engine's first epoch).
    pub epoch: u64,
    /// Bubble slots whose distance neighborhood was recomputed.
    pub touched: usize,
    /// Total tracked bubble slots (what a full recompute touches).
    pub total: usize,
    /// Whether the epoch fell back to a full resync (first epoch, a
    /// domain without a valid change log, or a slot-space mismatch).
    pub resynced: bool,
    /// The epoch's cluster deltas, in emission order.
    pub deltas: Vec<ClusterDelta>,
    /// Cluster-tree component reuse counters.
    pub tree: TreeDeltaStats,
}

/// The artifacts of the engine's most recent epoch.
#[derive(Debug, Clone)]
struct EpochArtifacts {
    refs: Vec<MergedRef>,
    ordering: BubbleOrdering,
    plot: ReachabilityPlot,
    tree: ClusterNode,
}

/// The delta-maintained clustering layer. See the module docs.
#[derive(Debug)]
pub struct DeltaEngine {
    params: DeltaParams,
    cache: PairCache,
    tree_cache: TreeCache,
    /// Per cache slot: the owning `(domain, index within domain)`.
    owners: Vec<(u32, u32)>,
    /// Per domain: domain-local bubble index → cache slot.
    domain_slots: Vec<Vec<usize>>,
    /// The previous epoch's identity tree (`None` before the first
    /// epoch).
    id_tree: Option<IdNode>,
    next_cluster_id: u64,
    subs: Subscriptions,
    obs: Obs,
    epochs: u64,
    last: Option<EpochArtifacts>,
    /// Reusable working memory for the per-epoch OPTICS expansion — after
    /// the first epoch the expansion stage allocates nothing. Purely an
    /// optimization; a fresh scratch yields bit-identical orderings.
    optics_scratch: OpticsScratch,
}

impl DeltaEngine {
    /// An engine with the given parameters and no tracked state; the
    /// first epoch resyncs against whatever domains it is shown.
    #[must_use]
    pub fn new(params: DeltaParams) -> Self {
        assert!(params.min_pts > 0, "min_pts must be positive");
        Self {
            params,
            cache: PairCache::new(),
            tree_cache: TreeCache::new(),
            owners: Vec::new(),
            domain_slots: Vec::new(),
            id_tree: None,
            next_cluster_id: 0,
            subs: Subscriptions::new(),
            obs: Obs::disabled(),
            epochs: 0,
            last: None,
            optics_scratch: OpticsScratch::default(),
        }
    }

    /// The engine's clustering parameters.
    #[must_use]
    pub fn params(&self) -> &DeltaParams {
        &self.params
    }

    /// Routes observability through `obs`: every epoch emits an
    /// [`EventKind::DeltaEpoch`] journal event and bumps the
    /// `delta.rows_touched` / `delta.rows_total` / `delta.rows_saved`
    /// counters (the delta-vs-full work ledger).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Epochs run so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The most recent epoch's ordering with per-position provenance,
    /// `None` before the first epoch.
    #[must_use]
    pub fn ordering(&self) -> Option<(&[MergedRef], &BubbleOrdering)> {
        self.last.as_ref().map(|a| (&a.refs[..], &a.ordering))
    }

    /// The most recent epoch's expanded point-level plot, `None` before
    /// the first epoch.
    #[must_use]
    pub fn plot(&self) -> Option<&ReachabilityPlot> {
        self.last.as_ref().map(|a| &a.plot)
    }

    /// The most recent epoch's extracted cluster tree (plot ranges and
    /// split values), `None` before the first epoch.
    #[must_use]
    pub fn tree(&self) -> Option<&ClusterNode> {
        self.last.as_ref().map(|a| &a.tree)
    }

    /// The current hierarchy as `(id, parent, members)` sorted by id —
    /// exactly what replaying the full delta stream into a
    /// [`TreeReplica`](crate::TreeReplica) reconstructs. Empty before the
    /// first epoch.
    #[must_use]
    pub fn clusters(&self) -> Vec<(ClusterId, Option<ClusterId>, Vec<u64>)> {
        self.id_tree
            .as_ref()
            .map_or_else(Vec::new, IdNode::canonical)
    }

    /// Registers a subscription and returns its id. Journals an
    /// [`EventKind::DeltaSubscribe`] event.
    pub fn subscribe(&mut self, interest: Interest) -> crate::SubscriptionId {
        let id = self.subs.subscribe(interest);
        self.obs.emit(EventKind::DeltaSubscribe { id: id.0 }, 0);
        id
    }

    /// Cancels a subscription, dropping any undelivered deltas. Returns
    /// `false` if the id is unknown (already cancelled). Journals an
    /// [`EventKind::DeltaUnsubscribe`] event when it removed something.
    pub fn unsubscribe(&mut self, id: crate::SubscriptionId) -> bool {
        let removed = self.subs.unsubscribe(id);
        if removed {
            self.obs.emit(EventKind::DeltaUnsubscribe { id: id.0 }, 0);
        }
        removed
    }

    /// Drains the deltas queued for a subscription since the last poll
    /// (empty if the id is unknown).
    pub fn poll(&mut self, id: crate::SubscriptionId) -> Vec<VersionedDelta> {
        self.subs.poll(id)
    }

    /// Runs one epoch against a single unsharded maintainer: drains its
    /// change log (enabling tracking on first use — which forces this
    /// epoch to resync, as the log cannot cover what happened before) and
    /// clusters its bubbles. Point ids in plots and memberships are the
    /// maintainer's own store ids.
    pub fn maintainer_epoch(&mut self, bubbles: &mut IncrementalBubbles) -> EpochReport {
        if !bubbles.change_tracking() {
            bubbles.set_change_tracking(true);
        }
        let changes = vec![bubbles.take_changes()];
        let domains = [bubbles.bubbles()];
        self.epoch(&domains, changes, |_, id| u64::from(id.0))
    }

    /// Runs one epoch over `domains` (one slice of bubbles per
    /// maintainer domain, in a fixed domain order), with `changes[d]` the
    /// domain's drained change log (`None` forces a full resync) and
    /// `map_id` translating a domain-local point id into the global id
    /// space used in plots and memberships.
    ///
    /// The resulting ordering, plot and tree are bit-identical to the
    /// from-scratch `optics_merged` → `expand` → `cluster_tree` pipeline
    /// over the same domains.
    ///
    /// # Panics
    /// Panics if `changes.len() != domains.len()`.
    pub fn epoch(
        &mut self,
        domains: &[&[Bubble]],
        changes: Vec<Option<Vec<BubbleChange>>>,
        map_id: impl Fn(u32, PointId) -> u64,
    ) -> EpochReport {
        assert_eq!(
            changes.len(),
            domains.len(),
            "one change log (or None) per domain"
        );
        let timer = self.obs.start();

        // --- 1. Sync the slot space. ---
        let resynced = if self.try_apply_changes(domains, changes) {
            false
        } else {
            self.resync(domains);
            true
        };

        // --- 2. Refresh touched distance neighborhoods. ---
        let slot_summaries: Vec<&Bubble> = self
            .owners
            .iter()
            .map(|&(d, j)| &domains[d as usize][j as usize])
            .collect();
        let touched = self.cache.refresh(&slot_summaries, self.params.par);
        let total = self.owners.len();

        // --- 3. Expand over the cached matrix, domain-major like
        // `optics_merged`. ---
        let live: Vec<usize> = self
            .domain_slots
            .iter()
            .enumerate()
            .flat_map(|(d, slots)| {
                slots
                    .iter()
                    .enumerate()
                    .filter(move |&(j, _)| domains[d][j].n() > 0)
                    .map(|(_, &c)| c)
            })
            .collect();
        let matrix = self.cache.live_view(&live);
        let ordering = optics_from_matrix_with_scratch(
            &slot_summaries,
            &live,
            &matrix,
            self.params.eps,
            self.params.min_pts,
            &mut self.optics_scratch,
        );
        let refs: Vec<MergedRef> = ordering
            .order
            .iter()
            .map(|&c| {
                let (domain, index) = self.owners[c];
                MergedRef {
                    domain,
                    index: index as usize,
                }
            })
            .collect();

        // --- 4. Expand to the point level and re-extract the tree. ---
        let plot = ordering.expand(|c| {
            let (d, j) = self.owners[c];
            domains[d as usize][j as usize]
                .members()
                .iter()
                .map(|&id| map_id(d, id))
                .collect::<Vec<u64>>()
        });
        let (tree, tree_stats) =
            cluster_tree_delta(&plot, &self.params.extract, &mut self.tree_cache);

        // --- 5. Diff into typed deltas with stable ids. ---
        let (id_tree, deltas) = diff_trees(
            self.id_tree.as_ref(),
            &tree,
            &plot,
            &mut self.next_cluster_id,
        );
        let old_parents = self
            .id_tree
            .as_ref()
            .map(IdNode::parents)
            .unwrap_or_default();
        let new_parents = id_tree.parents();
        self.id_tree = Some(id_tree);

        // --- 6. Fan out to subscriptions and the observability ledger. ---
        let epoch = self.epochs;
        self.epochs += 1;
        self.subs.fanout(epoch, &deltas, |root, delta| {
            in_subtree(root, delta, &old_parents, &new_parents)
        });
        if self.obs.enabled() {
            self.obs.emit_timed(
                EventKind::DeltaEpoch {
                    touched: touched as u32,
                    total: total as u32,
                    deltas: deltas.len() as u32,
                },
                &timer,
            );
            let metrics = self.obs.metrics();
            metrics.counter("delta.epochs").inc();
            metrics.counter("delta.rows_touched").add(touched as u64);
            metrics.counter("delta.rows_total").add(total as u64);
            metrics
                .counter("delta.rows_saved")
                .add((total - touched) as u64);
            if resynced {
                metrics.counter("delta.resyncs").inc();
            }
        }
        self.last = Some(EpochArtifacts {
            refs,
            ordering,
            plot,
            tree,
        });

        EpochReport {
            epoch,
            touched,
            total,
            resynced,
            deltas,
            tree: tree_stats,
        }
    }

    /// Applies per-domain change logs to the slot mapping and the pair
    /// cache. Returns `false` when a full resync is required instead:
    /// domain count changed, a log is missing, or the resulting mapping
    /// does not cover the domains (a defensive cross-check).
    fn try_apply_changes(
        &mut self,
        domains: &[&[Bubble]],
        changes: Vec<Option<Vec<BubbleChange>>>,
    ) -> bool {
        if self.domain_slots.len() != domains.len() {
            return false;
        }
        if changes.iter().any(Option::is_none) {
            return false;
        }
        for (d, log) in changes.into_iter().enumerate() {
            for change in log.expect("checked above") {
                match change {
                    BubbleChange::Touched(i) => {
                        let Some(&c) = self.domain_slots[d].get(i as usize) else {
                            return false;
                        };
                        self.cache.touch(c);
                    }
                    BubbleChange::Pushed => {
                        let c = self.cache.slots();
                        self.cache.push();
                        self.owners
                            .push((d as u32, self.domain_slots[d].len() as u32));
                        self.domain_slots[d].push(c);
                    }
                    BubbleChange::SwapRemoved(i) => {
                        if !self.apply_swap_remove(d, i as usize) {
                            return false;
                        }
                    }
                }
            }
        }
        // The mapping must exactly cover the domains we were shown.
        self.domain_slots.len() == domains.len()
            && self
                .domain_slots
                .iter()
                .zip(domains)
                .all(|(slots, dom)| slots.len() == dom.len())
    }

    /// Mirrors a maintainer-side `swap_remove(i)` in domain `d`: the
    /// domain's last bubble moved to local index `i`, and the cache's
    /// last slot moved into the removed bubble's slot.
    fn apply_swap_remove(&mut self, d: usize, i: usize) -> bool {
        let Some(&c_removed) = self.domain_slots[d].get(i) else {
            return false;
        };
        // Domain-local remap (maintainer Vec::swap_remove semantics).
        let c_last_local = self.domain_slots[d].pop().expect("get() proved non-empty");
        if i < self.domain_slots[d].len() {
            self.domain_slots[d][i] = c_last_local;
            self.owners[c_last_local] = (d as u32, i as u32);
        }
        // Global cache remap (PairCache::swap_remove semantics).
        self.cache.swap_remove(c_removed);
        let moved_owner = self.owners.pop().expect("owners mirror cache slots");
        if c_removed < self.owners.len() {
            self.owners[c_removed] = moved_owner;
            self.domain_slots[moved_owner.0 as usize][moved_owner.1 as usize] = c_removed;
        }
        true
    }

    /// Rebuilds the slot mapping from scratch and marks every slot dirty
    /// — the sound fallback whenever incremental bookkeeping cannot be
    /// trusted.
    fn resync(&mut self, domains: &[&[Bubble]]) {
        self.owners.clear();
        self.domain_slots = domains
            .iter()
            .enumerate()
            .map(|(d, dom)| {
                (0..dom.len())
                    .map(|j| {
                        self.owners.push((d as u32, j as u32));
                        self.owners.len() - 1
                    })
                    .collect()
            })
            .collect();
        self.cache.reset(self.owners.len());
    }
}

/// Whether `delta`'s subject lies in the subtree rooted at `root`,
/// walking the parent chain of the tree the subject belongs to (the old
/// tree for removals, the new tree otherwise).
fn in_subtree(
    root: ClusterId,
    delta: &ClusterDelta,
    old_parents: &HashMap<ClusterId, Option<ClusterId>>,
    new_parents: &HashMap<ClusterId, Option<ClusterId>>,
) -> bool {
    let parents = match delta {
        ClusterDelta::Absorbed { .. } | ClusterDelta::Retired { .. } => old_parents,
        _ => new_parents,
    };
    let mut at = Some(delta.subject());
    while let Some(id) = at {
        if id == root {
            return true;
        }
        at = parents.get(&id).copied().flatten();
    }
    false
}
