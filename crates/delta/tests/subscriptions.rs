//! Delivery-contract suite for the subscription layer.
//!
//! Interleaved subscribe/unsubscribe during churn must deliver every
//! matched delta exactly once, in epoch order, and nothing from epochs
//! outside the subscription's lifetime — and replaying the full
//! recorded delta stream into a [`TreeReplica`] starting from an empty
//! tree must reconstruct the engine's final hierarchy byte for byte.

use idb_clustering::ExtractParams;
use idb_core::{IncrementalBubbles, MaintainerConfig};
use idb_delta::{
    ClusterDelta, ClusterId, DeltaEngine, DeltaParams, Interest, TreeReplica, VersionedDelta,
};
use idb_geometry::{Parallelism, SearchStats};
use idb_synth::{ScenarioEngine, ScenarioKind, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::Cell;

const DIM: usize = 2;
const EPOCHS: u64 = 10;

/// Drives a churn-heavy scenario for [`EPOCHS`] epochs, calling
/// `at_epoch(engine, epoch)` before each epoch runs and
/// `after_epoch(engine, epoch, &report_deltas)` after it.
fn drive(
    mut at_epoch: impl FnMut(&mut DeltaEngine, u64),
    mut after_epoch: impl FnMut(&mut DeltaEngine, u64, &[ClusterDelta]),
) -> DeltaEngine {
    let spec = ScenarioSpec::named(ScenarioKind::Complex, DIM, 500, 0.12);
    let mut scenario = ScenarioEngine::new(spec);
    let mut srng = StdRng::seed_from_u64(4242);
    let mut store = scenario.populate(&mut srng);
    let mut mrng = StdRng::seed_from_u64(7);
    let mut search = SearchStats::new();
    let mut bubbles =
        IncrementalBubbles::build(&store, MaintainerConfig::new(14), &mut mrng, &mut search);
    let mut engine = DeltaEngine::new(DeltaParams {
        eps: f64::INFINITY,
        min_pts: 6,
        extract: ExtractParams::with_min_size(8),
        par: Parallelism::Serial,
    });
    for epoch in 0..EPOCHS {
        if epoch > 0 {
            let batch = scenario.plan(&mut srng);
            let got = bubbles.apply_batch(&mut store, &batch, &mut search);
            scenario.confirm(&got);
            bubbles.maintain(&store, &mut mrng, &mut search);
        }
        at_epoch(&mut engine, epoch);
        let report = engine.maintainer_epoch(&mut bubbles);
        assert_eq!(report.epoch, epoch);
        after_epoch(&mut engine, epoch, &report.deltas);
    }
    engine
}

#[test]
fn a_tree_subscription_sees_every_delta_exactly_once_in_epoch_order() {
    let sub = Cell::new(None);
    let mut received: Vec<VersionedDelta> = Vec::new();
    let mut emitted: Vec<(u64, ClusterDelta)> = Vec::new();
    let engine = drive(
        |engine, epoch| {
            if epoch == 0 {
                sub.set(Some(engine.subscribe(Interest::Tree)));
            }
        },
        |engine, epoch, deltas| {
            emitted.extend(deltas.iter().map(|d| (epoch, d.clone())));
            // Poll on every other epoch only: queued deltas must survive
            // un-drained across epochs and still come out in order.
            if epoch % 2 == 1 || epoch == EPOCHS - 1 {
                received.extend(engine.poll(sub.get().unwrap()));
            }
        },
    );
    let got: Vec<(u64, ClusterDelta)> = received.into_iter().map(|v| (v.epoch, v.delta)).collect();
    assert_eq!(got, emitted, "exactly once, in epoch order");
    assert!(
        emitted
            .iter()
            .map(|(e, _)| *e)
            .collect::<Vec<u64>>()
            .windows(2)
            .all(|w| w[0] <= w[1]),
        "epoch stamps are nondecreasing"
    );
    assert!(!engine.clusters().is_empty(), "the run produced a tree");
}

#[test]
fn replaying_the_recorded_stream_reconstructs_the_final_tree() {
    let sub = Cell::new(None);
    let mut replica = TreeReplica::new();
    let engine = drive(
        |engine, epoch| {
            if epoch == 0 {
                sub.set(Some(engine.subscribe(Interest::Tree)));
            }
        },
        |engine, _, _| {
            for v in engine.poll(sub.get().unwrap()) {
                replica.apply(&v.delta);
            }
        },
    );
    assert_eq!(
        replica.snapshot(),
        engine.clusters(),
        "replay from empty reconstructs the hierarchy byte for byte"
    );
}

#[test]
fn a_mid_stream_subscription_is_bounded_by_its_lifetime() {
    const FROM: u64 = 3;
    const UNTIL: u64 = 7; // unsubscribed before epoch 7 runs
    let all = Cell::new(None);
    let mid = Cell::new(None);
    let mut from_all: Vec<VersionedDelta> = Vec::new();
    let mut from_mid: Vec<VersionedDelta> = Vec::new();
    drive(
        |engine, epoch| {
            if epoch == 0 {
                all.set(Some(engine.subscribe(Interest::Tree)));
            }
            if epoch == FROM {
                mid.set(Some(engine.subscribe(Interest::Tree)));
            }
            if epoch == UNTIL {
                // Undrained deltas die with the subscription.
                assert!(engine.unsubscribe(mid.get().unwrap()));
                assert!(!engine.unsubscribe(mid.get().unwrap()), "already gone");
            }
        },
        |engine, epoch, _| {
            from_all.extend(engine.poll(all.get().unwrap()));
            if (FROM..UNTIL).contains(&epoch) && epoch + 1 != UNTIL {
                from_mid.extend(engine.poll(mid.get().unwrap()));
            }
            if epoch >= UNTIL {
                assert!(
                    engine.poll(mid.get().unwrap()).is_empty(),
                    "nothing delivered after unsubscribe"
                );
            }
        },
    );
    // The mid-stream subscriber saw exactly the full stream's slice for
    // the epochs it was alive and polled — nothing earlier, nothing
    // later, nothing twice. (The final alive epoch was intentionally
    // left undrained; those deltas were dropped at unsubscribe.)
    let expect: Vec<VersionedDelta> = from_all
        .iter()
        .filter(|v| (FROM..UNTIL - 1).contains(&v.epoch))
        .cloned()
        .collect();
    assert_eq!(from_mid, expect);
    assert!(
        from_mid.iter().all(|v| v.epoch >= FROM),
        "nothing from before subscribe"
    );
}

#[test]
fn subtree_and_predicate_interests_filter_consistently() {
    let tree_sub = Cell::new(None);
    let root_sub = Cell::new(None);
    let retired_sub = Cell::new(None);
    let mut all: Vec<VersionedDelta> = Vec::new();
    let mut under_root: Vec<VersionedDelta> = Vec::new();
    let mut retired: Vec<VersionedDelta> = Vec::new();
    drive(
        |engine, epoch| {
            if epoch == 0 {
                tree_sub.set(Some(engine.subscribe(Interest::Tree)));
                // The root id is pinned to 0 for the engine's lifetime,
                // so subscribing to its subtree before the first epoch is
                // well-defined — and must match everything.
                root_sub.set(Some(engine.subscribe(Interest::Subtree(ClusterId(0)))));
                retired_sub.set(Some(engine.subscribe(Interest::Predicate(Box::new(|d| {
                    matches!(d, ClusterDelta::Retired { .. })
                })))));
            }
        },
        |engine, _, _| {
            all.extend(engine.poll(tree_sub.get().unwrap()));
            under_root.extend(engine.poll(root_sub.get().unwrap()));
            retired.extend(engine.poll(retired_sub.get().unwrap()));
        },
    );
    assert_eq!(
        all, under_root,
        "every delta's subject is under the root by ancestry"
    );
    let expect: Vec<VersionedDelta> = all
        .iter()
        .filter(|v| matches!(v.delta, ClusterDelta::Retired { .. }))
        .cloned()
        .collect();
    assert_eq!(retired, expect, "predicate sees exactly its matches");
}
