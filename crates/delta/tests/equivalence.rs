//! The delta-clustering differential suite.
//!
//! One contract, proven by byte-level comparison on every epoch of
//! every run: the delta-maintained pipeline — change-log bookkeeping,
//! incremental pair-cache refresh, matrix-fed expansion, component-
//! cached extraction — produces **bit-identical** artifacts to the
//! from-scratch pipeline (`optics_bubbles_with` / `optics_merged` →
//! `expand` → `cluster_tree`):
//!
//! * the ordered provenance (which bubble at which position),
//! * the reachability and virtual-reachability bits,
//! * the expanded point-level plot bits,
//! * the extracted cluster tree (ranges and split-value bits).
//!
//! The case matrix spans all six paper scenarios (plus the extended
//! dynamics), every seed-search engine with warm-start on and off,
//! serial and threaded refresh, unsharded maintainers and routers at
//! one and four partitions, with fault-injected batches and a
//! crash/restart (forced resync) along the way — well over 256 compared
//! epochs in total; each test asserts its own floor.

use idb_clustering::{
    cluster_tree, optics_bubbles_with, optics_merged, BubbleOrdering, ClusterNode, ExtractParams,
    MergedRef,
};
use idb_core::{
    DataSummary, DurabilityConfig, IncrementalBubbles, MaintainerConfig, MemCheckpoints, SeedSearch,
};
use idb_delta::{router_epoch, DeltaEngine, DeltaParams, EpochReport};
use idb_geometry::{Parallelism, SearchStats};
use idb_obs::Obs;
use idb_shard::{GlobalId, ShardConfig, ShardRouter};
use idb_store::{Batch, MemSink, PointId, PointStore};
use idb_synth::{ScenarioEngine, ScenarioKind, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 2;
const SCENARIO_SEED: u64 = 20_260_808;
const MAINT_SEED: u64 = 99;
const MIN_PTS: usize = 6;
const MIN_CLUSTER: usize = 8;

fn params(par: Parallelism) -> DeltaParams {
    DeltaParams {
        eps: f64::INFINITY,
        min_pts: MIN_PTS,
        extract: ExtractParams::with_min_size(MIN_CLUSTER),
        par,
    }
}

/// Preorder tree serialization: range, split bits, child count.
fn tree_bits(node: &ClusterNode) -> Vec<(usize, usize, u64, usize)> {
    fn walk(n: &ClusterNode, out: &mut Vec<(usize, usize, u64, usize)>) {
        out.push((
            n.range.0,
            n.range.1,
            n.split_value.map_or(u64::MAX, f64::to_bits),
            n.children.len(),
        ));
        for c in &n.children {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    walk(node, &mut out);
    out
}

/// Asserts every comparable artifact of the engine's last epoch equals
/// the from-scratch reference computed over the same domains.
fn assert_epoch_matches(
    engine: &DeltaEngine,
    scratch_refs: &[MergedRef],
    scratch: &BubbleOrdering,
    scratch_plot_bits: &[(u64, u64)],
    scratch_tree: &ClusterNode,
    label: &str,
) {
    let (refs, ordering) = engine.ordering().expect("epoch ran");
    let scratch_provenance: Vec<MergedRef> =
        scratch.order.iter().map(|&i| scratch_refs[i]).collect();
    assert_eq!(refs, &scratch_provenance[..], "{label}: provenance");
    let bits = |v: &[f64]| v.iter().map(|r| r.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(&ordering.reachability),
        bits(&scratch.reachability),
        "{label}: reachability bits"
    );
    assert_eq!(
        bits(&ordering.virtual_reachability),
        bits(&scratch.virtual_reachability),
        "{label}: virtual reachability bits"
    );
    let plot_bits: Vec<(u64, u64)> = engine
        .plot()
        .expect("epoch ran")
        .entries()
        .iter()
        .map(|e| (e.id, e.reachability.to_bits()))
        .collect();
    assert_eq!(plot_bits, scratch_plot_bits, "{label}: plot bits");
    assert_eq!(
        tree_bits(engine.tree().expect("epoch ran")),
        tree_bits(scratch_tree),
        "{label}: tree bits"
    );
}

/// Drives one unsharded scenario run, comparing every epoch. Returns
/// the number of compared epochs and whether any steady-state epoch
/// actually saved work (touched < total).
fn run_unsharded(
    kind: ScenarioKind,
    seed_search: SeedSearch,
    warm_start: bool,
    par: Parallelism,
    epochs: usize,
) -> (usize, bool) {
    let spec = ScenarioSpec::named(kind, DIM, 420, 0.10);
    let mut scenario = ScenarioEngine::new(spec);
    let mut srng = StdRng::seed_from_u64(SCENARIO_SEED);
    let mut store = scenario.populate(&mut srng);
    let mut mrng = StdRng::seed_from_u64(MAINT_SEED);
    let mut search = SearchStats::new();
    let mconfig = MaintainerConfig::new(14)
        .with_seed_search(seed_search)
        .with_warm_start(warm_start)
        .with_parallelism(Parallelism::Serial);
    let mut bubbles = IncrementalBubbles::build(&store, mconfig, &mut mrng, &mut search);

    let mut engine = DeltaEngine::new(params(par));
    engine.set_obs(Obs::from_env());
    let mut cases = 0;
    let mut saved_work = false;
    for round in 0..epochs {
        if round > 0 {
            let batch = scenario.plan(&mut srng);
            let got = bubbles.apply_batch(&mut store, &batch, &mut search);
            scenario.confirm(&got);
            bubbles.maintain(&store, &mut mrng, &mut search);
        }
        let report = engine.maintainer_epoch(&mut bubbles);
        assert!(
            report.touched <= report.total,
            "touched must never exceed total"
        );
        assert_eq!(report.resynced, round == 0, "only the first epoch resyncs");
        if round > 0 && report.touched < report.total {
            saved_work = true;
        }

        let scratch = optics_bubbles_with(bubbles.bubbles(), f64::INFINITY, MIN_PTS, par);
        let scratch_refs: Vec<MergedRef> = (0..bubbles.bubbles().len())
            .map(|index| MergedRef { domain: 0, index })
            .collect();
        let scratch_plot = scratch.expand(|i| {
            bubbles.bubbles()[i]
                .members()
                .iter()
                .map(|id| u64::from(id.0))
                .collect::<Vec<u64>>()
        });
        let scratch_tree = cluster_tree(&scratch_plot, &ExtractParams::with_min_size(MIN_CLUSTER));
        let scratch_plot_bits: Vec<(u64, u64)> = scratch_plot
            .entries()
            .iter()
            .map(|e| (e.id, e.reachability.to_bits()))
            .collect();
        assert_epoch_matches(
            &engine,
            &scratch_refs,
            &scratch,
            &scratch_plot_bits,
            &scratch_tree,
            &format!("{kind:?}/{seed_search:?}/warm={warm_start}/{par:?} round {round}"),
        );
        cases += 1;
    }
    (cases, saved_work)
}

#[test]
fn every_scenario_engine_and_warm_start_is_bit_identical() {
    let mut cases = 0;
    let mut any_saved = false;
    for kind in ScenarioKind::all() {
        for seed_search in [SeedSearch::Brute, SeedSearch::Pruned, SeedSearch::KdTree] {
            for warm_start in [true, false] {
                let (c, saved) =
                    run_unsharded(kind, seed_search, warm_start, Parallelism::Serial, 6);
                cases += c;
                any_saved = any_saved || saved;
            }
        }
    }
    assert!(cases >= 216, "case floor: got {cases}");
    assert!(
        any_saved,
        "at least one steady-state epoch must refresh fewer slots than a full recompute"
    );
}

#[test]
fn extended_dynamics_and_threaded_refresh_are_bit_identical() {
    let mut cases = 0;
    for kind in [
        ScenarioKind::Merge,
        ScenarioKind::SplitDrift,
        ScenarioKind::Densify,
    ] {
        for par in [Parallelism::Serial, Parallelism::Threads(3)] {
            let (c, _) = run_unsharded(kind, SeedSearch::Pruned, true, par, 5);
            cases += c;
        }
    }
    assert!(cases >= 30, "case floor: got {cases}");
}

/// Drives one sharded run at the given partition count, comparing every
/// epoch against the router's own merged cross-partition pass, with
/// fault-injected batches and (when `crash` is set) a kill/restart of
/// partition 0 in the middle — which must force exactly one resync and
/// still be bit-identical.
fn run_sharded(partitions: u32, par: Parallelism, crash: bool, rounds: usize) -> usize {
    let mconfig = MaintainerConfig::new(10).with_parallelism(Parallelism::Serial);
    let spec = ScenarioSpec::named(ScenarioKind::Complex, DIM, 600, 0.12);
    let mut scenario = ScenarioEngine::new(spec);
    let mut srng = StdRng::seed_from_u64(SCENARIO_SEED);
    let initial = scenario.populate_batch(&mut srng);
    let (mut router, ids) = ShardRouter::create(
        DIM,
        &initial,
        &mconfig,
        ShardConfig::new(partitions),
        DurabilityConfig::default(),
        MAINT_SEED,
        &Obs::disabled(),
        |_| (MemSink::new(), MemCheckpoints::new()),
    )
    .expect("create");
    scenario.confirm(&ids);

    let mut engine = DeltaEngine::new(params(par));
    engine.set_obs(Obs::from_env());
    let mut cases = 0;
    let mut faults = 0;
    for round in 0..rounds {
        if round > 0 {
            if round % 4 == 3 {
                // A fault-injected batch: rejected whole, must leave the
                // delta state stream untouched (the next epoch sees only
                // genuine changes).
                let bad = Batch {
                    deletes: Vec::new(),
                    inserts: vec![(vec![f64::NAN; DIM], None)],
                };
                router.apply(&bad).expect_err("NaN insert must be rejected");
                faults += 1;
            }
            if crash && round == rounds / 2 {
                let wal = router
                    .maintainer_mut(0)
                    .unwrap()
                    .wal_sink_mut()
                    .bytes()
                    .to_vec();
                let (sink, checkpoints) = router.kill_partition(0).expect("online");
                router
                    .restart_partition(0, &wal, sink, checkpoints)
                    .expect("restart");
            }
            let batch = scenario.plan(&mut srng);
            let got = router.apply(&batch).expect("apply");
            scenario.confirm(&got);
        }
        let report: EpochReport = router_epoch(&mut engine, &mut router).expect("online");
        assert!(report.touched <= report.total);
        if crash && round == rounds / 2 {
            assert!(report.resynced, "a restarted partition must force resync");
        } else if round > 0 {
            assert!(!report.resynced, "round {round}: spurious resync");
        }

        let (scratch_refs, scratch) = router
            .cluster(f64::INFINITY, MIN_PTS, Parallelism::Serial)
            .expect("cluster");
        let scratch_plot = scratch.expand(|i| {
            let r = scratch_refs[i];
            router.partition_bubbles(r.domain).unwrap()[r.index]
                .members()
                .iter()
                .map(|&local| {
                    GlobalId {
                        partition: r.domain,
                        local,
                    }
                    .as_u64()
                })
                .collect::<Vec<u64>>()
        });
        let scratch_tree = cluster_tree(&scratch_plot, &ExtractParams::with_min_size(MIN_CLUSTER));
        let scratch_plot_bits: Vec<(u64, u64)> = scratch_plot
            .entries()
            .iter()
            .map(|e| (e.id, e.reachability.to_bits()))
            .collect();
        assert_epoch_matches(
            &engine,
            &scratch_refs,
            &scratch,
            &scratch_plot_bits,
            &scratch_tree,
            &format!("V={partitions}/{par:?}/crash={crash} round {round}"),
        );
        cases += 1;
    }
    assert!(faults > 0, "the run must exercise fault-injected batches");
    cases
}

#[test]
fn sharded_delta_matches_the_merged_cross_partition_pass() {
    let mut cases = 0;
    for partitions in [1u32, 4] {
        for par in [Parallelism::Serial, Parallelism::Threads(2)] {
            cases += run_sharded(partitions, par, false, 8);
        }
    }
    assert!(cases >= 32, "case floor: got {cases}");
}

#[test]
fn a_partition_restart_forces_one_resync_and_stays_bit_identical() {
    let cases = run_sharded(4, Parallelism::Serial, true, 10);
    assert!(cases >= 10, "case floor: got {cases}");
}

/// An unsharded maintainer that suffers a repair mid-run: the change
/// log is invalidated, the next epoch must resync — and still match.
#[test]
fn a_repair_invalidates_the_log_and_the_next_epoch_resyncs() {
    let spec = ScenarioSpec::named(ScenarioKind::Random, DIM, 400, 0.10);
    let mut scenario = ScenarioEngine::new(spec);
    let mut srng = StdRng::seed_from_u64(SCENARIO_SEED);
    let mut store = scenario.populate(&mut srng);
    let mut mrng = StdRng::seed_from_u64(MAINT_SEED);
    let mut search = SearchStats::new();
    let mut bubbles =
        IncrementalBubbles::build(&store, MaintainerConfig::new(12), &mut mrng, &mut search);
    let mut engine = DeltaEngine::new(params(Parallelism::Serial));
    engine.maintainer_epoch(&mut bubbles);

    for round in 0..4 {
        let batch = scenario.plan(&mut srng);
        let got = bubbles.apply_batch(&mut store, &batch, &mut search);
        scenario.confirm(&got);
        if round == 1 {
            // Sabotage one bubble's statistics, then repair: the rebuild
            // drains and reattaches wholesale, so incremental bookkeeping
            // can no longer be trusted and the log is invalidated.
            let wrong_n = bubbles.bubbles()[0].n() + 7;
            bubbles.corrupt_stats(0, wrong_n, vec![0.0; DIM], 0.0);
            let report = bubbles.repair(&store, &mut mrng, &mut search);
            assert!(report.issues_found > 0, "sabotage must be detected");
        }
        let report = engine.maintainer_epoch(&mut bubbles);
        assert_eq!(
            report.resynced,
            round == 1,
            "round {round}: resync exactly after the repair"
        );

        let scratch = optics_bubbles_with(
            bubbles.bubbles(),
            f64::INFINITY,
            MIN_PTS,
            Parallelism::Serial,
        );
        let bits = |v: &[f64]| v.iter().map(|r| r.to_bits()).collect::<Vec<u64>>();
        let (refs, ordering) = engine.ordering().expect("epoch ran");
        let scratch_provenance: Vec<MergedRef> = scratch
            .order
            .iter()
            .map(|&index| MergedRef { domain: 0, index })
            .collect();
        assert_eq!(refs, &scratch_provenance[..], "round {round}: provenance");
        assert_eq!(
            bits(&ordering.reachability),
            bits(&scratch.reachability),
            "round {round}: reachability bits"
        );
    }
}

/// The delta engine over explicit domains must also survive a domain
/// *count* change (a partition added between epochs) by resyncing.
#[test]
fn a_domain_count_change_forces_a_resync() {
    let mut store = PointStore::new(DIM);
    for i in 0..120 {
        let x = f64::from(i % 2) * 40.0 + f64::from(i % 10);
        store.insert(&[x, f64::from(i / 2)], None);
    }
    let mut mrng = StdRng::seed_from_u64(MAINT_SEED);
    let mut search = SearchStats::new();
    let mut a = IncrementalBubbles::build(&store, MaintainerConfig::new(6), &mut mrng, &mut search);
    let mut b = IncrementalBubbles::build(&store, MaintainerConfig::new(6), &mut mrng, &mut search);
    a.set_change_tracking(true);
    b.set_change_tracking(true);
    let map_id = |d: u32, id: PointId| (u64::from(d) << 32) | u64::from(id.0);

    let mut engine = DeltaEngine::new(params(Parallelism::Serial));
    let changes = vec![a.take_changes()];
    let r1 = engine.epoch(&[a.bubbles()], changes, map_id);
    assert!(r1.resynced, "first epoch resyncs");
    let changes = vec![a.take_changes(), b.take_changes()];
    let r2 = engine.epoch(&[a.bubbles(), b.bubbles()], changes, map_id);
    assert!(r2.resynced, "domain count changed");

    let (scratch_refs, scratch) = optics_merged(
        &[a.bubbles(), b.bubbles()],
        f64::INFINITY,
        MIN_PTS,
        Parallelism::Serial,
    );
    let (refs, ordering) = engine.ordering().expect("epoch ran");
    let scratch_provenance: Vec<MergedRef> =
        scratch.order.iter().map(|&i| scratch_refs[i]).collect();
    assert_eq!(refs, &scratch_provenance[..]);
    assert_eq!(
        ordering
            .reachability
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<u64>>(),
        scratch
            .reachability
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<u64>>(),
    );
}
