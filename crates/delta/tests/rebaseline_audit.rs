//! The differential **re-baseline audit** for the canonical 4-lane kernel
//! switch (DESIGN.md §15).
//!
//! When the canonical kernels changed their accumulation order (4
//! independent accumulators + tree reduction instead of one sequential
//! chain), every `f64` distance at `d ≥ 4` changed its low bits — a
//! one-time re-baseline. What must hold *after* the switch, and what this
//! suite re-enforces on a `d = 10` dynamic scenario (two full 4-lane
//! blocks plus a 2-lane remainder, so every kernel path runs):
//!
//! * **engines × parallelism**: every seed-search engine under serial and
//!   threaded execution drives the maintainer through the *same* dynamic
//!   flow, producing bit-identical populations and clustering artifacts;
//! * **delta vs scratch**: on every epoch of every configuration, the
//!   delta-maintained pipeline equals the from-scratch pipeline bit for
//!   bit;
//! * **shard counts 1 and 4**: the sharded service layer at both
//!   partition counts keeps its delta pipeline bit-identical to its own
//!   merged cross-partition scratch pass.

use idb_clustering::{cluster_tree, optics_bubbles_with, ClusterNode, ExtractParams, MergedRef};
use idb_core::{
    DurabilityConfig, IncrementalBubbles, MaintainerConfig, MemCheckpoints, SeedSearch,
};
use idb_delta::{router_epoch, DeltaEngine, DeltaParams};
use idb_geometry::{Parallelism, SearchStats};
use idb_obs::Obs;
use idb_shard::{GlobalId, ShardConfig, ShardRouter};
use idb_store::PointId;
use idb_synth::{ScenarioEngine, ScenarioKind, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// High-dimensional on purpose: two full 4-lane blocks + a 2-lane
/// remainder, the shape at which the canonical kernel's values diverge
/// from the historical scalar kernel.
const DIM: usize = 10;
const SCENARIO_SEED: u64 = 4_177;
const MAINT_SEED: u64 = 23;
const MIN_PTS: usize = 5;
const MIN_CLUSTER: usize = 6;

fn params(par: Parallelism) -> DeltaParams {
    DeltaParams {
        eps: f64::INFINITY,
        min_pts: MIN_PTS,
        extract: ExtractParams::with_min_size(MIN_CLUSTER),
        par,
    }
}

/// Everything comparable about one epoch, in raw bits.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    provenance: Vec<(u32, usize)>,
    reachability: Vec<u64>,
    virtual_reachability: Vec<u64>,
    plot: Vec<(u64, u64)>,
    tree: Vec<(usize, usize, u64, usize)>,
}

fn tree_bits(node: &ClusterNode) -> Vec<(usize, usize, u64, usize)> {
    fn walk(n: &ClusterNode, out: &mut Vec<(usize, usize, u64, usize)>) {
        out.push((
            n.range.0,
            n.range.1,
            n.split_value.map_or(u64::MAX, f64::to_bits),
            n.children.len(),
        ));
        for c in &n.children {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    walk(node, &mut out);
    out
}

fn engine_fingerprint(engine: &DeltaEngine) -> Fingerprint {
    let (refs, ordering) = engine.ordering().expect("epoch ran");
    let bits = |v: &[f64]| v.iter().map(|r| r.to_bits()).collect::<Vec<u64>>();
    Fingerprint {
        provenance: refs.iter().map(|r| (r.domain, r.index)).collect(),
        reachability: bits(&ordering.reachability),
        virtual_reachability: bits(&ordering.virtual_reachability),
        plot: engine
            .plot()
            .expect("epoch ran")
            .entries()
            .iter()
            .map(|e| (e.id, e.reachability.to_bits()))
            .collect(),
        tree: tree_bits(engine.tree().expect("epoch ran")),
    }
}

/// One unsharded dynamic run: per-epoch delta-vs-scratch assertion, and
/// the per-epoch fingerprints returned for cross-configuration equality.
fn run_config(seed_search: SeedSearch, par: Parallelism, epochs: usize) -> Vec<Fingerprint> {
    let spec = ScenarioSpec::named(ScenarioKind::Complex, DIM, 380, 0.12);
    let mut scenario = ScenarioEngine::new(spec);
    let mut srng = StdRng::seed_from_u64(SCENARIO_SEED);
    let mut store = scenario.populate(&mut srng);
    let mut mrng = StdRng::seed_from_u64(MAINT_SEED);
    let mut search = SearchStats::new();
    let mconfig = MaintainerConfig::new(12)
        .with_seed_search(seed_search)
        .with_parallelism(par);
    let mut bubbles = IncrementalBubbles::build(&store, mconfig, &mut mrng, &mut search);
    let mut engine = DeltaEngine::new(params(par));
    let mut out = Vec::with_capacity(epochs);
    for round in 0..epochs {
        if round > 0 {
            let batch = scenario.plan(&mut srng);
            let got = bubbles.apply_batch(&mut store, &batch, &mut search);
            scenario.confirm(&got);
            bubbles.maintain(&store, &mut mrng, &mut search);
        }
        engine.maintainer_epoch(&mut bubbles);
        let fp = engine_fingerprint(&engine);

        // Delta vs scratch, every epoch, every artifact, bit for bit.
        let scratch = optics_bubbles_with(bubbles.bubbles(), f64::INFINITY, MIN_PTS, par);
        let scratch_plot = scratch.expand(|i| {
            bubbles.bubbles()[i]
                .members()
                .iter()
                .map(|id| u64::from(id.0))
                .collect::<Vec<u64>>()
        });
        let scratch_tree = cluster_tree(&scratch_plot, &ExtractParams::with_min_size(MIN_CLUSTER));
        let label = format!("{seed_search:?}/{par:?} round {round}");
        assert_eq!(
            fp.provenance,
            scratch
                .order
                .iter()
                .map(|&i| (0u32, i))
                .collect::<Vec<(u32, usize)>>(),
            "{label}: provenance"
        );
        let bits = |v: &[f64]| v.iter().map(|r| r.to_bits()).collect::<Vec<u64>>();
        assert_eq!(
            fp.reachability,
            bits(&scratch.reachability),
            "{label}: reachability bits"
        );
        assert_eq!(
            fp.virtual_reachability,
            bits(&scratch.virtual_reachability),
            "{label}: virtual reachability bits"
        );
        assert_eq!(
            fp.plot,
            scratch_plot
                .entries()
                .iter()
                .map(|e| (e.id, e.reachability.to_bits()))
                .collect::<Vec<(u64, u64)>>(),
            "{label}: plot bits"
        );
        assert_eq!(fp.tree, tree_bits(&scratch_tree), "{label}: tree bits");
        out.push(fp);
    }
    out
}

/// The audit's core claim: after the canonical-kernel switch, every
/// engine × parallelism configuration walks the same dynamic flow and
/// produces bit-identical artifacts on every epoch — and each epoch
/// matches its own from-scratch recompute (asserted inside `run_config`).
#[test]
fn engines_and_parallelism_agree_bit_for_bit_at_high_dim() {
    const EPOCHS: usize = 5;
    let reference = run_config(SeedSearch::Brute, Parallelism::Serial, EPOCHS);
    assert_eq!(reference.len(), EPOCHS);
    let mut configs = 1;
    for seed_search in [SeedSearch::Brute, SeedSearch::Pruned, SeedSearch::KdTree] {
        for par in [Parallelism::Serial, Parallelism::Threads(3)] {
            if seed_search == SeedSearch::Brute && par == Parallelism::Serial {
                continue;
            }
            let got = run_config(seed_search, par, EPOCHS);
            assert_eq!(
                got, reference,
                "{seed_search:?}/{par:?} diverged from Brute/Serial"
            );
            configs += 1;
        }
    }
    assert_eq!(configs, 6, "all six configurations must run");
}

/// The sharded layer at 1 and 4 partitions: the delta pipeline of each
/// must equal its own merged cross-partition scratch pass bit for bit on
/// every epoch of the high-dimensional dynamic flow.
#[test]
fn sharded_delta_matches_scratch_at_high_dim() {
    for partitions in [1u32, 4] {
        let mconfig = MaintainerConfig::new(8).with_parallelism(Parallelism::Serial);
        let spec = ScenarioSpec::named(ScenarioKind::Complex, DIM, 480, 0.12);
        let mut scenario = ScenarioEngine::new(spec);
        let mut srng = StdRng::seed_from_u64(SCENARIO_SEED);
        let initial = scenario.populate_batch(&mut srng);
        let (mut router, ids) = ShardRouter::create(
            DIM,
            &initial,
            &mconfig,
            ShardConfig::new(partitions),
            DurabilityConfig::default(),
            MAINT_SEED,
            &Obs::disabled(),
            |_| (idb_store::MemSink::new(), MemCheckpoints::new()),
        )
        .expect("create");
        scenario.confirm(&ids);

        let mut engine = DeltaEngine::new(params(Parallelism::Serial));
        for round in 0..6 {
            if round > 0 {
                let batch = scenario.plan(&mut srng);
                let got = router.apply(&batch).expect("apply");
                scenario.confirm(&got);
            }
            router_epoch(&mut engine, &mut router).expect("online");
            let fp = engine_fingerprint(&engine);

            let (scratch_refs, scratch) = router
                .cluster(f64::INFINITY, MIN_PTS, Parallelism::Serial)
                .expect("cluster");
            let scratch_plot = scratch.expand(|i| {
                let r: MergedRef = scratch_refs[i];
                router.partition_bubbles(r.domain).unwrap()[r.index]
                    .members()
                    .iter()
                    .map(|&local: &PointId| {
                        GlobalId {
                            partition: r.domain,
                            local,
                        }
                        .as_u64()
                    })
                    .collect::<Vec<u64>>()
            });
            let scratch_tree =
                cluster_tree(&scratch_plot, &ExtractParams::with_min_size(MIN_CLUSTER));
            let label = format!("V={partitions} round {round}");
            assert_eq!(
                fp.provenance,
                scratch
                    .order
                    .iter()
                    .map(|&i| (scratch_refs[i].domain, scratch_refs[i].index))
                    .collect::<Vec<(u32, usize)>>(),
                "{label}: provenance"
            );
            let bits = |v: &[f64]| v.iter().map(|r| r.to_bits()).collect::<Vec<u64>>();
            assert_eq!(
                fp.reachability,
                bits(&scratch.reachability),
                "{label}: reachability bits"
            );
            assert_eq!(
                fp.plot,
                scratch_plot
                    .entries()
                    .iter()
                    .map(|e| (e.id, e.reachability.to_bits()))
                    .collect::<Vec<(u64, u64)>>(),
                "{label}: plot bits"
            );
            assert_eq!(fp.tree, tree_bits(&scratch_tree), "{label}: tree bits");
        }
    }
}
