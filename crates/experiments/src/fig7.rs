//! Figure 7 — the extent-based quality measure fails to adapt to new
//! clusters; the β measure does not.
//!
//! Setup (following the paper's figure): two clusters initially; during
//! the updates the middle cluster disappears while two new clusters appear
//! on the far right. Under the *extent* measure the emptied bubbles are
//! repositioned but the bubble that absorbs the new clusters goes
//! undetected; under *β* the absorber is flagged as over-filled and split
//! until the new clusters are covered by several bubbles.
//!
//! Reported per measure: how many bubbles end up positioned on the new
//! clusters, the final F-score, and the number of splits performed.

use crate::common::{f4, RunConfig};
use idb_core::{IncrementalBubbles, MaintainerConfig, QualityKind};
use idb_eval::{fscore, write_csv, Table};
use idb_geometry::{dist, SearchStats};
use idb_synth::scenario::{ScenarioCluster, ScenarioEngine, ScenarioSpec};
use idb_synth::{ClusterModel, Dynamics};
use incremental_data_bubbles::pipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIGMA: f64 = 2.5;
/// Centers of the two appearing clusters on the far right.
const NEW_CENTERS: [[f64; 2]; 2] = [[88.0, 38.0], [88.0, 62.0]];

fn fig7_spec(cfg: &RunConfig) -> ScenarioSpec {
    ScenarioSpec {
        dim: 2,
        initial_size: cfg.size,
        noise_fraction: 0.05,
        update_fraction: cfg.update_fraction,
        bounds: (0.0, 100.0),
        clusters: vec![
            ScenarioCluster {
                model: ClusterModel::new(vec![15.0, 50.0], SIGMA),
                dynamics: Dynamics::Static,
            },
            ScenarioCluster {
                model: ClusterModel::new(vec![50.0, 50.0], SIGMA),
                dynamics: Dynamics::Disappear { at_batch: 0 },
            },
            ScenarioCluster {
                model: ClusterModel::new(NEW_CENTERS[0].to_vec(), SIGMA),
                dynamics: Dynamics::Appear {
                    at_batch: 0,
                    target: cfg.size / 5,
                },
            },
            ScenarioCluster {
                model: ClusterModel::new(NEW_CENTERS[1].to_vec(), SIGMA),
                dynamics: Dynamics::Appear {
                    at_batch: 0,
                    target: cfg.size / 5,
                },
            },
        ],
        appear_share: 0.8,
    }
}

struct MeasureOutcome {
    bubbles_on_new: usize,
    f_score: f64,
    splits: usize,
}

fn run_measure(cfg: &RunConfig, quality: QualityKind, seed: u64) -> MeasureOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut engine = ScenarioEngine::new(fig7_spec(cfg));
    let mut store = engine.populate(&mut rng);
    let mut search = SearchStats::new();
    let mut bubbles = IncrementalBubbles::build(
        &store,
        MaintainerConfig::new(cfg.num_bubbles).with_quality(quality),
        &mut rng,
        &mut search,
    );

    let mut splits = 0usize;
    // Enough batches for the middle cluster to vanish and the new clusters
    // to reach their target sizes.
    let batches = cfg.batches.max(16);
    for _ in 0..batches {
        let batch = engine.plan(&mut rng);
        let new_ids = bubbles.apply_batch(&mut store, &batch, &mut search);
        let report = bubbles.maintain(&store, &mut rng, &mut search);
        splits += report.splits;
        engine.confirm(&new_ids);
    }

    let bubbles_on_new = bubbles
        .bubbles()
        .iter()
        .filter(|b| {
            if b.is_empty() {
                return false;
            }
            let rep = b.rep_or_seed();
            NEW_CENTERS.iter().any(|c| dist(&rep, c) < 4.0 * SIGMA)
        })
        .count();

    let outcome = pipeline::cluster_bubbles(&bubbles, cfg.min_pts, cfg.min_cluster_size());
    let f_score = fscore(&store, &outcome.clusters).overall;
    MeasureOutcome {
        bubbles_on_new,
        f_score,
        splits,
    }
}

/// Runs the Figure 7 comparison.
pub fn run(cfg: &RunConfig) {
    println!(
        "Figure 7: quality-measure comparison (β vs extent) — middle cluster \
         disappears, two new clusters appear far right"
    );
    let mut table = Table::new([
        "measure",
        "rep",
        "bubbles on new clusters",
        "splits",
        "F-score",
    ]);
    for (quality, name) in [(QualityKind::Beta, "beta"), (QualityKind::Extent, "extent")] {
        for rep in 0..cfg.reps {
            let out = run_measure(cfg, quality, cfg.seed + rep as u64);
            table.push_row([
                name.to_string(),
                rep.to_string(),
                out.bubbles_on_new.to_string(),
                out.splits.to_string(),
                f4(out.f_score),
            ]);
        }
        eprintln!("  finished measure {name}");
    }
    println!("{}", table.render());
    let path = cfg.out_dir.join("fig7.csv");
    write_csv(&table, &path).expect("write fig7.csv");
    println!("(csv written to {})", path.display());
    println!(
        "expected shape: the β measure positions several bubbles on the new \
         clusters (splits > 0); the extent measure leaves them compressed by \
         one or two bubbles and scores a lower F"
    );
}
