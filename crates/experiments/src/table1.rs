//! Table 1 — F-score and compactness of the incremental scheme vs.
//! complete rebuilds, over the paper's eleven dataset/dimension
//! combinations, as mean ± standard deviation over repetitions.

use crate::common::{f4, run_rep, RunConfig};
use idb_eval::{write_csv, Aggregate, Table};
use idb_synth::ScenarioKind;

/// The dataset list of Table 1, in the paper's row order.
pub fn datasets() -> Vec<(ScenarioKind, usize)> {
    vec![
        (ScenarioKind::Random, 2),
        (ScenarioKind::Appear, 2),
        (ScenarioKind::Disappear, 2),
        (ScenarioKind::ExtremeAppear, 2),
        (ScenarioKind::GradMove, 2),
        (ScenarioKind::Random, 10),
        (ScenarioKind::ExtremeAppear, 10),
        (ScenarioKind::Complex, 2),
        (ScenarioKind::Complex, 5),
        (ScenarioKind::Complex, 10),
        (ScenarioKind::Complex, 20),
    ]
}

/// Runs the full table.
pub fn run(cfg: &RunConfig) {
    println!(
        "Table 1: F-score and compactness, complete rebuild vs incremental \
         ({} reps, {} points, {} bubbles, {} batches of {:.0} % updates)",
        cfg.reps,
        cfg.size,
        cfg.num_bubbles,
        cfg.batches,
        cfg.update_fraction * 100.0
    );
    let mut table = Table::new([
        "dataset",
        "scheme",
        "F mean",
        "F std",
        "ARI mean",
        "compact mean",
        "compact std",
    ]);

    for (kind, dim) in datasets() {
        let name = format!("{}{}d", kind.name(), dim);
        let mut f_inc = Aggregate::new();
        let mut f_com = Aggregate::new();
        let mut ari_inc = Aggregate::new();
        let mut ari_com = Aggregate::new();
        let mut c_inc = Aggregate::new();
        let mut c_com = Aggregate::new();
        for rep in 0..cfg.reps {
            let out = run_rep(kind, dim, cfg, rep);
            f_inc.push(out.f_incremental);
            f_com.push(out.f_complete);
            ari_inc.push(out.ari_incremental);
            ari_com.push(out.ari_complete);
            c_inc.push(out.compact_incremental);
            c_com.push(out.compact_complete);
        }
        table.push_row([
            name.clone(),
            "complete".into(),
            f4(f_com.mean()),
            f4(f_com.std_dev()),
            f4(ari_com.mean()),
            f4(c_com.mean()),
            f4(c_com.std_dev()),
        ]);
        table.push_row([
            name.clone(),
            "inc".into(),
            f4(f_inc.mean()),
            f4(f_inc.std_dev()),
            f4(ari_inc.mean()),
            f4(c_inc.mean()),
            f4(c_inc.std_dev()),
        ]);
        eprintln!("  finished {name}");
    }

    println!("{}", table.render());
    let path = cfg.out_dir.join("table1.csv");
    write_csv(&table, &path).expect("write table1.csv");
    println!("(csv written to {})", path.display());
}
