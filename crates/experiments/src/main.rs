//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section (see DESIGN.md for the experiment index).
//!
//! ```text
//! experiments <table1|fig7|fig8|fig9|fig10|fig11|all> [options]
//!
//! options:
//!   --paper           paper-scale configuration (60k points, 10 reps)
//!   --reps N          repetitions per configuration
//!   --size N          initial database size
//!   --bubbles N       number of data bubbles
//!   --batches N       update batches per run
//!   --update F        update fraction per batch (e.g. 0.05)
//!   --seed N          base RNG seed
//!   --out DIR         CSV output directory (default: results)
//! ```

mod ablation;
mod common;
mod extra;
mod fig7;
mod fig8;
mod sweeps;
mod table1;

use common::RunConfig;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table1|fig7|fig8|fig9|fig10|fig11|sweeps|scaling|adaptive|ablation|all> \
         [--paper] [--reps N] [--size N] [--bubbles N] [--batches N] \
         [--update F] [--seed N] [--out DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].clone();

    let mut cfg = if args.iter().any(|a| a == "--paper") {
        RunConfig::paper()
    } else {
        RunConfig::quick()
    };

    let mut i = 1;
    while i < args.len() {
        let take_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--paper" => {}
            "--reps" => cfg.reps = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--size" => cfg.size = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--bubbles" => {
                cfg.num_bubbles = take_value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--batches" => cfg.batches = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--update" => {
                cfg.update_fraction = take_value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--seed" => cfg.seed = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => cfg.out_dir = take_value(&mut i).into(),
            other => {
                eprintln!("unknown option: {other}");
                usage();
            }
        }
        i += 1;
    }

    match command.as_str() {
        "table1" => table1::run(&cfg),
        "fig7" => fig7::run(&cfg),
        "fig8" => fig8::run(&cfg),
        "fig9" => sweeps::run(&cfg, &[9]),
        "fig10" => sweeps::run(&cfg, &[10]),
        "fig11" => sweeps::run(&cfg, &[11]),
        "sweeps" => sweeps::run(&cfg, &[9, 10, 11]),
        "scaling" => extra::run_scaling(&cfg),
        "adaptive" => extra::run_adaptive(&cfg),
        "ablation" => ablation::run(&cfg),
        "all" => {
            table1::run(&cfg);
            println!();
            fig7::run(&cfg);
            println!();
            fig8::run(&cfg);
            println!();
            sweeps::run(&cfg, &[9, 10, 11]);
            println!();
            extra::run_scaling(&cfg);
            println!();
            extra::run_adaptive(&cfg);
            println!();
            ablation::run(&cfg);
        }
        _ => usage(),
    }
}
