//! Figures 9, 10 and 11 — the update-size sweeps on the complex database.
//!
//! All three figures vary the batch size (percentage of the database
//! deleted and inserted per batch) on the complex scenario and plot one
//! bookkeeping metric:
//!
//! * **Figure 9** — average percentage of bubbles rebuilt per maintenance
//!   round (small; grows with update size).
//! * **Figure 10** — percentage of point-to-seed distance computations
//!   the pruned engine saves — triangle-inequality pruned or early-exited
//!   (60–80 %, slowly decreasing).
//! * **Figure 11** — the distance saving factor of incremental+TI over a
//!   complete rebuild without TI (≈200× at 2 % updates down to ≈40× at
//!   10 %).

use crate::common::{f1, run_rep_with, RunConfig};
use idb_eval::{write_csv, Aggregate, Table};
use idb_synth::ScenarioKind;

/// The update sizes the paper sweeps (fractions of the database).
pub const UPDATE_FRACTIONS: [f64; 5] = [0.02, 0.04, 0.06, 0.08, 0.10];

struct SweepPoint {
    update_pct: f64,
    rebuilt_pct: Aggregate,
    pruned_pct: Aggregate,
    saving: Aggregate,
}

fn sweep(cfg: &RunConfig) -> Vec<SweepPoint> {
    UPDATE_FRACTIONS
        .iter()
        .map(|&f| {
            let mut point = SweepPoint {
                update_pct: f * 100.0,
                rebuilt_pct: Aggregate::new(),
                pruned_pct: Aggregate::new(),
                saving: Aggregate::new(),
            };
            let cfg_f = RunConfig {
                update_fraction: f,
                ..cfg.clone()
            };
            for rep in 0..cfg.reps {
                let out = run_rep_with(ScenarioKind::Complex, 2, &cfg_f, rep, false);
                point.rebuilt_pct.push(out.rebuilt_fraction * 100.0);
                point.pruned_pct.push(out.pruned_fraction * 100.0);
                point.saving.push(out.saving_factor);
            }
            eprintln!("  finished update size {:.0} %", f * 100.0);
            point
        })
        .collect()
}

/// Runs all three sweeps in one pass (they share the runs) and emits each
/// figure's series. `which` selects the figures to print: any subset of
/// {9, 10, 11}.
pub fn run(cfg: &RunConfig, which: &[u8]) {
    println!(
        "Figures {:?}: update-size sweeps on the complex database ({} reps, \
         {} points, {} bubbles, {} batches each)",
        which, cfg.reps, cfg.size, cfg.num_bubbles, cfg.batches
    );
    let points = sweep(cfg);

    if which.contains(&9) {
        let mut t = Table::new(["update %", "rebuilt bubbles % (mean)", "std"]);
        for p in &points {
            t.push_row([
                f1(p.update_pct),
                format!("{:.2}", p.rebuilt_pct.mean()),
                format!("{:.2}", p.rebuilt_pct.std_dev()),
            ]);
        }
        println!("\nFigure 9: average % of rebuilt data bubbles vs % of points updated");
        println!("{}", t.render());
        write_csv(&t, &cfg.out_dir.join("fig9.csv")).expect("write fig9.csv");
        println!("expected shape: a small percentage, increasing with update size");
    }

    if which.contains(&10) {
        let mut t = Table::new(["update %", "saved distance computations % (mean)", "std"]);
        for p in &points {
            t.push_row([
                f1(p.update_pct),
                f1(p.pruned_pct.mean()),
                format!("{:.2}", p.pruned_pct.std_dev()),
            ]);
        }
        println!("\nFigure 10: % of full distance computations saved (pruned or early-exited)");
        println!("{}", t.render());
        write_csv(&t, &cfg.out_dir.join("fig10.csv")).expect("write fig10.csv");
        println!("expected shape: in or above the paper's 60–80 % band");
    }

    if which.contains(&11) {
        let mut t = Table::new(["update %", "distance saving factor (mean)", "std"]);
        for p in &points {
            t.push_row([
                f1(p.update_pct),
                f1(p.saving.mean()),
                f1(p.saving.std_dev()),
            ]);
        }
        println!(
            "\nFigure 11: distance saving factor — complete rebuild w/o triangle \
             inequality vs incremental with it"
        );
        println!("{}", t.render());
        write_csv(&t, &cfg.out_dir.join("fig11.csv")).expect("write fig11.csv");
        println!("expected shape: ≈200x at 2 % updates falling to ≈40x at 10 %");
    }
}
