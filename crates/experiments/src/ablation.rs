//! Ablations of the scheme's design choices.
//!
//! * **Chebyshev probability** — the paper sets p = 0.9 and reports that
//!   p = 0.8 "did not change the quality of the resulting clustering
//!   structure". We sweep p over {0.75, 0.8, 0.9, 0.95} on the complex
//!   scenario and report F-score and structural-repair activity.
//! * **Split seed policy** — the paper draws both split seeds uniformly
//!   from the over-filled bubble's members; the `Spread` policy (second
//!   seed = farthest member) is a plausible alternative. Same sweep.

use crate::common::{f4, RunConfig};
use idb_core::{IncrementalBubbles, MaintainerConfig, SplitSeedPolicy};
use idb_eval::{fscore, write_csv, Aggregate, Table};
use idb_geometry::SearchStats;
use idb_synth::{ScenarioEngine, ScenarioKind, ScenarioSpec};
use incremental_data_bubbles::pipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct AblationOutcome {
    f_score: f64,
    splits_per_batch: f64,
}

fn run_one(cfg: &RunConfig, config: MaintainerConfig, rep: usize) -> AblationOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(rep as u64 * 104_729));
    let spec = ScenarioSpec::named(ScenarioKind::Complex, 2, cfg.size, cfg.update_fraction);
    let mut engine = ScenarioEngine::new(spec);
    let mut store = engine.populate(&mut rng);
    let mut search = SearchStats::new();
    let mut bubbles = IncrementalBubbles::build(&store, config, &mut rng, &mut search);
    let mut splits = 0usize;
    for _ in 0..cfg.batches {
        let batch = engine.plan(&mut rng);
        let ids = bubbles.apply_batch(&mut store, &batch, &mut search);
        splits += bubbles.maintain(&store, &mut rng, &mut search).splits;
        engine.confirm(&ids);
    }
    let outcome = pipeline::cluster_bubbles(&bubbles, cfg.min_pts, cfg.min_cluster_size());
    AblationOutcome {
        f_score: fscore(&store, &outcome.clusters).overall,
        splits_per_batch: splits as f64 / cfg.batches as f64,
    }
}

/// Runs both ablations.
pub fn run(cfg: &RunConfig) {
    println!(
        "Ablations on the complex scenario ({} reps, {} points, {} bubbles)",
        cfg.reps, cfg.size, cfg.num_bubbles
    );

    let mut table = Table::new(["variant", "F mean", "F std", "splits/batch"]);

    for p in [0.75, 0.8, 0.9, 0.95] {
        let mut f = Aggregate::new();
        let mut s = Aggregate::new();
        for rep in 0..cfg.reps {
            let out = run_one(
                cfg,
                MaintainerConfig::new(cfg.num_bubbles).with_probability(p),
                rep,
            );
            f.push(out.f_score);
            s.push(out.splits_per_batch);
        }
        table.push_row([
            format!("chebyshev p={p}"),
            f4(f.mean()),
            f4(f.std_dev()),
            format!("{:.2}", s.mean()),
        ]);
        eprintln!("  finished p = {p}");
    }

    for (policy, name) in [
        (SplitSeedPolicy::Random, "split seeds: random (paper)"),
        (SplitSeedPolicy::Spread, "split seeds: spread"),
    ] {
        let mut f = Aggregate::new();
        let mut s = Aggregate::new();
        for rep in 0..cfg.reps {
            let out = run_one(
                cfg,
                MaintainerConfig::new(cfg.num_bubbles).with_split_seeds(policy),
                rep,
            );
            f.push(out.f_score);
            s.push(out.splits_per_batch);
        }
        table.push_row([
            name.to_string(),
            f4(f.mean()),
            f4(f.std_dev()),
            format!("{:.2}", s.mean()),
        ]);
        eprintln!("  finished {name}");
    }

    println!("{}", table.render());
    let path = cfg.out_dir.join("ablation.csv");
    write_csv(&table, &path).expect("write ablation.csv");
    println!("(csv written to {})", path.display());
    println!(
        "expected shape: F is flat across p (the paper's claim for 0.8 vs \
         0.9); lower p flags more bubbles, so splits/batch grows as p \
         falls; the spread policy behaves like random here"
    );
}
