//! Figure 8 — the *complex* database: clusters appear, disappear and move
//! while random churn continues.
//!
//! The paper's figure shows snapshots of the evolving 2-d database. This
//! experiment reports the per-batch population of every cluster (the
//! quantitative content of those snapshots) and, for the 2-d case, dumps
//! point coordinates at the start, middle and end of the run so the
//! snapshots can be re-plotted.

use crate::common::RunConfig;
use idb_eval::{write_csv, Table};
use idb_store::PointStore;
use idb_synth::{Dynamics, ScenarioEngine, ScenarioKind, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dump_points(store: &PointStore, cfg: &RunConfig, tag: &str) {
    let mut t = Table::new(["id", "x", "y", "label"]);
    for (id, p, label) in store.iter() {
        t.push_row([
            id.0.to_string(),
            format!("{:.3}", p[0]),
            format!("{:.3}", p[1]),
            label.map_or("noise".to_string(), |l| l.to_string()),
        ]);
    }
    let path = cfg.out_dir.join(format!("fig8_points_{tag}.csv"));
    write_csv(&t, &path).expect("write fig8 points csv");
    println!("(point snapshot written to {})", path.display());
}

/// Runs the Figure 8 scenario trace.
pub fn run(cfg: &RunConfig) {
    println!("Figure 8: the complex scenario — per-batch cluster populations");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let spec = ScenarioSpec::named(ScenarioKind::Complex, 2, cfg.size, cfg.update_fraction);
    let names: Vec<String> = spec
        .clusters
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let tag = match c.dynamics {
                Dynamics::Static => "static",
                Dynamics::Appear { .. } => "appear",
                Dynamics::Disappear { .. } => "disappear",
                Dynamics::Move { .. } => "move",
                Dynamics::Densify { .. } => "densify",
            };
            format!("c{i}({tag})")
        })
        .collect();
    let mut engine = ScenarioEngine::new(spec);
    let mut store = engine.populate(&mut rng);
    dump_points(&store, cfg, "start");

    let mut header = vec!["batch".to_string()];
    header.extend(names.iter().cloned());
    header.push("noise+total".into());
    let mut table = Table::new(header);

    let batches = cfg.batches.max(16);
    for b in 0..=batches {
        let mut row = vec![b.to_string()];
        let clustered: usize = (0..names.len()).map(|c| engine.cluster_size(c)).sum();
        for c in 0..names.len() {
            row.push(engine.cluster_size(c).to_string());
        }
        row.push(format!("{}+{}", store.len() - clustered, store.len()));
        table.push_row(row);
        if b == batches {
            break;
        }
        engine.step_plain(&mut store, &mut rng);
        if b + 1 == batches / 2 {
            dump_points(&store, cfg, "mid");
        }
    }
    dump_points(&store, cfg, "end");

    println!("{}", table.render());
    let path = cfg.out_dir.join("fig8_populations.csv");
    write_csv(&table, &path).expect("write fig8 csv");
    println!("(csv written to {})", path.display());
    println!(
        "expected shape: the disappear column drains to 0, the appear column \
         grows to its target, the move column stays constant while its mean \
         drifts, statics only jitter"
    );
}
