//! Shared configuration and the core incremental-vs-complete comparison
//! loop used by every experiment.

use idb_core::{IncrementalBubbles, MaintainerConfig, SeedSearch};
use idb_eval::{adjusted_rand_index, compactness_per_point, fscore, Aggregate};
use idb_geometry::SearchStats;
use idb_synth::{ScenarioEngine, ScenarioKind, ScenarioSpec};
use incremental_data_bubbles::pipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Repetitions per configuration (the paper uses 10).
    pub reps: usize,
    /// Initial database size (the paper uses 50k–110k).
    pub size: usize,
    /// Number of data bubbles.
    pub num_bubbles: usize,
    /// Update batches per run.
    pub batches: usize,
    /// Fraction of the database deleted and inserted per batch.
    pub update_fraction: f64,
    /// OPTICS MinPts.
    pub min_pts: usize,
    /// Base RNG seed; repetition `r` uses `seed + r`.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out_dir: std::path::PathBuf,
}

impl RunConfig {
    /// Fast defaults for a laptop sanity run (minutes).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            reps: 3,
            size: 20_000,
            num_bubbles: 200,
            batches: 10,
            update_fraction: 0.05,
            min_pts: 10,
            seed: 20_040_613,
            out_dir: "results".into(),
        }
    }

    /// Paper-scale defaults (50k+ points, 10 repetitions).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            reps: 10,
            size: 60_000,
            num_bubbles: 300,
            ..Self::quick()
        }
    }

    /// Minimum extracted-cluster size: 0.5 % of the database, at least
    /// MinPts (the extraction default the evaluation uses).
    #[must_use]
    pub fn min_cluster_size(&self) -> usize {
        (self.size / 200).max(self.min_pts)
    }
}

/// Per-repetition outcome of the two schemes on one dynamic run.
#[derive(Debug, Clone, Default)]
pub struct RepOutcome {
    /// Mean-over-batches F-score of the incremental scheme.
    pub f_incremental: f64,
    /// Mean-over-batches F-score of complete rebuilds.
    pub f_complete: f64,
    /// Mean-over-batches Adjusted Rand Index of the incremental scheme.
    pub ari_incremental: f64,
    /// Mean-over-batches Adjusted Rand Index of complete rebuilds.
    pub ari_complete: f64,
    /// Mean-over-batches compactness (per point) of the incremental scheme.
    pub compact_incremental: f64,
    /// Mean-over-batches compactness of complete rebuilds.
    pub compact_complete: f64,
    /// Mean-over-batches fraction of bubbles rebuilt per maintenance round.
    pub rebuilt_fraction: f64,
    /// Mean-over-batches fraction of the incremental scheme's per-batch
    /// point-to-seed comparisons that never needed a full distance
    /// computation (triangle-inequality pruned or early-exited) — the
    /// Figure 10 quantity.
    pub pruned_fraction: f64,
    /// Mean-over-batches distance saving factor (complete rebuild without
    /// triangle inequality vs. incremental with it).
    pub saving_factor: f64,
}

/// Runs one repetition of `kind` in `dim` dimensions, evaluating both
/// schemes after every batch.
pub fn run_rep(kind: ScenarioKind, dim: usize, cfg: &RunConfig, rep: usize) -> RepOutcome {
    run_rep_with(kind, dim, cfg, rep, true)
}

/// [`run_rep`] with quality evaluation optional: the distance-accounting
/// figures (9, 10, 11) only need the bookkeeping metrics, and skipping the
/// per-batch complete rebuild + OPTICS + F-score makes their parameter
/// sweeps much cheaper.
pub fn run_rep_with(
    kind: ScenarioKind,
    dim: usize,
    cfg: &RunConfig,
    rep: usize,
    evaluate_quality: bool,
) -> RepOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(rep as u64 * 7919));
    let spec = ScenarioSpec::named(kind, dim, cfg.size, cfg.update_fraction);
    let mut engine = ScenarioEngine::new(spec);
    let mut store = engine.populate(&mut rng);

    let mut build_stats = SearchStats::new();
    let mut incremental = IncrementalBubbles::build(
        &store,
        MaintainerConfig::new(cfg.num_bubbles),
        &mut rng,
        &mut build_stats,
    );

    let mcs = cfg.min_cluster_size();
    let mut f_inc = Aggregate::new();
    let mut f_com = Aggregate::new();
    let mut ari_inc = Aggregate::new();
    let mut ari_com = Aggregate::new();
    let mut c_inc = Aggregate::new();
    let mut c_com = Aggregate::new();
    let mut rebuilt = Aggregate::new();
    let mut pruned = Aggregate::new();
    let mut saving = Aggregate::new();

    for _ in 0..cfg.batches {
        let batch = engine.plan(&mut rng);
        let mut batch_stats = SearchStats::new();
        let new_ids = incremental.apply_batch(&mut store, &batch, &mut batch_stats);
        let report = incremental.maintain(&store, &mut rng, &mut batch_stats);
        engine.confirm(&new_ids);

        rebuilt.push(report.rebuilt_bubbles as f64 / cfg.num_bubbles as f64);
        pruned.push(batch_stats.avoided_fraction());
        saving.push(idb_eval::distance_saving_factor(
            store.len() as u64,
            cfg.num_bubbles as u64,
            batch_stats,
        ));

        if evaluate_quality {
            // Incremental clustering quality.
            let outcome = pipeline::cluster_bubbles(&incremental, cfg.min_pts, mcs);
            f_inc.push(fscore(&store, &outcome.clusters).overall);
            ari_inc.push(adjusted_rand_index(&store, &outcome.clusters));
            c_inc.push(compactness_per_point(&incremental, &store));

            // Complete rebuild baseline on the identical store contents.
            let mut rebuild_stats = SearchStats::new();
            let complete = IncrementalBubbles::build(
                &store,
                MaintainerConfig::new(cfg.num_bubbles).with_seed_search(SeedSearch::Brute),
                &mut rng,
                &mut rebuild_stats,
            );
            let outcome = pipeline::cluster_bubbles(&complete, cfg.min_pts, mcs);
            f_com.push(fscore(&store, &outcome.clusters).overall);
            ari_com.push(adjusted_rand_index(&store, &outcome.clusters));
            c_com.push(compactness_per_point(&complete, &store));
        }
    }

    RepOutcome {
        f_incremental: f_inc.mean(),
        f_complete: f_com.mean(),
        ari_incremental: ari_inc.mean(),
        ari_complete: ari_com.mean(),
        compact_incremental: c_inc.mean(),
        compact_complete: c_com.mean(),
        rebuilt_fraction: rebuilt.mean(),
        pruned_fraction: pruned.mean(),
        saving_factor: saving.mean(),
    }
}

/// Formats a float with four decimals (the paper's table precision).
#[must_use]
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with one decimal.
#[must_use]
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}
