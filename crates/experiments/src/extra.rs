//! Experiments beyond the paper's figures: scalability of the
//! summarization (the paper claims the scheme "is scalable and well
//! suited for high dimensional data") and the adaptive-bubble-count
//! extension (its Section 6 future work).

use crate::common::{f1, f4, RunConfig};
use idb_core::{AdaptivePolicy, IncrementalBubbles, MaintainerConfig};
use idb_eval::{fscore, write_csv, Table};
use idb_geometry::SearchStats;
use idb_store::Batch;
use idb_synth::{ScenarioEngine, ScenarioKind, ScenarioSpec};
use incremental_data_bubbles::pipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Scalability: construction and per-batch maintenance cost across
/// dimensionalities and database sizes (wall-clock and pruning fraction).
pub fn run_scaling(cfg: &RunConfig) {
    println!("Scalability: build and per-batch cost vs dimension and size");
    let mut table = Table::new([
        "dim",
        "points",
        "build ms",
        "build ms (4 threads)",
        "batch ms",
        "saved %",
    ]);
    for &dim in &[2usize, 5, 10, 20] {
        for &size in &[cfg.size / 2, cfg.size] {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let spec = ScenarioSpec::named(ScenarioKind::Complex, dim, size, cfg.update_fraction);
            let mut engine = ScenarioEngine::new(spec);
            let mut store = engine.populate(&mut rng);

            let mut search = SearchStats::new();
            let t0 = Instant::now();
            let mut bubbles = IncrementalBubbles::build(
                &store,
                MaintainerConfig::new(cfg.num_bubbles),
                &mut rng,
                &mut search,
            );
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;

            let mut rng_par = StdRng::seed_from_u64(cfg.seed);
            let mut par_search = SearchStats::new();
            let t1 = Instant::now();
            let _ = IncrementalBubbles::build_parallel(
                &store,
                MaintainerConfig::new(cfg.num_bubbles),
                &mut rng_par,
                4,
                &mut par_search,
            );
            let build_par_ms = t1.elapsed().as_secs_f64() * 1e3;

            let mut batch_search = SearchStats::new();
            let t2 = Instant::now();
            let batches = 3;
            for _ in 0..batches {
                let batch = engine.plan(&mut rng);
                let ids = bubbles.apply_batch(&mut store, &batch, &mut batch_search);
                bubbles.maintain(&store, &mut rng, &mut batch_search);
                engine.confirm(&ids);
            }
            let batch_ms = t2.elapsed().as_secs_f64() * 1e3 / batches as f64;

            table.push_row([
                dim.to_string(),
                size.to_string(),
                f1(build_ms),
                f1(build_par_ms),
                f1(batch_ms),
                f1(batch_search.avoided_fraction() * 100.0),
            ]);
            eprintln!("  finished dim {dim}, size {size}");
        }
    }
    println!("{}", table.render());
    let path = cfg.out_dir.join("scaling.csv");
    write_csv(&table, &path).expect("write scaling.csv");
    println!("(csv written to {})", path.display());
    println!(
        "expected shape: costs grow roughly linearly in size and dimension; \
         pruning stays substantial in high dimensions"
    );
}

/// Adaptive bubble budget: the database doubles through insert-only
/// batches; the fixed-count scheme dilutes (average points per bubble
/// doubles) while the adaptive scheme grows its population and holds the
/// compression rate.
pub fn run_adaptive(cfg: &RunConfig) {
    println!("Adaptive bubble budget under database growth (Section 6 future work)");
    let mut table = Table::new([
        "scheme",
        "batch",
        "points",
        "bubbles",
        "avg pts/bubble",
        "F-score",
    ]);

    for adaptive in [false, true] {
        let scheme = if adaptive { "adaptive" } else { "fixed" };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let spec = ScenarioSpec::named(ScenarioKind::Random, 2, cfg.size, cfg.update_fraction);
        let mut engine = ScenarioEngine::new(spec.clone());
        let mut store = engine.populate(&mut rng);
        let mut search = SearchStats::new();
        let mut bubbles = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(cfg.num_bubbles),
            &mut rng,
            &mut search,
        );
        let target_avg = cfg.size as f64 / cfg.num_bubbles as f64;
        // A ±25 % band: tight enough that doubling the database forces
        // visible growth within a few batches.
        let policy = AdaptivePolicy {
            min_avg_points: target_avg * 0.75,
            max_avg_points: target_avg * 1.25,
            max_adjustments: 64,
        };

        // Insert-only growth: +12.5 % of the initial size per batch, drawn
        // from the standing mixture, until the database has doubled.
        let model = idb_synth::MixtureModel::new(
            2,
            spec.clusters.iter().map(|c| c.model.clone()).collect(),
            spec.noise_fraction,
            spec.bounds,
        );
        for batch_no in 0..8usize {
            let inserts: Vec<_> = (0..cfg.size / 8).map(|_| model.sample(&mut rng)).collect();
            let batch = Batch {
                deletes: Vec::new(),
                inserts,
            };
            bubbles.apply_batch(&mut store, &batch, &mut search);
            if adaptive {
                bubbles.maintain_adaptive(&store, &mut rng, &mut search, &policy);
            } else {
                bubbles.maintain(&store, &mut rng, &mut search);
            }
            if batch_no % 2 == 1 {
                let outcome =
                    pipeline::cluster_bubbles(&bubbles, cfg.min_pts, cfg.min_cluster_size());
                let f = fscore(&store, &outcome.clusters).overall;
                table.push_row([
                    scheme.to_string(),
                    batch_no.to_string(),
                    store.len().to_string(),
                    bubbles.num_bubbles().to_string(),
                    f1(store.len() as f64 / bubbles.num_bubbles() as f64),
                    f4(f),
                ]);
            }
        }
        eprintln!("  finished scheme {scheme}");
    }
    println!("{}", table.render());
    let path = cfg.out_dir.join("adaptive.csv");
    write_csv(&table, &path).expect("write adaptive.csv");
    println!(
        "expected shape: the fixed scheme's avg pts/bubble doubles with the \
         database; the adaptive scheme grows its population and keeps the \
         average inside the policy band"
    );
}
