//! Contiguous dimension-strided point storage (`SeedBlock`).
//!
//! The hot loops of this workspace — the matrix-ordered candidate scan of
//! the pruned engine, the k-d tree build, the OPTICS bubble-distance pass —
//! all iterate point coordinates. Storing each point in its own `Vec<f64>`
//! would make those loops pointer-chase through the allocator's layout;
//! [`SeedBlock`] instead keeps all points in one flat `Vec<f64>` with row
//! stride `dim` (a structure-of-arrays façade: point `i` is the slice
//! `flat[i*dim .. (i+1)*dim]`), so a scan over candidates walks linear
//! memory and the 4-lane kernels of [`crate::metric`] stream it.
//!
//! The block is deliberately dumb storage: no distances, no ordering. It is
//! owned by [`NearestSeeds`](crate::NearestSeeds) for seed coordinates and
//! built transiently by the clustering crate for bubble representatives.

/// Flat, dimension-strided storage for a dynamic set of equal-length points.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedBlock {
    dim: usize,
    flat: Vec<f64>,
}

impl SeedBlock {
    /// Creates an empty block for points of dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "SeedBlock requires dim > 0");
        Self {
            dim,
            flat: Vec::new(),
        }
    }

    /// Creates an empty block with room for `n` points.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "SeedBlock requires dim > 0");
        Self {
            dim,
            flat: Vec::with_capacity(dim * n),
        }
    }

    /// Dimensionality of the stored points.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flat.len() / self.dim
    }

    /// `true` when the block holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Coordinates of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> &[f64] {
        &self.flat[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole block as one flat slice (`len() * dim()` values, row
    /// stride `dim`). This is what the k-d tree's dense build path and the
    /// batch drivers consume.
    #[inline]
    #[must_use]
    pub fn as_flat(&self) -> &[f64] {
        &self.flat
    }

    /// Appends a point, returning its index.
    ///
    /// # Panics
    /// Panics if `p.len() != dim`.
    pub fn push(&mut self, p: &[f64]) -> usize {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        self.flat.extend_from_slice(p);
        self.len() - 1
    }

    /// Overwrites point `i` in place.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds or `p.len() != dim`.
    pub fn set(&mut self, i: usize, p: &[f64]) {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        self.flat[i * self.dim..(i + 1) * self.dim].copy_from_slice(p);
    }

    /// Removes point `i` by moving the last point into its slot
    /// (swap-remove semantics).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn swap_remove(&mut self, i: usize) {
        let n = self.len();
        assert!(i < n, "SeedBlock index out of bounds");
        let last = n - 1;
        if i != last {
            let (head, tail) = self.flat.split_at_mut(last * self.dim);
            head[i * self.dim..(i + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
        }
        self.flat.truncate(last * self.dim);
    }

    /// Drops all points, keeping the allocation (scratch reuse).
    pub fn clear(&mut self) {
        self.flat.clear();
    }

    /// Iterator over the stored points in index order.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.flat.chunks_exact(self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_roundtrip() {
        let mut b = SeedBlock::new(3);
        assert!(b.is_empty());
        assert_eq!(b.push(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(b.push(&[4.0, 5.0, 6.0]), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(0), &[1.0, 2.0, 3.0]);
        assert_eq!(b.get(1), &[4.0, 5.0, 6.0]);
        b.set(0, &[7.0, 8.0, 9.0]);
        assert_eq!(b.get(0), &[7.0, 8.0, 9.0]);
        assert_eq!(b.as_flat(), &[7.0, 8.0, 9.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn swap_remove_moves_last_into_slot() {
        let mut b = SeedBlock::new(2);
        b.push(&[0.0, 0.0]);
        b.push(&[1.0, 1.0]);
        b.push(&[2.0, 2.0]);
        b.swap_remove(0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(0), &[2.0, 2.0]);
        assert_eq!(b.get(1), &[1.0, 1.0]);
        b.swap_remove(1); // removing the last just truncates
        assert_eq!(b.len(), 1);
        assert_eq!(b.get(0), &[2.0, 2.0]);
    }

    #[test]
    fn iter_visits_points_in_order() {
        let mut b = SeedBlock::with_capacity(1, 4);
        for x in 0..4 {
            b.push(&[f64::from(x)]);
        }
        let seen: Vec<f64> = b.iter().map(|p| p[0]).collect();
        assert_eq!(seen, [0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn clear_keeps_dim() {
        let mut b = SeedBlock::new(2);
        b.push(&[1.0, 2.0]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dim(), 2);
        b.push(&[3.0, 4.0]);
        assert_eq!(b.get(0), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn ragged_push_panics() {
        let mut b = SeedBlock::new(2);
        b.push(&[1.0]);
    }
}
