//! Symmetric pairwise distance matrix over a set of seeds.
//!
//! The triangle-inequality pruning of the paper (Section 3) requires the
//! pairwise distances among all data-bubble seeds to be known before points
//! are assigned. The number of seeds `s` is small relative to the database
//! (hundreds to low thousands), so we store the full `s × s` matrix in one
//! contiguous buffer: row access during the pruning pass is then a linear
//! scan, which matters because the pruning loop is the hottest comparison
//! loop in the whole system.

/// Dense symmetric `n × n` matrix of `f64` values with zero diagonal.
///
/// Both `(i, j)` and `(j, i)` entries are materialized so that reading a full
/// row never needs index arithmetic beyond `row * n + col`.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Creates an `n × n` matrix of zeros.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Number of rows (== number of columns).
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Reads the entry at `(i, j)`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "SymMatrix index out of bounds");
        self.data[i * self.n + j]
    }

    /// Sets the symmetric pair `(i, j)` and `(j, i)` to `value`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "SymMatrix index out of bounds");
        self.data[i * self.n + j] = value;
        self.data[j * self.n + i] = value;
    }

    /// Borrow of row `i` as a contiguous slice of length `n`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "SymMatrix row out of bounds");
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Grows the matrix by one zero row/column, returning the new index.
    pub fn push_row(&mut self) -> usize {
        let old = self.n;
        let new = old + 1;
        let mut data = vec![0.0; new * new];
        for i in 0..old {
            data[i * new..i * new + old].copy_from_slice(&self.data[i * old..(i + 1) * old]);
        }
        self.n = new;
        self.data = data;
        old
    }

    /// Removes row/column `i` by moving the last row/column into its place
    /// (swap-remove semantics): the element previously at index `n − 1` is
    /// afterwards at index `i`. O(n²), used only by rare structural
    /// operations (retiring a data bubble).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn swap_remove(&mut self, i: usize) {
        let n = self.n;
        assert!(i < n, "SymMatrix index out of bounds");
        let m = n - 1;
        let map = |k: usize| if k == i { m } else { k };
        let mut data = vec![0.0; m * m];
        for a in 0..m {
            for b in 0..m {
                data[a * m + b] = self.data[map(a) * n + map(b)];
            }
        }
        self.n = m;
        self.data = data;
    }

    /// Recomputes row (and the mirrored column) `i` from a distance oracle.
    ///
    /// The oracle receives the *other* index `j != i` and must return the new
    /// distance between element `i` and element `j`. The diagonal stays zero.
    /// This is exactly the O(s) bookkeeping the paper performs when a bubble
    /// is re-seeded by a merge/split rebuild.
    pub fn refresh_row<F: FnMut(usize) -> f64>(&mut self, i: usize, mut oracle: F) {
        assert!(i < self.n, "SymMatrix row out of bounds");
        for j in 0..self.n {
            if j == i {
                continue;
            }
            let d = oracle(j);
            self.set(i, j, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = SymMatrix::zeros(3);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn set_is_symmetric() {
        let mut m = SymMatrix::zeros(4);
        m.set(1, 3, 2.5);
        assert_eq!(m.get(1, 3), 2.5);
        assert_eq!(m.get(3, 1), 2.5);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn row_is_contiguous_view() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.set(0, 2, 2.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn push_row_preserves_existing_entries() {
        let mut m = SymMatrix::zeros(2);
        m.set(0, 1, 7.0);
        let idx = m.push_row();
        assert_eq!(idx, 2);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0, 1), 7.0);
        assert_eq!(m.get(2, 0), 0.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn refresh_row_updates_row_and_column() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 1, 9.0);
        m.refresh_row(1, |j| j as f64 + 10.0);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.get(0, 1), 10.0);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.get(2, 1), 12.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn swap_remove_moves_last_into_place() {
        let mut m = SymMatrix::zeros(4);
        m.set(0, 1, 1.0);
        m.set(0, 3, 3.0);
        m.set(2, 3, 23.0);
        m.set(1, 3, 13.0);
        m.swap_remove(1); // index 3 moves into slot 1
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0, 1), 3.0, "old (0,3)");
        assert_eq!(m.get(2, 1), 23.0, "old (2,3)");
        assert_eq!(m.get(1, 1), 0.0, "diagonal stays zero");
    }

    #[test]
    fn swap_remove_last_just_shrinks() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 1, 5.0);
        m.set(0, 2, 7.0);
        m.swap_remove(2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(0, 1), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = SymMatrix::zeros(2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn empty_matrix() {
        let m = SymMatrix::zeros(0);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
