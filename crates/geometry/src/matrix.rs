//! Symmetric pairwise distance matrix over a set of seeds.
//!
//! The triangle-inequality pruning of the paper (Section 3) requires the
//! pairwise distances among all data-bubble seeds to be known before points
//! are assigned. The number of seeds `s` is small relative to the database
//! (hundreds to low thousands), so we store the full `s × s` matrix in one
//! contiguous buffer: row access during the pruning pass is then a linear
//! scan, which matters because the pruning loop is the hottest comparison
//! loop in the whole system.
//!
//! # Incremental maintenance (DESIGN.md §15)
//!
//! Seed-set changes are frequent on the dynamic paths (every split, grow and
//! retire), so the structural operations are incremental rather than
//! rebuilding: the buffer is laid out with a row stride equal to a doubling
//! *capacity*, so [`SymMatrix::push_row`] only zeroes the new row and column
//! (amortized `O(n)`) instead of copying the whole matrix into a fresh
//! `(n+1)²` buffer, and [`SymMatrix::swap_remove`] moves the last row and
//! column into place with one contiguous row copy plus one strided column
//! walk (`O(n)`) instead of re-gathering all `(n−1)²` entries. The only
//! remaining `O(n²)` moment is the capacity relayout, which doubles, so it
//! amortizes away; the relayout copies row blocks of `RELAYOUT_BLOCK` rows
//! at a time to stay cache-resident on both buffers. [`MatrixStats`] counts
//! every entry written next to the entry count a naive full rebuild would
//! have written, which is how `kernel_report` and the repair-locality tests
//! verify the `O(n)`-per-change claim.

/// Rows copied per block during a capacity relayout; sized so one block of
/// source and destination rows (2 × 64 rows × ≤8 KiB) stays within L2.
const RELAYOUT_BLOCK: usize = 64;

/// Cumulative write accounting for a [`SymMatrix`].
///
/// `entries_written` counts actual `f64` stores performed by the structural
/// operations (`push_row`, `swap_remove`, `refresh_row`, `set`, relayouts);
/// `naive_entries` counts what a full-matrix rebuild per structural change —
/// the pre-PR-8 strategy — would have written. The gap between the two is
/// the "rows saved" number reported by `kernel_report`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatrixStats {
    /// `f64` stores actually performed.
    pub entries_written: u64,
    /// Stores an eager full rebuild per structural change would perform.
    pub naive_entries: u64,
    /// Capacity relayouts (each copies the live `n × n` block once).
    pub relayouts: u64,
}

impl MatrixStats {
    /// The accounting accumulated since `before` was captured.
    #[must_use]
    pub fn delta_since(&self, before: &Self) -> Self {
        Self {
            entries_written: self.entries_written - before.entries_written,
            naive_entries: self.naive_entries - before.naive_entries,
            relayouts: self.relayouts - before.relayouts,
        }
    }
}

/// Dense symmetric `n × n` matrix of `f64` values with zero diagonal.
///
/// Both `(i, j)` and `(j, i)` entries are materialized so that reading a full
/// row never needs index arithmetic beyond `row * stride + col`. Rows are
/// strided by an amortized-doubling capacity, so growth by one row does not
/// move existing entries.
#[derive(Debug, Clone)]
pub struct SymMatrix {
    n: usize,
    cap: usize,
    data: Vec<f64>,
    stats: MatrixStats,
}

impl PartialEq for SymMatrix {
    /// Logical equality: same dimensions and same entries. The capacity,
    /// any garbage beyond the live `n × n` block, and the write accounting
    /// are representation details and do not participate.
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && (0..self.n).all(|i| self.row(i) == other.row(i))
    }
}

impl SymMatrix {
    /// Creates an `n × n` matrix of zeros.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            cap: n,
            data: vec![0.0; n * n],
            stats: MatrixStats::default(),
        }
    }

    /// Number of rows (== number of columns).
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Cumulative write accounting since construction.
    #[must_use]
    pub fn stats(&self) -> MatrixStats {
        self.stats
    }

    /// Reads the entry at `(i, j)`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "SymMatrix index out of bounds");
        self.data[i * self.cap + j]
    }

    /// Sets the symmetric pair `(i, j)` and `(j, i)` to `value`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "SymMatrix index out of bounds");
        self.data[i * self.cap + j] = value;
        self.data[j * self.cap + i] = value;
        self.stats.entries_written += 2;
    }

    /// Borrow of row `i` as a contiguous slice of length `n`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "SymMatrix row out of bounds");
        &self.data[i * self.cap..i * self.cap + self.n]
    }

    /// Moves the live block into a buffer with at least `min_cap` row
    /// capacity, copying in blocks of [`RELAYOUT_BLOCK`] rows.
    fn relayout(&mut self, min_cap: usize) {
        let new_cap = (self.cap * 2).max(min_cap).max(4);
        let mut data = vec![0.0; new_cap * new_cap];
        for block in (0..self.n).step_by(RELAYOUT_BLOCK) {
            let end = (block + RELAYOUT_BLOCK).min(self.n);
            for i in block..end {
                data[i * new_cap..i * new_cap + self.n]
                    .copy_from_slice(&self.data[i * self.cap..i * self.cap + self.n]);
            }
        }
        self.cap = new_cap;
        self.data = data;
        self.stats.relayouts += 1;
        self.stats.entries_written += (self.n * self.n) as u64;
    }

    /// Grows the matrix by one zero row/column, returning the new index.
    ///
    /// Amortized `O(n)`: only the fresh row and column are written; existing
    /// entries stay in place unless a capacity relayout is due.
    pub fn push_row(&mut self) -> usize {
        let old = self.n;
        let new = old + 1;
        if new > self.cap {
            self.relayout(new);
        }
        let cap = self.cap;
        self.data[old * cap..old * cap + new].fill(0.0);
        for i in 0..old {
            self.data[i * cap + old] = 0.0;
        }
        self.n = new;
        self.stats.entries_written += (2 * new - 1) as u64;
        self.stats.naive_entries += (new * new) as u64;
        old
    }

    /// Removes row/column `i` by moving the last row/column into its place
    /// (swap-remove semantics): the element previously at index `n − 1` is
    /// afterwards at index `i`. `O(n)`: one contiguous row copy plus one
    /// strided column walk, in place.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn swap_remove(&mut self, i: usize) {
        let n = self.n;
        assert!(i < n, "SymMatrix index out of bounds");
        let m = n - 1;
        let cap = self.cap;
        if i != m {
            // Row m → row i (contiguous), then column m → column i for the
            // surviving rows; the diagonal (i, i) is re-zeroed because the
            // row copy put the old (m, i) entry there.
            let (lo, hi) = self.data.split_at_mut(m * cap);
            lo[i * cap..i * cap + n].copy_from_slice(&hi[..n]);
            for r in 0..m {
                if r != i {
                    self.data[r * cap + i] = self.data[r * cap + m];
                }
            }
            self.data[i * cap + i] = 0.0;
            self.stats.entries_written += (n + m) as u64;
        }
        self.n = m;
        self.stats.naive_entries += (m * m) as u64;
    }

    /// Recomputes row (and the mirrored column) `i` from a distance oracle.
    ///
    /// The oracle receives the *other* index `j != i` and must return the new
    /// distance between element `i` and element `j`. The diagonal stays zero.
    /// This is exactly the O(s) bookkeeping the paper performs when a bubble
    /// is re-seeded by a merge/split rebuild.
    pub fn refresh_row<F: FnMut(usize) -> f64>(&mut self, i: usize, mut oracle: F) {
        assert!(i < self.n, "SymMatrix row out of bounds");
        for j in 0..self.n {
            if j == i {
                continue;
            }
            let d = oracle(j);
            self.set(i, j, d);
        }
        self.stats.naive_entries += (self.n * self.n) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = SymMatrix::zeros(3);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn set_is_symmetric() {
        let mut m = SymMatrix::zeros(4);
        m.set(1, 3, 2.5);
        assert_eq!(m.get(1, 3), 2.5);
        assert_eq!(m.get(3, 1), 2.5);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn row_is_contiguous_view() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.set(0, 2, 2.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn push_row_preserves_existing_entries() {
        let mut m = SymMatrix::zeros(2);
        m.set(0, 1, 7.0);
        let idx = m.push_row();
        assert_eq!(idx, 2);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0, 1), 7.0);
        assert_eq!(m.get(2, 0), 0.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn push_row_from_empty_and_through_relayouts() {
        let mut m = SymMatrix::zeros(0);
        for k in 0..40 {
            let idx = m.push_row();
            assert_eq!(idx, k);
            m.refresh_row(idx, |j| (j as f64) + (idx as f64) * 100.0);
        }
        assert_eq!(m.len(), 40);
        for i in 0..40usize {
            for j in 0..40usize {
                let expect = if i == j {
                    0.0
                } else {
                    let (lo, hi) = (i.min(j), i.max(j));
                    lo as f64 + hi as f64 * 100.0
                };
                assert_eq!(m.get(i, j), expect, "entry ({i}, {j})");
            }
        }
        assert!(m.stats().relayouts >= 1, "doubling must have happened");
    }

    #[test]
    fn push_row_writes_o_n_entries_not_o_n_squared() {
        let mut m = SymMatrix::zeros(0);
        // Pre-grow past the 64 → 128 doubling so the steady-state push is
        // measured without a relayout.
        for _ in 0..70 {
            m.push_row();
        }
        let relayouts = m.stats().relayouts;
        let before = m.stats();
        m.push_row();
        assert_eq!(m.stats().relayouts, relayouts, "no relayout at 71");
        let delta = m.stats().entries_written - before.entries_written;
        assert_eq!(delta, 2 * 71 - 1, "one row + one column, nothing else");
        assert_eq!(m.stats().naive_entries - before.naive_entries, 71 * 71);
    }

    #[test]
    fn refresh_row_updates_row_and_column() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 1, 9.0);
        m.refresh_row(1, |j| j as f64 + 10.0);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.get(0, 1), 10.0);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.get(2, 1), 12.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn swap_remove_moves_last_into_place() {
        let mut m = SymMatrix::zeros(4);
        m.set(0, 1, 1.0);
        m.set(0, 3, 3.0);
        m.set(2, 3, 23.0);
        m.set(1, 3, 13.0);
        m.swap_remove(1); // index 3 moves into slot 1
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0, 1), 3.0, "old (0,3)");
        assert_eq!(m.get(2, 1), 23.0, "old (2,3)");
        assert_eq!(m.get(1, 1), 0.0, "diagonal stays zero");
    }

    #[test]
    fn swap_remove_matches_a_rebuilt_reference() {
        // Exhaustive cross-check of the in-place move against an
        // index-remapped rebuild, for every removal position.
        let n = 9;
        for removed in 0..n {
            let mut m = SymMatrix::zeros(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    m.set(i, j, (i * n + j) as f64);
                }
            }
            let reference = {
                let mm = n - 1;
                let map = |k: usize| if k == removed { n - 1 } else { k };
                let mut r = SymMatrix::zeros(mm);
                for a in 0..mm {
                    for b in (a + 1)..mm {
                        let (x, y) = (map(a).min(map(b)), map(a).max(map(b)));
                        r.set(a, b, (x * n + y) as f64);
                    }
                }
                r
            };
            m.swap_remove(removed);
            assert_eq!(m, reference, "removal at {removed}");
        }
    }

    #[test]
    fn swap_remove_writes_o_n_entries() {
        let mut m = SymMatrix::zeros(50);
        let before = m.stats();
        m.swap_remove(7);
        let delta = m.stats().entries_written - before.entries_written;
        assert_eq!(delta, 50 + 49, "row copy + column walk only");
    }

    #[test]
    fn swap_remove_last_just_shrinks() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 1, 5.0);
        m.set(0, 2, 7.0);
        m.swap_remove(2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(0, 1), 5.0);
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut grown = SymMatrix::zeros(0);
        for _ in 0..3 {
            grown.push_row();
        }
        grown.set(0, 1, 1.5);
        let mut fresh = SymMatrix::zeros(3);
        fresh.set(0, 1, 1.5);
        assert_eq!(grown, fresh);
        fresh.set(1, 2, 9.0);
        assert_ne!(grown, fresh);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = SymMatrix::zeros(2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn empty_matrix() {
        let m = SymMatrix::zeros(0);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
