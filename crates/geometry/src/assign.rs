//! Nearest-seed search with triangle-inequality pruning (paper, Section 3).
//!
//! Constructing data bubbles assigns every database point to its closest
//! seed. Lemma 1 of the paper lets us skip computing `dist(p, s_j)` whenever
//! `dist(s_c, s_j) >= 2 · dist(p, s_c)` for the current best candidate
//! `s_c`: the pairwise seed distances are precomputed once in a
//! [`SymMatrix`], and each skipped evaluation is recorded as *pruned* in the
//! caller's [`SearchStats`].
//!
//! [`NearestSeeds`] owns the seed coordinates (flat, contiguous) together
//! with their pairwise distance matrix and offers:
//!
//! * [`NearestSeeds::nearest_brute`] — the baseline that computes all `s`
//!   distances (what a standard implementation does);
//! * [`NearestSeeds::nearest_pruned`] — the Figure 2 algorithm;
//! * O(s) seed replacement ([`NearestSeeds::replace`]) used when a bubble is
//!   rebuilt by a merge/split, which refreshes one matrix row.

use crate::matrix::SymMatrix;
use crate::metric::dist;
use crate::stats::SearchStats;

/// A set of seed points plus their pairwise distance matrix.
///
/// Seeds are identified by dense indices `0..len()`; the incremental
/// maintainer keeps these indices aligned with its bubble ids.
///
/// # Examples
/// ```
/// use idb_geometry::{NearestSeeds, SearchStats};
///
/// let seeds = NearestSeeds::from_seeds(
///     1,
///     [[0.0].as_slice(), [10.0].as_slice(), [20.0].as_slice()],
/// );
/// let mut stats = SearchStats::new();
/// // Start from seed 0 (the hint): its distance is 1, and both other
/// // seeds are >= 2x that far from it, so the triangle inequality prunes
/// // them without ever measuring their distance to the query.
/// let (idx, d) = seeds.nearest_pruned(&[1.0], None, Some(0), &mut stats).unwrap();
/// assert_eq!(idx, 0);
/// assert_eq!(d, 1.0);
/// assert_eq!(stats.computed, 1);
/// assert_eq!(stats.pruned, 2);
/// ```
#[derive(Debug, Clone)]
pub struct NearestSeeds {
    dim: usize,
    coords: Vec<f64>,
    pairwise: SymMatrix,
}

impl NearestSeeds {
    /// Creates an empty seed set for points of dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "NearestSeeds requires dim > 0");
        Self {
            dim,
            coords: Vec::new(),
            pairwise: SymMatrix::zeros(0),
        }
    }

    /// Builds a seed set from an iterator of seed coordinates.
    ///
    /// # Panics
    /// Panics if any seed's dimensionality differs from `dim`.
    pub fn from_seeds<'a, I>(dim: usize, seeds: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut set = Self::new(dim);
        for s in seeds {
            set.push(s);
        }
        set
    }

    /// Dimensionality of the seeds.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of seeds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairwise.len()
    }

    /// `true` when the set holds no seeds.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinates of seed `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    #[must_use]
    pub fn seed(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Pairwise distance between seeds `i` and `j` as stored in the matrix.
    #[inline]
    #[must_use]
    pub fn pair_distance(&self, i: usize, j: usize) -> f64 {
        self.pairwise.get(i, j)
    }

    /// Appends a new seed, filling in its pairwise distance row, and returns
    /// its index.
    ///
    /// # Panics
    /// Panics if the seed's dimensionality differs from the set's.
    pub fn push(&mut self, seed: &[f64]) -> usize {
        assert_eq!(seed.len(), self.dim, "seed dimensionality mismatch");
        self.coords.extend_from_slice(seed);
        let idx = self.pairwise.push_row();
        let coords = &self.coords;
        let dim = self.dim;
        self.pairwise
            .refresh_row(idx, |j| dist(seed, &coords[j * dim..(j + 1) * dim]));
        idx
    }

    /// Replaces seed `i` with new coordinates, recomputing its pairwise
    /// distance row in O(s) — the bookkeeping the paper performs when a
    /// bubble is re-seeded during a merge/split rebuild.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds or the dimensionality differs.
    pub fn replace(&mut self, i: usize, seed: &[f64]) {
        assert_eq!(seed.len(), self.dim, "seed dimensionality mismatch");
        assert!(i < self.len(), "seed index out of bounds");
        self.coords[i * self.dim..(i + 1) * self.dim].copy_from_slice(seed);
        let coords = &self.coords;
        let dim = self.dim;
        self.pairwise
            .refresh_row(i, |j| dist(seed, &coords[j * dim..(j + 1) * dim]));
    }

    /// Removes seed `i` with swap-remove semantics: the last seed takes
    /// index `i`. The pairwise matrix follows. O(s²); used only when a
    /// bubble is retired by the adaptive maintenance extension.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn swap_remove(&mut self, i: usize) {
        let s = self.len();
        assert!(i < s, "seed index out of bounds");
        let last = s - 1;
        if i != last {
            let (head, tail) = self.coords.split_at_mut(last * self.dim);
            head[i * self.dim..(i + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
        }
        self.coords.truncate(last * self.dim);
        self.pairwise.swap_remove(i);
    }

    /// Brute-force nearest seed: computes the distance from `p` to every
    /// seed (optionally skipping `exclude`). Returns `(index, distance)`,
    /// or `None` when no candidate exists.
    ///
    /// Every evaluated distance is charged to `stats.computed`.
    pub fn nearest_brute(
        &self,
        p: &[f64],
        exclude: Option<usize>,
        stats: &mut SearchStats,
    ) -> Option<(usize, f64)> {
        debug_assert_eq!(p.len(), self.dim, "query dimensionality mismatch");
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.len() {
            if Some(i) == exclude {
                continue;
            }
            let d = dist(p, self.seed(i));
            stats.computed += 1;
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((i, d)),
            }
        }
        best
    }

    /// Nearest seed via the triangle-inequality algorithm of Figure 2.
    ///
    /// `hint`, when given, is used as the initial candidate seed — a caller
    /// that suspects a nearby seed (e.g. the bubble a point used to belong
    /// to) can seed the search with it to maximize pruning. `exclude` removes
    /// one seed from consideration (used when releasing the members of a
    /// merged-away donor bubble, which must not re-attract its own points).
    ///
    /// Computed distances are charged to `stats.computed`; candidates
    /// eliminated by Lemma 1 are charged to `stats.pruned`. The result is
    /// identical to [`Self::nearest_brute`] up to ties.
    ///
    /// This variant allocates a candidate scratch buffer; the zero-allocation
    /// version is [`Self::nearest_pruned_with`].
    pub fn nearest_pruned(
        &self,
        p: &[f64],
        exclude: Option<usize>,
        hint: Option<usize>,
        stats: &mut SearchStats,
    ) -> Option<(usize, f64)> {
        let mut scratch = Vec::new();
        self.nearest_pruned_with(p, exclude, hint, stats, &mut scratch)
    }

    /// [`Self::nearest_pruned`] with a caller-owned scratch buffer, so the
    /// per-point assignment loop performs no heap allocation.
    pub fn nearest_pruned_with(
        &self,
        p: &[f64],
        exclude: Option<usize>,
        hint: Option<usize>,
        stats: &mut SearchStats,
        scratch: &mut Vec<u32>,
    ) -> Option<(usize, f64)> {
        debug_assert_eq!(p.len(), self.dim, "query dimensionality mismatch");
        let s = self.len();
        scratch.clear();
        scratch.reserve(s);

        // Initial candidate: the hint when valid, otherwise the last seed
        // (so the remaining candidates can be popped from the back).
        let start = match (hint, exclude) {
            (Some(h), e) if h < s && Some(h) != e => h,
            _ => {
                let mut chosen = None;
                for i in (0..s).rev() {
                    if Some(i) != exclude {
                        chosen = Some(i);
                        break;
                    }
                }
                chosen?
            }
        };
        for i in 0..s {
            if i != start && Some(i) != exclude {
                scratch.push(i as u32);
            }
        }

        let mut cur = start;
        let mut min_d = dist(p, self.seed(cur));
        stats.computed += 1;

        loop {
            // Prune every remaining candidate that Lemma 1 rules out with
            // respect to the current best candidate.
            let row = self.pairwise.row(cur);
            let before = scratch.len();
            scratch.retain(|&j| row[j as usize] < 2.0 * min_d);
            stats.pruned += (before - scratch.len()) as u64;

            // The next surviving candidate must have its distance computed.
            let Some(j) = scratch.pop() else {
                return Some((cur, min_d));
            };
            let j = j as usize;
            let d = dist(p, self.seed(j));
            stats.computed += 1;
            if d < min_d {
                cur = j;
                min_d = d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_seeds() -> NearestSeeds {
        // Four seeds on a 2-d grid, well separated.
        NearestSeeds::from_seeds(
            2,
            [
                [0.0, 0.0].as_slice(),
                [10.0, 0.0].as_slice(),
                [0.0, 10.0].as_slice(),
                [10.0, 10.0].as_slice(),
            ],
        )
    }

    #[test]
    fn pairwise_matrix_filled_on_push() {
        let s = grid_seeds();
        assert_eq!(s.len(), 4);
        assert!((s.pair_distance(0, 1) - 10.0).abs() < 1e-12);
        assert!((s.pair_distance(0, 3) - 200f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.pair_distance(2, 2), 0.0);
    }

    #[test]
    fn brute_and_pruned_agree() {
        let s = grid_seeds();
        let queries = [
            [1.0, 1.0],
            [9.0, 1.0],
            [2.0, 9.0],
            [8.5, 8.5],
            [5.0, 5.0],
            [-3.0, -4.0],
        ];
        for q in &queries {
            let mut b = SearchStats::new();
            let mut t = SearchStats::new();
            let (bi, bd) = s.nearest_brute(q, None, &mut b).unwrap();
            let (ti, td) = s.nearest_pruned(q, None, None, &mut t).unwrap();
            assert!((bd - td).abs() < 1e-12);
            // Ties could pick different indices; for these queries there are
            // no ties except the exact center, where distance equality holds.
            if (q[0] - 5.0).abs() > 1e-9 || (q[1] - 5.0).abs() > 1e-9 {
                assert_eq!(bi, ti, "query {q:?}");
            }
            assert_eq!(t.total(), b.computed, "pruned+computed == brute cost");
        }
    }

    #[test]
    fn pruning_actually_happens_near_a_seed() {
        let s = grid_seeds();
        let mut stats = SearchStats::new();
        // A point almost on seed 0: every other seed is >= 10 away, i.e.
        // >= 2 * dist(p, s0), so all three must be pruned after one
        // distance computation when starting from seed 0.
        let (idx, _) = s
            .nearest_pruned(&[0.1, 0.1], None, Some(0), &mut stats)
            .unwrap();
        assert_eq!(idx, 0);
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.pruned, 3);
    }

    #[test]
    fn exclusion_is_respected() {
        let s = grid_seeds();
        let mut stats = SearchStats::new();
        let (idx, d) = s
            .nearest_pruned(&[0.1, 0.1], Some(0), None, &mut stats)
            .unwrap();
        assert_ne!(idx, 0);
        // Next closest are seeds 1 and 2, symmetric; distance ~ 9.9.
        assert!(d > 9.0 && d < 11.0);

        let mut stats = SearchStats::new();
        let (bidx, bd) = s.nearest_brute(&[0.1, 0.1], Some(0), &mut stats).unwrap();
        assert_ne!(bidx, 0);
        assert!((bd - d).abs() < 1e-12);
    }

    #[test]
    fn empty_set_returns_none() {
        let s = NearestSeeds::new(3);
        let mut stats = SearchStats::new();
        assert!(s
            .nearest_brute(&[0.0, 0.0, 0.0], None, &mut stats)
            .is_none());
        assert!(s
            .nearest_pruned(&[0.0, 0.0, 0.0], None, None, &mut stats)
            .is_none());
    }

    #[test]
    fn single_seed_excluded_returns_none() {
        let mut s = NearestSeeds::new(1);
        s.push(&[5.0]);
        let mut stats = SearchStats::new();
        assert!(s
            .nearest_pruned(&[0.0], Some(0), None, &mut stats)
            .is_none());
    }

    #[test]
    fn replace_updates_matrix_and_results() {
        let mut s = grid_seeds();
        // Move seed 3 next to the origin.
        s.replace(3, &[0.5, 0.5]);
        assert!((s.pair_distance(3, 0) - 0.5f64.sqrt()).abs() < 1e-12);
        let mut stats = SearchStats::new();
        let (idx, _) = s
            .nearest_pruned(&[0.6, 0.6], None, None, &mut stats)
            .unwrap();
        assert_eq!(idx, 3);
    }

    #[test]
    fn swap_remove_keeps_matrix_consistent() {
        let mut s = grid_seeds();
        s.swap_remove(1); // seed (10, 0) removed; (10, 10) takes index 1
        assert_eq!(s.len(), 3);
        assert_eq!(s.seed(1), &[10.0, 10.0]);
        for i in 0..3 {
            for j in 0..3 {
                let expect = dist(s.seed(i), s.seed(j));
                assert!((s.pair_distance(i, j) - expect).abs() < 1e-12, "({i},{j})");
            }
        }
        // Searches still agree with brute force.
        let mut b = SearchStats::new();
        let mut p = SearchStats::new();
        let q = [9.0, 9.0];
        let (bi, bd) = s.nearest_brute(&q, None, &mut b).unwrap();
        let (pi, pd) = s.nearest_pruned(&q, None, None, &mut p).unwrap();
        assert_eq!(bi, pi);
        assert!((bd - pd).abs() < 1e-12);
    }

    #[test]
    fn swap_remove_last_seed() {
        let mut s = grid_seeds();
        s.swap_remove(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.seed(0), &[0.0, 0.0]);
    }

    #[test]
    fn hint_does_not_change_result() {
        let s = grid_seeds();
        for hint in 0..4 {
            let mut stats = SearchStats::new();
            let (idx, d) = s
                .nearest_pruned(&[9.0, 9.5], None, Some(hint), &mut stats)
                .unwrap();
            assert_eq!(idx, 3);
            assert!((d - dist(&[9.0, 9.5], &[10.0, 10.0])).abs() < 1e-12);
        }
    }
}
