//! Nearest-seed search engines (paper, Section 3).
//!
//! Constructing data bubbles assigns every database point to its closest
//! seed. Lemma 1 of the paper lets us skip computing `dist(p, s_j)` whenever
//! the pairwise seed distance to a known-close seed already proves `s_j`
//! cannot win: the pairwise distances are precomputed once in a
//! [`SymMatrix`], and each avoided evaluation is recorded in the caller's
//! [`SearchStats`].
//!
//! [`NearestSeeds`] owns the seed coordinates (flat, contiguous) together
//! with their pairwise distance matrix and offers three interchangeable
//! engines, selected by [`SeedSearch`]:
//!
//! * [`SeedSearch::Brute`] — computes all `s` distances (what a standard
//!   implementation does); the accounting baseline.
//! * [`SeedSearch::Pruned`] — the Figure 2 algorithm, reworked: the search
//!   runs in *squared-distance* space (one `sqrt` per improvement instead
//!   of one per candidate), visits candidates in ascending order of their
//!   matrix-row distance to the start seed (a per-seed order cache kept
//!   fresh by [`push`](NearestSeeds::push)/[`replace`](NearestSeeds::replace)),
//!   prunes the whole remaining tail once the pairwise distance exceeds
//!   `d(p, start) + best` — by the triangle inequality nothing further out
//!   can beat or tie the best — and evaluates survivors with the
//!   early-exit kernel [`sq_dist_bounded`], charging abandoned evaluations
//!   to `stats.partial`.
//! * [`SeedSearch::KdTree`] — a k-d tree over the seeds (lazily built,
//!   invalidated by every mutation), best for low dimensionality and large
//!   seed counts; same accounting, with cut-off subtrees charged to
//!   `stats.pruned`.
//!
//! All three return **bit-identical** `(index, distance)` results: each
//! compares candidates by their squared distance (accumulated in the same
//! axis order), breaks exact ties by the lowest seed index, and takes one
//! final `sqrt` of the same winning value. The differential suites in
//! `tests/` enforce this across engines, hints, exclusions and thread
//! counts.

use crate::block::SeedBlock;
use crate::kdtree::KdTree;
use crate::matrix::{MatrixStats, SymMatrix};
use crate::metric::{dist, sq_dist, sq_dist_bounded};
use crate::parallel::{run_ranges, EnvParseError, Parallelism};
use crate::stats::SearchStats;
use std::ops::Range;
use std::sync::OnceLock;

/// Sentinel in a per-query hint buffer meaning "no hint for this query".
pub const NO_HINT: u32 = u32::MAX;

/// Which nearest-seed engine the maintainer and batch drivers use.
///
/// All engines return bit-identical results (see the module docs); the
/// choice only affects how much work the [`SearchStats`] counters record
/// and the wall-clock time. The default honours the `IDB_SEED_SEARCH`
/// environment variable (`brute` / `pruned` / `kdtree`), mirroring the
/// `IDB_PARALLELISM` knob, and falls back to [`SeedSearch::Pruned`] — the
/// paper's own algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedSearch {
    /// Evaluate every seed; the baseline whose cost defines
    /// [`SearchStats::total`].
    Brute,
    /// Triangle-inequality pruning over the pairwise matrix (Figure 2),
    /// with matrix-ordered candidate visits and early-exit kernels.
    Pruned,
    /// A k-d tree over the seeds; subtree cuts replace Lemma 1.
    KdTree,
}

impl Default for SeedSearch {
    /// The environment default: the `IDB_SEED_SEARCH` variable when set to
    /// something parseable, otherwise [`SeedSearch::Pruned`]. An *invalid*
    /// value warns once on stderr before falling back — a typo must never
    /// silently change the engine.
    fn default() -> Self {
        match Self::from_env_strict() {
            Ok(engine) => engine.unwrap_or(Self::Pruned),
            Err(e) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| eprintln!("warning: {e}; falling back to pruned"));
                Self::Pruned
            }
        }
    }
}

impl SeedSearch {
    /// Parses an engine name: `brute`, `pruned`, or `kdtree` (also
    /// accepted: `kd`, `kd-tree`). Case-insensitive; `None` for anything
    /// else.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("brute") {
            Some(Self::Brute)
        } else if s.eq_ignore_ascii_case("pruned") {
            Some(Self::Pruned)
        } else if s.eq_ignore_ascii_case("kdtree")
            || s.eq_ignore_ascii_case("kd")
            || s.eq_ignore_ascii_case("kd-tree")
        {
            Some(Self::KdTree)
        } else {
            None
        }
    }

    /// The canonical engine name ([`SeedSearch::parse`] round-trips it):
    /// `brute`, `pruned`, or `kdtree`. Used as the middle segment of the
    /// `assign.<engine>.*` metric names.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Brute => "brute",
            Self::Pruned => "pruned",
            Self::KdTree => "kdtree",
        }
    }

    /// Reads the `IDB_SEED_SEARCH` environment variable (the knob `ci.sh`
    /// uses to run the differential suites under every engine). `None`
    /// when unset or unparseable; use [`SeedSearch::from_env_strict`] to
    /// distinguish those two cases.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        Self::from_env_strict().ok().flatten()
    }

    /// Like [`SeedSearch::from_env`], but an unparseable value is a typed
    /// [`EnvParseError`] instead of a silent `None`. `Ok(None)` means the
    /// variable is unset.
    ///
    /// # Errors
    /// [`EnvParseError`] when `IDB_SEED_SEARCH` is set to something that
    /// [`SeedSearch::parse`] rejects.
    pub fn from_env_strict() -> Result<Option<Self>, EnvParseError> {
        match std::env::var("IDB_SEED_SEARCH") {
            Err(_) => Ok(None),
            Ok(v) => match Self::parse(&v) {
                Some(engine) => Ok(Some(engine)),
                None => Err(EnvParseError {
                    var: "IDB_SEED_SEARCH",
                    value: v,
                    expected: "`brute`, `pruned`, or `kdtree`",
                }),
            },
        }
    }
}

/// A set of seed points plus their pairwise distance matrix.
///
/// Seeds are identified by dense indices `0..len()`; the incremental
/// maintainer keeps these indices aligned with its bubble ids.
///
/// # Examples
/// ```
/// use idb_geometry::{NearestSeeds, SearchStats};
///
/// let seeds = NearestSeeds::from_seeds(
///     1,
///     [[0.0].as_slice(), [10.0].as_slice(), [20.0].as_slice()],
/// );
/// let mut stats = SearchStats::new();
/// // Start from seed 0 (the hint): its distance is 1, and both other
/// // seeds are more than dist(p, s0) + best away from it, so the triangle
/// // inequality prunes the whole ordered tail without ever measuring
/// // their distance to the query.
/// let (idx, d) = seeds.nearest_pruned(&[1.0], None, Some(0), &mut stats).unwrap();
/// assert_eq!(idx, 0);
/// assert_eq!(d, 1.0);
/// assert_eq!(stats.computed, 1);
/// assert_eq!(stats.pruned, 2);
/// ```
#[derive(Debug, Clone)]
pub struct NearestSeeds {
    dim: usize,
    /// Seed coordinates in one contiguous dimension-strided block, so the
    /// candidate scans walk linear memory.
    block: SeedBlock,
    pairwise: SymMatrix,
    /// `order[i]` holds all seed indices sorted ascending by
    /// `(pairwise(i, j), j)` — the visit order that makes the Lemma 1
    /// bound fire as early as possible when the search starts at seed `i`.
    order: Vec<Vec<u32>>,
    /// Cumulative order-cache repair accounting (DESIGN.md §15).
    repair: RepairStats,
    /// Lazily built k-d tree over the seeds for [`SeedSearch::KdTree`];
    /// cleared by every mutation, rebuilt (deterministically) on demand.
    kd: OnceLock<KdTree>,
}

/// Cumulative accounting of the incremental order-cache repair performed by
/// the seed-set mutators ([`NearestSeeds::push`], [`NearestSeeds::replace`],
/// [`NearestSeeds::swap_remove`]).
///
/// `order_entries` counts order-cache slots actually spliced, repositioned
/// or rebuilt; `order_naive_entries` counts the slots a full re-sort of
/// every row — the pre-PR-8 strategy for `swap_remove` — would have
/// touched (`s²` per mutation). The pairwise-matrix analogue lives in
/// [`MatrixStats`], read through [`NearestSeeds::matrix_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Order-cache slots actually touched by incremental repair.
    pub order_entries: u64,
    /// Slots a full per-mutation rebuild of the cache would have touched.
    pub order_naive_entries: u64,
    /// Structural mutations performed (push + replace + swap_remove).
    pub ops: u64,
}

impl RepairStats {
    /// The accounting accumulated since `before` was captured.
    #[must_use]
    pub fn delta_since(&self, before: &Self) -> Self {
        Self {
            order_entries: self.order_entries - before.order_entries,
            order_naive_entries: self.order_naive_entries - before.order_naive_entries,
            ops: self.ops - before.ops,
        }
    }
}

impl NearestSeeds {
    /// Creates an empty seed set for points of dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "NearestSeeds requires dim > 0");
        Self {
            dim,
            block: SeedBlock::new(dim),
            pairwise: SymMatrix::zeros(0),
            order: Vec::new(),
            repair: RepairStats::default(),
            kd: OnceLock::new(),
        }
    }

    /// Builds a seed set from an iterator of seed coordinates.
    ///
    /// # Panics
    /// Panics if any seed's dimensionality differs from `dim`.
    pub fn from_seeds<'a, I>(dim: usize, seeds: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut set = Self::new(dim);
        for s in seeds {
            set.push(s);
        }
        set
    }

    /// Dimensionality of the seeds.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of seeds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairwise.len()
    }

    /// `true` when the set holds no seeds.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinates of seed `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    #[must_use]
    pub fn seed(&self, i: usize) -> &[f64] {
        self.block.get(i)
    }

    /// The seed coordinates as one contiguous dimension-strided block.
    #[inline]
    #[must_use]
    pub fn seed_block(&self) -> &SeedBlock {
        &self.block
    }

    /// Cumulative pairwise-matrix write accounting (DESIGN.md §15).
    #[must_use]
    pub fn matrix_stats(&self) -> MatrixStats {
        self.pairwise.stats()
    }

    /// Cumulative order-cache repair accounting (DESIGN.md §15).
    #[must_use]
    pub fn repair_stats(&self) -> RepairStats {
        self.repair
    }

    /// Pairwise distance between seeds `i` and `j` as stored in the matrix.
    #[inline]
    #[must_use]
    pub fn pair_distance(&self, i: usize, j: usize) -> f64 {
        self.pairwise.get(i, j)
    }

    /// The other seeds of the set in ascending order of their pairwise
    /// distance to seed `i` (ties by index; `i` itself leads its own row).
    /// This is the visit order of [`Self::nearest_pruned`], exposed so the
    /// maintainer can read off a seed's nearest surviving neighbour — e.g.
    /// as a warm-start hint after a merge retires the seed — without any
    /// extra distance computations.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    #[must_use]
    pub fn neighbor_order(&self, i: usize) -> &[u32] {
        &self.order[i]
    }

    fn sorted_row(pairwise: &SymMatrix, i: usize) -> Vec<u32> {
        let row = pairwise.row(i);
        let mut idx: Vec<u32> = (0..pairwise.len() as u32).collect();
        idx.sort_by(|&a, &b| row[a as usize].total_cmp(&row[b as usize]).then(a.cmp(&b)));
        idx
    }

    /// Appends a new seed, filling in its pairwise distance row and
    /// splicing it into every order-cache row, and returns its index.
    ///
    /// # Panics
    /// Panics if the seed's dimensionality differs from the set's.
    pub fn push(&mut self, seed: &[f64]) -> usize {
        assert_eq!(seed.len(), self.dim, "seed dimensionality mismatch");
        self.block.push(seed);
        let idx = self.pairwise.push_row();
        let block = &self.block;
        self.pairwise.refresh_row(idx, |j| dist(seed, block.get(j)));
        let new = idx as u32;
        for (i, row) in self.order.iter_mut().enumerate() {
            let prow = self.pairwise.row(i);
            let pd = prow[idx];
            let pos = row
                .binary_search_by(|&x| prow[x as usize].total_cmp(&pd).then(x.cmp(&new)))
                .unwrap_err();
            row.insert(pos, new);
        }
        self.order.push(Self::sorted_row(&self.pairwise, idx));
        let s = self.len() as u64;
        self.repair.order_entries += (s - 1) + s; // one splice per old row + the new row
        self.repair.order_naive_entries += s * s;
        self.repair.ops += 1;
        self.kd = OnceLock::new();
        idx
    }

    /// Replaces seed `i` with new coordinates, recomputing its pairwise
    /// distance row in O(s) and re-sorting the order cache — the
    /// bookkeeping the paper performs when a bubble is re-seeded during a
    /// merge/split rebuild.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds or the dimensionality differs.
    pub fn replace(&mut self, i: usize, seed: &[f64]) {
        assert_eq!(seed.len(), self.dim, "seed dimensionality mismatch");
        assert!(i < self.len(), "seed index out of bounds");
        self.block.set(i, seed);
        let block = &self.block;
        self.pairwise.refresh_row(i, |j| dist(seed, block.get(j)));
        // Reposition entry `i` inside every other row (its key changed);
        // rebuild row `i` outright.
        let iu = i as u32;
        for (j, row) in self.order.iter_mut().enumerate() {
            if j == i {
                continue;
            }
            let prow = self.pairwise.row(j);
            let pd = prow[i];
            let pos = row
                .iter()
                .position(|&x| x == iu)
                .expect("order row lost an index");
            row.remove(pos);
            let ins = row
                .binary_search_by(|&x| prow[x as usize].total_cmp(&pd).then(x.cmp(&iu)))
                .unwrap_err();
            row.insert(ins, iu);
        }
        self.order[i] = Self::sorted_row(&self.pairwise, i);
        let s = self.len() as u64;
        self.repair.order_entries += (s - 1) + s; // one reposition per other row + row i
        self.repair.order_naive_entries += s * s;
        self.repair.ops += 1;
        self.kd = OnceLock::new();
    }

    /// Removes seed `i` with swap-remove semantics: the last seed takes
    /// index `i`. The pairwise matrix follows, and the order cache is
    /// *repaired* rather than rebuilt: every row drops the retired index
    /// and repositions the renamed one among its exact-distance ties —
    /// distances between surviving seeds are unchanged, so the relative
    /// order of all other entries is already correct. O(s) per row with no
    /// re-sort and no allocation, versus the O(s² log s) full rebuild this
    /// replaced; [`Self::repair_stats`] counts both sides.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn swap_remove(&mut self, i: usize) {
        let s = self.len();
        assert!(i < s, "seed index out of bounds");
        let last = s - 1;
        self.block.swap_remove(i);
        self.pairwise.swap_remove(i);
        let iu = i as u32;
        let lu = last as u32;
        // Row `i` inherits the moved seed's old row; the retired row drops.
        self.order.swap_remove(i);
        for (j, row) in self.order.iter_mut().enumerate() {
            let pos = row
                .iter()
                .position(|&x| x == iu)
                .expect("order row lost an index");
            row.remove(pos);
            self.repair.order_entries += 1;
            if i != last {
                // The moved seed keeps its distances but changes identity
                // (last → i), which can shift its rank among exact ties:
                // the sort key is (distance, index). Remove and re-splice.
                let pos = row
                    .iter()
                    .position(|&x| x == lu)
                    .expect("order row lost an index");
                row.remove(pos);
                let prow = self.pairwise.row(j);
                let pd = prow[i];
                let ins = row
                    .binary_search_by(|&x| prow[x as usize].total_cmp(&pd).then(x.cmp(&iu)))
                    .unwrap_err();
                row.insert(ins, iu);
                self.repair.order_entries += 1;
            }
        }
        self.repair.order_naive_entries += (last * last) as u64;
        self.repair.ops += 1;
        self.kd = OnceLock::new();
    }

    /// Brute-force nearest seed: computes the squared distance from `p` to
    /// every seed (optionally skipping `exclude`), ties broken by lowest
    /// index, and takes one `sqrt` of the winner. Returns
    /// `(index, distance)`, or `None` when no candidate exists.
    ///
    /// Every evaluated distance is charged to `stats.computed`.
    pub fn nearest_brute(
        &self,
        p: &[f64],
        exclude: Option<usize>,
        stats: &mut SearchStats,
    ) -> Option<(usize, f64)> {
        debug_assert_eq!(p.len(), self.dim, "query dimensionality mismatch");
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.len() {
            if Some(i) == exclude {
                continue;
            }
            let sq = sq_dist(p, self.seed(i));
            stats.computed += 1;
            match best {
                Some((_, bsq)) if bsq <= sq => {}
                _ => best = Some((i, sq)),
            }
        }
        best.map(|(i, sq)| (i, sq.sqrt()))
    }

    /// Nearest seed via the triangle-inequality algorithm of Figure 2,
    /// upgraded to squared-space comparisons, matrix-ordered candidate
    /// visits, wholesale tail pruning and early-exit evaluation.
    ///
    /// `hint`, when given, is used as the start seed — a caller that
    /// suspects a nearby seed (e.g. the bubble a point used to belong to)
    /// seeds the search with it to maximize pruning. `exclude` removes one
    /// seed from consideration (used when releasing the members of a
    /// merged-away donor bubble, which must not re-attract its own points).
    ///
    /// The start's distance `d₀ = d(p, start)` is computed in full. The
    /// remaining candidates are visited in ascending pairwise distance to
    /// the start (the cached order). For candidate `j` at pairwise
    /// distance `w`:
    ///
    /// * `w > d₀ + best` — by the triangle inequality
    ///   `d(p, j) ≥ w − d₀ > best`, and every later candidate is at least
    ///   as far out, so the **entire tail** is pruned at once;
    /// * `|w − d₀| > best` — same bound, this candidate alone is pruned
    ///   (this is Lemma 1's condition, reached before `w` grows past the
    ///   tail cutoff);
    /// * otherwise the squared distance is evaluated with
    ///   [`sq_dist_bounded`] against the best-so-far square: abandoned
    ///   evaluations are charged to `stats.partial`, completed ones to
    ///   `stats.computed`.
    ///
    /// Both prune conditions are strict inequalities on a *lower bound* of
    /// the true distance, so a pruned candidate can neither beat nor tie
    /// the best — exact ties (duplicate seeds included) always survive to
    /// evaluation and resolve to the lowest index, keeping the result
    /// bit-identical to [`Self::nearest_brute`].
    pub fn nearest_pruned(
        &self,
        p: &[f64],
        exclude: Option<usize>,
        hint: Option<usize>,
        stats: &mut SearchStats,
    ) -> Option<(usize, f64)> {
        debug_assert_eq!(p.len(), self.dim, "query dimensionality mismatch");
        let s = self.len();
        let exclude = exclude.filter(|&e| e < s);
        let start = match hint {
            Some(h) if h < s && Some(h) != exclude => h,
            _ => (0..s).find(|&i| Some(i) != exclude)?,
        };
        let mut best_sq = sq_dist(p, self.seed(start));
        stats.computed += 1;
        let mut best_idx = start;
        let d_start = best_sq.sqrt();
        let mut best_d = d_start;

        let order = &self.order[start];
        let prow = self.pairwise.row(start);
        for (pos, &j32) in order.iter().enumerate() {
            let j = j32 as usize;
            if j == start || Some(j) == exclude {
                continue;
            }
            let w = prow[j];
            if w > d_start + best_d {
                // Everything from here on is at least `w` away from the
                // start, hence strictly farther from `p` than the best.
                let tail = order[pos..]
                    .iter()
                    .filter(|&&k| k as usize != start && Some(k as usize) != exclude)
                    .count();
                stats.pruned += tail as u64;
                break;
            }
            if (w - d_start).abs() > best_d {
                stats.pruned += 1;
                continue;
            }
            match sq_dist_bounded(p, self.seed(j), best_sq) {
                None => stats.partial += 1,
                Some(sq) => {
                    stats.computed += 1;
                    if sq < best_sq || (sq == best_sq && j < best_idx) {
                        best_sq = sq;
                        best_idx = j;
                        best_d = best_sq.sqrt();
                    }
                }
            }
        }
        Some((best_idx, best_sq.sqrt()))
    }

    /// Nearest seed via the lazily built k-d tree index. Best for low
    /// dimensionality; same result and accounting contract as the other
    /// engines, with candidates cut off by subtree bounds charged to
    /// `stats.pruned` (derived from the eligible count, since the tree
    /// does not track subtree sizes).
    pub fn nearest_kd(
        &self,
        p: &[f64],
        exclude: Option<usize>,
        hint: Option<usize>,
        stats: &mut SearchStats,
    ) -> Option<(usize, f64)> {
        debug_assert_eq!(p.len(), self.dim, "query dimensionality mismatch");
        let s = self.len();
        let exclude = exclude.filter(|&e| e < s);
        let eligible = s - usize::from(exclude.is_some());
        if eligible == 0 {
            return None;
        }
        let tree = self
            .kd
            .get_or_init(|| KdTree::build_dense(self.dim, self.block.as_flat()));
        let before_computed = stats.computed;
        let before_partial = stats.partial;
        let (idx, sq) =
            tree.nearest_one(p, exclude.map(|e| e as u32), hint.map(|h| h as u32), stats)?;
        let touched = (stats.computed - before_computed) + (stats.partial - before_partial);
        stats.pruned += eligible as u64 - touched;
        Some((idx as usize, sq.sqrt()))
    }

    /// Nearest seed via the engine selected by `engine`. [`SeedSearch::Brute`]
    /// ignores the hint (it evaluates everything regardless).
    pub fn nearest(
        &self,
        engine: SeedSearch,
        p: &[f64],
        exclude: Option<usize>,
        hint: Option<usize>,
        stats: &mut SearchStats,
    ) -> Option<(usize, f64)> {
        match engine {
            SeedSearch::Brute => self.nearest_brute(p, exclude, stats),
            SeedSearch::Pruned => self.nearest_pruned(p, exclude, hint, stats),
            SeedSearch::KdTree => self.nearest_kd(p, exclude, hint, stats),
        }
    }

    /// Nearest seed for every query in a flat `queries` buffer
    /// (`queries.len()` must be a multiple of `dim`), via the selected
    /// engine. Returns `(seed index, distance)` per query, aligned with
    /// query order.
    ///
    /// `hints`, when given, carries one warm-start seed per query
    /// ([`NO_HINT`] for "none"), aligned with the query order — the
    /// maintainer passes each point's previous bubble here so batch
    /// maintenance becomes mostly O(1)-computed confirmations.
    ///
    /// Work is fanned out per [`Parallelism`]: queries are split into
    /// contiguous index ranges, each range runs the identical per-query
    /// search with its own [`SearchStats`] counter, and the per-range
    /// counters are summed into `stats` in range order — so the counts
    /// (and every result) are bit-identical to a serial loop over the same
    /// queries.
    ///
    /// # Panics
    /// Panics if `queries.len()` is not a multiple of `dim`, if `hints` is
    /// given with a length other than the query count, or if there are
    /// queries but no eligible seed.
    pub fn nearest_batch(
        &self,
        queries: &[f64],
        exclude: Option<usize>,
        engine: SeedSearch,
        hints: Option<&[u32]>,
        par: Parallelism,
        stats: &mut SearchStats,
    ) -> Vec<(u32, f64)> {
        let mut results = Vec::new();
        self.nearest_batch_into(queries, exclude, engine, hints, par, stats, &mut results);
        results
    }

    /// Runs the per-query search for one contiguous query index range,
    /// appending `(index, distance)` pairs to `out` — the shared inner loop
    /// of every batch path, serial or fanned out.
    #[allow(clippy::too_many_arguments)]
    fn search_range(
        &self,
        queries: &[f64],
        exclude: Option<usize>,
        engine: SeedSearch,
        hints: Option<&[u32]>,
        range: Range<usize>,
        local: &mut SearchStats,
        out: &mut Vec<(u32, f64)>,
    ) {
        for qi in range {
            let q = &queries[qi * self.dim..(qi + 1) * self.dim];
            let hint = hints.and_then(|h| {
                let v = h[qi];
                (v != NO_HINT).then_some(v as usize)
            });
            let (i, d) = self
                .nearest(engine, q, exclude, hint, local)
                .expect("batch assignment requires at least one eligible seed");
            out.push((i as u32, d));
        }
    }

    /// [`Self::nearest_batch`] writing into a caller-owned buffer (cleared
    /// first), so steady-state batch paths reuse one allocation per
    /// maintainer instead of allocating a result vector per call. The
    /// results, their order and the `stats` accounting are bit-identical to
    /// [`Self::nearest_batch`].
    ///
    /// # Panics
    /// Panics if `queries.len()` is not a multiple of `dim`, if `hints` is
    /// given with a length other than the query count, or if there are
    /// queries but no eligible seed.
    #[allow(clippy::too_many_arguments)]
    pub fn nearest_batch_into(
        &self,
        queries: &[f64],
        exclude: Option<usize>,
        engine: SeedSearch,
        hints: Option<&[u32]>,
        par: Parallelism,
        stats: &mut SearchStats,
        out: &mut Vec<(u32, f64)>,
    ) {
        out.clear();
        assert_eq!(
            queries.len() % self.dim,
            0,
            "query buffer length must be a multiple of dim"
        );
        let k = queries.len() / self.dim;
        if let Some(h) = hints {
            assert_eq!(h.len(), k, "one hint per query");
        }
        if k == 0 {
            return;
        }
        if engine == SeedSearch::KdTree {
            // Build the shared index once in the calling thread instead of
            // having every worker race on the lazy init.
            self.kd
                .get_or_init(|| KdTree::build_dense(self.dim, self.block.as_flat()));
        }
        // Chunk length in *queries*, so hint and query slices stay aligned.
        let chunk_points = k.div_ceil(par.effective_threads());
        out.reserve(k);
        if chunk_points >= k {
            // Single chunk: fill the caller's buffer directly in the
            // calling thread — the steady-state serial path allocates
            // nothing at all.
            let mut local = SearchStats::new();
            self.search_range(queries, exclude, engine, hints, 0..k, &mut local, out);
            *stats += local;
            return;
        }
        let per_chunk = run_ranges(k, chunk_points, |range| {
            let mut local = SearchStats::new();
            let mut chunk_out = Vec::with_capacity(range.len());
            self.search_range(
                queries,
                exclude,
                engine,
                hints,
                range,
                &mut local,
                &mut chunk_out,
            );
            (chunk_out, local)
        });
        for (chunk_results, chunk_stats) in per_chunk {
            out.extend(chunk_results);
            *stats += chunk_stats;
        }
    }

    /// [`Self::nearest_batch`] with [`SeedSearch::Brute`] and no hints.
    ///
    /// # Panics
    /// Panics if `queries.len()` is not a multiple of `dim`, or if there
    /// are queries but no eligible seed.
    pub fn nearest_batch_brute(
        &self,
        queries: &[f64],
        exclude: Option<usize>,
        par: Parallelism,
        stats: &mut SearchStats,
    ) -> Vec<(u32, f64)> {
        self.nearest_batch(queries, exclude, SeedSearch::Brute, None, par, stats)
    }

    /// [`Self::nearest_batch`] with [`SeedSearch::Pruned`] and no hints.
    ///
    /// # Panics
    /// Panics if `queries.len()` is not a multiple of `dim`, or if there
    /// are queries but no eligible seed.
    pub fn nearest_batch_pruned(
        &self,
        queries: &[f64],
        exclude: Option<usize>,
        par: Parallelism,
        stats: &mut SearchStats,
    ) -> Vec<(u32, f64)> {
        self.nearest_batch(queries, exclude, SeedSearch::Pruned, None, par, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINES: [SeedSearch; 3] = [SeedSearch::Brute, SeedSearch::Pruned, SeedSearch::KdTree];

    fn grid_seeds() -> NearestSeeds {
        // Four seeds on a 2-d grid, well separated.
        NearestSeeds::from_seeds(
            2,
            [
                [0.0, 0.0].as_slice(),
                [10.0, 0.0].as_slice(),
                [0.0, 10.0].as_slice(),
                [10.0, 10.0].as_slice(),
            ],
        )
    }

    fn assert_order_cache_consistent(s: &NearestSeeds) {
        for i in 0..s.len() {
            let row = s.neighbor_order(i);
            assert_eq!(row.len(), s.len(), "row {i} covers all seeds");
            let mut seen: Vec<u32> = row.to_vec();
            seen.sort_unstable();
            assert_eq!(seen, (0..s.len() as u32).collect::<Vec<_>>());
            for w in row.windows(2) {
                let (a, b) = (w[0] as usize, w[1] as usize);
                let (da, db) = (s.pair_distance(i, a), s.pair_distance(i, b));
                assert!(
                    da < db || (da == db && a < b),
                    "row {i}: {a} (d={da}) before {b} (d={db})"
                );
            }
        }
    }

    #[test]
    fn pairwise_matrix_filled_on_push() {
        let s = grid_seeds();
        assert_eq!(s.len(), 4);
        assert!((s.pair_distance(0, 1) - 10.0).abs() < 1e-12);
        assert!((s.pair_distance(0, 3) - 200f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.pair_distance(2, 2), 0.0);
        assert_order_cache_consistent(&s);
    }

    #[test]
    fn all_engines_agree() {
        let s = grid_seeds();
        let queries = [
            [1.0, 1.0],
            [9.0, 1.0],
            [2.0, 9.0],
            [8.5, 8.5],
            [5.0, 5.0],
            [-3.0, -4.0],
        ];
        for q in &queries {
            let mut b = SearchStats::new();
            let (bi, bd) = s.nearest_brute(q, None, &mut b).unwrap();
            for engine in [SeedSearch::Pruned, SeedSearch::KdTree] {
                for hint in [None, Some(0), Some(3)] {
                    let mut t = SearchStats::new();
                    let (ti, td) = s.nearest(engine, q, None, hint, &mut t).unwrap();
                    assert_eq!(bi, ti, "query {q:?} engine {engine:?} hint {hint:?}");
                    assert_eq!(bd.to_bits(), td.to_bits(), "query {q:?} engine {engine:?}");
                    assert_eq!(
                        t.total(),
                        b.computed,
                        "accounting covers every candidate once: {q:?} {engine:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_actually_happens_near_a_seed() {
        let s = grid_seeds();
        let mut stats = SearchStats::new();
        // A point almost on seed 0: every other seed is >= 10 away, i.e.
        // beyond dist(p, s0) + best, so the whole ordered tail is pruned
        // after one distance computation when starting from seed 0.
        let (idx, _) = s
            .nearest_pruned(&[0.1, 0.1], None, Some(0), &mut stats)
            .unwrap();
        assert_eq!(idx, 0);
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.pruned, 3);
        assert_eq!(stats.partial, 0);
    }

    #[test]
    fn exclusion_is_respected_by_every_engine() {
        let s = grid_seeds();
        let mut b = SearchStats::new();
        let (bidx, bd) = s.nearest_brute(&[0.1, 0.1], Some(0), &mut b).unwrap();
        assert_ne!(bidx, 0);
        // Next closest are seeds 1 and 2, symmetric; distance ~ 9.9.
        assert!(bd > 9.0 && bd < 11.0);
        for engine in [SeedSearch::Pruned, SeedSearch::KdTree] {
            let mut stats = SearchStats::new();
            let (idx, d) = s
                .nearest(engine, &[0.1, 0.1], Some(0), None, &mut stats)
                .unwrap();
            assert_eq!(idx, bidx, "{engine:?}");
            assert_eq!(d.to_bits(), bd.to_bits(), "{engine:?}");
            assert_eq!(stats.total(), 3, "{engine:?}: excluded seed never charged");
        }
    }

    #[test]
    fn duplicate_seeds_resolve_to_lowest_index() {
        let s = NearestSeeds::from_seeds(
            2,
            [
                [4.0, 4.0].as_slice(),
                [1.0, 1.0].as_slice(),
                [1.0, 1.0].as_slice(),
                [1.0, 1.0].as_slice(),
            ],
        );
        for engine in ENGINES {
            for hint in [None, Some(0), Some(2), Some(3)] {
                let mut stats = SearchStats::new();
                let (idx, _) = s
                    .nearest(engine, &[1.1, 0.9], None, hint, &mut stats)
                    .unwrap();
                assert_eq!(idx, 1, "{engine:?} hint {hint:?}");
                // Excluding the winner promotes the next duplicate.
                let mut stats = SearchStats::new();
                let (idx, _) = s
                    .nearest(engine, &[1.1, 0.9], Some(1), hint, &mut stats)
                    .unwrap();
                assert_eq!(idx, 2, "{engine:?} hint {hint:?}");
            }
        }
    }

    #[test]
    fn empty_set_returns_none() {
        let s = NearestSeeds::new(3);
        let mut stats = SearchStats::new();
        for engine in ENGINES {
            assert!(s
                .nearest(engine, &[0.0, 0.0, 0.0], None, None, &mut stats)
                .is_none());
        }
    }

    #[test]
    fn single_seed_excluded_returns_none() {
        let mut s = NearestSeeds::new(1);
        s.push(&[5.0]);
        let mut stats = SearchStats::new();
        for engine in ENGINES {
            assert!(s
                .nearest(engine, &[0.0], Some(0), None, &mut stats)
                .is_none());
        }
        assert_eq!(stats, SearchStats::new());
    }

    #[test]
    fn replace_updates_matrix_order_and_results() {
        let mut s = grid_seeds();
        // Move seed 3 next to the origin.
        s.replace(3, &[0.5, 0.5]);
        assert!((s.pair_distance(3, 0) - 0.5f64.sqrt()).abs() < 1e-12);
        assert_order_cache_consistent(&s);
        for engine in ENGINES {
            let mut stats = SearchStats::new();
            let (idx, _) = s
                .nearest(engine, &[0.6, 0.6], None, None, &mut stats)
                .unwrap();
            assert_eq!(idx, 3, "{engine:?}");
        }
    }

    #[test]
    fn swap_remove_keeps_matrix_and_order_consistent() {
        let mut s = grid_seeds();
        s.swap_remove(1); // seed (10, 0) removed; (10, 10) takes index 1
        assert_eq!(s.len(), 3);
        assert_eq!(s.seed(1), &[10.0, 10.0]);
        for i in 0..3 {
            for j in 0..3 {
                let expect = dist(s.seed(i), s.seed(j));
                assert!((s.pair_distance(i, j) - expect).abs() < 1e-12, "({i},{j})");
            }
        }
        assert_order_cache_consistent(&s);
        // Searches still agree with brute force.
        let q = [9.0, 9.0];
        let mut b = SearchStats::new();
        let (bi, bd) = s.nearest_brute(&q, None, &mut b).unwrap();
        for engine in [SeedSearch::Pruned, SeedSearch::KdTree] {
            let mut p = SearchStats::new();
            let (pi, pd) = s.nearest(engine, &q, None, None, &mut p).unwrap();
            assert_eq!(bi, pi, "{engine:?}");
            assert_eq!(bd.to_bits(), pd.to_bits(), "{engine:?}");
        }
    }

    #[test]
    fn swap_remove_last_seed() {
        let mut s = grid_seeds();
        s.swap_remove(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.seed(0), &[0.0, 0.0]);
        assert_order_cache_consistent(&s);
    }

    #[test]
    fn swap_remove_repair_handles_duplicate_distance_ties() {
        // Duplicate seeds create exact distance ties everywhere; the
        // renamed seed (last → i) must re-splice to its (distance, index)
        // position, which the tie-break makes unique.
        let mut s = NearestSeeds::from_seeds(
            2,
            [
                [1.0, 1.0].as_slice(),
                [5.0, 5.0].as_slice(),
                [1.0, 1.0].as_slice(),
                [5.0, 5.0].as_slice(),
                [1.0, 1.0].as_slice(),
            ],
        );
        for removed in [0usize, 2, 1] {
            s.swap_remove(removed);
            assert_order_cache_consistent(&s);
            // The repaired cache must equal a from-scratch rebuild: the
            // sorted order with the (distance, index) tie-break is unique.
            for j in 0..s.len() {
                assert_eq!(
                    s.neighbor_order(j),
                    NearestSeeds::sorted_row(&s.pairwise, j).as_slice(),
                    "row {j} after removing {removed}"
                );
            }
        }
    }

    #[test]
    fn swap_remove_repair_touches_o_s_entries() {
        let n = 60;
        let seeds: Vec<[f64; 2]> = (0..n).map(|i| [f64::from(i), f64::from(i * i)]).collect();
        let mut s = NearestSeeds::from_seeds(2, seeds.iter().map(|p| p.as_slice()));
        let before = s.repair_stats();
        let mbefore = s.matrix_stats();
        s.swap_remove(7);
        let d = s.repair_stats();
        let md = s.matrix_stats();
        // Order cache: one removal + one re-splice per surviving row.
        assert_eq!(d.order_entries - before.order_entries, 2 * (n as u64 - 1));
        assert_eq!(
            d.order_naive_entries - before.order_naive_entries,
            (n as u64 - 1) * (n as u64 - 1)
        );
        assert_eq!(d.ops - before.ops, 1);
        // Matrix: one row copy + one column walk, not a rebuild.
        let written = md.entries_written - mbefore.entries_written;
        assert_eq!(written, (n + n - 1) as u64);
        assert!(written < (n * n) as u64 / 10, "O(s), nowhere near O(s²)");
    }

    #[test]
    fn batch_into_reuses_buffer_and_matches_batch() {
        let s = grid_seeds();
        let queries: Vec<f64> = (0..30)
            .flat_map(|i| {
                let t = f64::from(i);
                [(t * 0.61) % 11.0, (t * 0.23 + 5.0) % 11.0]
            })
            .collect();
        let mut out = vec![(99u32, -1.0f64); 3]; // stale junk must be cleared
        for engine in ENGINES {
            for par in [Parallelism::Serial, Parallelism::Threads(3)] {
                let mut stats = SearchStats::new();
                let want = s.nearest_batch(&queries, None, engine, None, par, &mut stats);
                let mut got_stats = SearchStats::new();
                s.nearest_batch_into(&queries, None, engine, None, par, &mut got_stats, &mut out);
                assert_eq!(out, want, "engine={engine:?} par={par:?}");
                assert_eq!(got_stats, stats, "engine={engine:?} par={par:?}");
            }
        }
    }

    #[test]
    fn order_cache_tracks_incremental_pushes() {
        let mut s = NearestSeeds::new(2);
        let pts = [
            [3.0, 1.0],
            [0.0, 0.0],
            [9.0, 9.0],
            [3.0, 1.0], // duplicate of seed 0
            [-2.0, 5.0],
            [4.0, 4.0],
        ];
        for p in &pts {
            s.push(p);
            assert_order_cache_consistent(&s);
        }
    }

    #[test]
    fn batch_matches_per_query_calls_in_every_mode() {
        let s = grid_seeds();
        let queries: Vec<f64> = (0..40)
            .flat_map(|i| {
                let t = i as f64;
                [t * 0.37 % 11.0, (t * 0.71 + 3.0) % 11.0]
            })
            .collect();
        // Cycle through every seed as a hint, with every fifth query unhinted.
        let hints: Vec<u32> = (0..40u32)
            .map(|i| if i % 5 == 4 { NO_HINT } else { i % 5 })
            .collect();
        for engine in ENGINES {
            for hint_buf in [None, Some(hints.as_slice())] {
                // Serial reference: one call per query.
                let mut want = Vec::new();
                let mut want_stats = SearchStats::new();
                for (qi, q) in queries.chunks_exact(2).enumerate() {
                    let hint = hint_buf.and_then(|h| (h[qi] != NO_HINT).then_some(h[qi] as usize));
                    let r = s.nearest(engine, q, None, hint, &mut want_stats).unwrap();
                    want.push((r.0 as u32, r.1));
                }
                for par in [
                    Parallelism::Serial,
                    Parallelism::Threads(2),
                    Parallelism::Threads(8),
                    Parallelism::Auto,
                ] {
                    let mut stats = SearchStats::new();
                    let got = s.nearest_batch(&queries, None, engine, hint_buf, par, &mut stats);
                    assert_eq!(got, want, "engine={engine:?} par={par:?}");
                    assert_eq!(stats, want_stats, "engine={engine:?} par={par:?}");
                }
            }
        }
    }

    #[test]
    fn batch_respects_exclusion() {
        let s = grid_seeds();
        let queries = [0.1, 0.1, 9.9, 9.9];
        for engine in ENGINES {
            let mut stats = SearchStats::new();
            let got = s.nearest_batch(
                &queries,
                Some(0),
                engine,
                None,
                Parallelism::Threads(2),
                &mut stats,
            );
            assert_eq!(got.len(), 2);
            assert_ne!(got[0].0, 0, "{engine:?}: excluded seed never wins");
        }
    }

    #[test]
    fn batch_empty_queries() {
        let s = grid_seeds();
        let mut stats = SearchStats::new();
        assert!(s
            .nearest_batch_brute(&[], None, Parallelism::Auto, &mut stats)
            .is_empty());
        assert_eq!(stats, SearchStats::new());
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn batch_ragged_buffer_panics() {
        let s = grid_seeds();
        let mut stats = SearchStats::new();
        let _ = s.nearest_batch_brute(&[1.0, 2.0, 3.0], None, Parallelism::Serial, &mut stats);
    }

    #[test]
    #[should_panic(expected = "one hint per query")]
    fn batch_misaligned_hints_panic() {
        let s = grid_seeds();
        let mut stats = SearchStats::new();
        let _ = s.nearest_batch(
            &[1.0, 2.0],
            None,
            SeedSearch::Pruned,
            Some(&[0, 1]),
            Parallelism::Serial,
            &mut stats,
        );
    }

    #[test]
    fn hint_does_not_change_result() {
        let s = grid_seeds();
        for engine in ENGINES {
            for hint in 0..4 {
                let mut stats = SearchStats::new();
                let (idx, d) = s
                    .nearest(engine, &[9.0, 9.5], None, Some(hint), &mut stats)
                    .unwrap();
                assert_eq!(idx, 3, "{engine:?} hint {hint}");
                assert!((d - dist(&[9.0, 9.5], &[10.0, 10.0])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn neighbor_order_starts_with_self_and_ranks_by_distance() {
        let s = grid_seeds();
        let row = s.neighbor_order(0);
        assert_eq!(row[0], 0);
        assert_eq!(row[3], 3, "diagonal neighbor is farthest from seed 0");
    }

    #[test]
    fn seed_search_parse_and_default() {
        assert_eq!(SeedSearch::parse("brute"), Some(SeedSearch::Brute));
        assert_eq!(SeedSearch::parse("PRUNED"), Some(SeedSearch::Pruned));
        assert_eq!(SeedSearch::parse(" kdtree "), Some(SeedSearch::KdTree));
        assert_eq!(SeedSearch::parse("kd"), Some(SeedSearch::KdTree));
        assert_eq!(SeedSearch::parse("kd-tree"), Some(SeedSearch::KdTree));
        assert_eq!(SeedSearch::parse("octree"), None);
        assert_eq!(SeedSearch::parse(""), None);
    }

    #[test]
    fn env_strict_distinguishes_unset_invalid_and_valid() {
        // The only test in this binary touching IDB_SEED_SEARCH, so the
        // set/restore sequence cannot race another thread.
        let saved = std::env::var("IDB_SEED_SEARCH").ok();
        std::env::remove_var("IDB_SEED_SEARCH");
        assert_eq!(SeedSearch::from_env_strict(), Ok(None));
        std::env::set_var("IDB_SEED_SEARCH", "kdtree");
        assert_eq!(SeedSearch::from_env_strict(), Ok(Some(SeedSearch::KdTree)));
        assert_eq!(SeedSearch::default(), SeedSearch::KdTree);
        std::env::set_var("IDB_SEED_SEARCH", "octree");
        let err = SeedSearch::from_env_strict().unwrap_err();
        assert_eq!(err.var, "IDB_SEED_SEARCH");
        assert_eq!(err.value, "octree");
        assert!(err.to_string().contains("expected"), "{err}");
        assert_eq!(SeedSearch::from_env(), None, "lenient view stays None");
        // The default warns (once, on stderr) and falls back — it must
        // never panic or silently pick a surprising engine.
        assert_eq!(SeedSearch::default(), SeedSearch::Pruned);
        match saved {
            Some(v) => std::env::set_var("IDB_SEED_SEARCH", v),
            None => std::env::remove_var("IDB_SEED_SEARCH"),
        }
    }
}
