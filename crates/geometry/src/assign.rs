//! Nearest-seed search with triangle-inequality pruning (paper, Section 3).
//!
//! Constructing data bubbles assigns every database point to its closest
//! seed. Lemma 1 of the paper lets us skip computing `dist(p, s_j)` whenever
//! `dist(s_c, s_j) >= 2 · dist(p, s_c)` for the current best candidate
//! `s_c`: the pairwise seed distances are precomputed once in a
//! [`SymMatrix`], and each skipped evaluation is recorded as *pruned* in the
//! caller's [`SearchStats`].
//!
//! [`NearestSeeds`] owns the seed coordinates (flat, contiguous) together
//! with their pairwise distance matrix and offers:
//!
//! * [`NearestSeeds::nearest_brute`] — the baseline that computes all `s`
//!   distances (what a standard implementation does);
//! * [`NearestSeeds::nearest_pruned`] — the Figure 2 algorithm;
//! * O(s) seed replacement ([`NearestSeeds::replace`]) used when a bubble is
//!   rebuilt by a merge/split, which refreshes one matrix row.

use crate::matrix::SymMatrix;
use crate::metric::dist;
use crate::parallel::{run_chunks_with_len, Parallelism};
use crate::stats::SearchStats;

/// A set of seed points plus their pairwise distance matrix.
///
/// Seeds are identified by dense indices `0..len()`; the incremental
/// maintainer keeps these indices aligned with its bubble ids.
///
/// # Examples
/// ```
/// use idb_geometry::{NearestSeeds, SearchStats};
///
/// let seeds = NearestSeeds::from_seeds(
///     1,
///     [[0.0].as_slice(), [10.0].as_slice(), [20.0].as_slice()],
/// );
/// let mut stats = SearchStats::new();
/// // Start from seed 0 (the hint): its distance is 1, and both other
/// // seeds are >= 2x that far from it, so the triangle inequality prunes
/// // them without ever measuring their distance to the query.
/// let (idx, d) = seeds.nearest_pruned(&[1.0], None, Some(0), &mut stats).unwrap();
/// assert_eq!(idx, 0);
/// assert_eq!(d, 1.0);
/// assert_eq!(stats.computed, 1);
/// assert_eq!(stats.pruned, 2);
/// ```
#[derive(Debug, Clone)]
pub struct NearestSeeds {
    dim: usize,
    coords: Vec<f64>,
    pairwise: SymMatrix,
}

impl NearestSeeds {
    /// Creates an empty seed set for points of dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "NearestSeeds requires dim > 0");
        Self {
            dim,
            coords: Vec::new(),
            pairwise: SymMatrix::zeros(0),
        }
    }

    /// Builds a seed set from an iterator of seed coordinates.
    ///
    /// # Panics
    /// Panics if any seed's dimensionality differs from `dim`.
    pub fn from_seeds<'a, I>(dim: usize, seeds: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut set = Self::new(dim);
        for s in seeds {
            set.push(s);
        }
        set
    }

    /// Dimensionality of the seeds.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of seeds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairwise.len()
    }

    /// `true` when the set holds no seeds.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinates of seed `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    #[must_use]
    pub fn seed(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Pairwise distance between seeds `i` and `j` as stored in the matrix.
    #[inline]
    #[must_use]
    pub fn pair_distance(&self, i: usize, j: usize) -> f64 {
        self.pairwise.get(i, j)
    }

    /// Appends a new seed, filling in its pairwise distance row, and returns
    /// its index.
    ///
    /// # Panics
    /// Panics if the seed's dimensionality differs from the set's.
    pub fn push(&mut self, seed: &[f64]) -> usize {
        assert_eq!(seed.len(), self.dim, "seed dimensionality mismatch");
        self.coords.extend_from_slice(seed);
        let idx = self.pairwise.push_row();
        let coords = &self.coords;
        let dim = self.dim;
        self.pairwise
            .refresh_row(idx, |j| dist(seed, &coords[j * dim..(j + 1) * dim]));
        idx
    }

    /// Replaces seed `i` with new coordinates, recomputing its pairwise
    /// distance row in O(s) — the bookkeeping the paper performs when a
    /// bubble is re-seeded during a merge/split rebuild.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds or the dimensionality differs.
    pub fn replace(&mut self, i: usize, seed: &[f64]) {
        assert_eq!(seed.len(), self.dim, "seed dimensionality mismatch");
        assert!(i < self.len(), "seed index out of bounds");
        self.coords[i * self.dim..(i + 1) * self.dim].copy_from_slice(seed);
        let coords = &self.coords;
        let dim = self.dim;
        self.pairwise
            .refresh_row(i, |j| dist(seed, &coords[j * dim..(j + 1) * dim]));
    }

    /// Removes seed `i` with swap-remove semantics: the last seed takes
    /// index `i`. The pairwise matrix follows. O(s²); used only when a
    /// bubble is retired by the adaptive maintenance extension.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn swap_remove(&mut self, i: usize) {
        let s = self.len();
        assert!(i < s, "seed index out of bounds");
        let last = s - 1;
        if i != last {
            let (head, tail) = self.coords.split_at_mut(last * self.dim);
            head[i * self.dim..(i + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
        }
        self.coords.truncate(last * self.dim);
        self.pairwise.swap_remove(i);
    }

    /// Brute-force nearest seed: computes the distance from `p` to every
    /// seed (optionally skipping `exclude`). Returns `(index, distance)`,
    /// or `None` when no candidate exists.
    ///
    /// Every evaluated distance is charged to `stats.computed`.
    pub fn nearest_brute(
        &self,
        p: &[f64],
        exclude: Option<usize>,
        stats: &mut SearchStats,
    ) -> Option<(usize, f64)> {
        debug_assert_eq!(p.len(), self.dim, "query dimensionality mismatch");
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.len() {
            if Some(i) == exclude {
                continue;
            }
            let d = dist(p, self.seed(i));
            stats.computed += 1;
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((i, d)),
            }
        }
        best
    }

    /// Nearest seed via the triangle-inequality algorithm of Figure 2.
    ///
    /// `hint`, when given, is used as the initial candidate seed — a caller
    /// that suspects a nearby seed (e.g. the bubble a point used to belong
    /// to) can seed the search with it to maximize pruning. `exclude` removes
    /// one seed from consideration (used when releasing the members of a
    /// merged-away donor bubble, which must not re-attract its own points).
    ///
    /// Computed distances are charged to `stats.computed`; candidates
    /// eliminated by Lemma 1 are charged to `stats.pruned`. The result is
    /// identical to [`Self::nearest_brute`] up to ties.
    ///
    /// This variant allocates a candidate scratch buffer; the zero-allocation
    /// version is [`Self::nearest_pruned_with`].
    pub fn nearest_pruned(
        &self,
        p: &[f64],
        exclude: Option<usize>,
        hint: Option<usize>,
        stats: &mut SearchStats,
    ) -> Option<(usize, f64)> {
        let mut scratch = Vec::new();
        self.nearest_pruned_with(p, exclude, hint, stats, &mut scratch)
    }

    /// [`Self::nearest_pruned`] with a caller-owned scratch buffer, so the
    /// per-point assignment loop performs no heap allocation.
    pub fn nearest_pruned_with(
        &self,
        p: &[f64],
        exclude: Option<usize>,
        hint: Option<usize>,
        stats: &mut SearchStats,
        scratch: &mut Vec<u32>,
    ) -> Option<(usize, f64)> {
        debug_assert_eq!(p.len(), self.dim, "query dimensionality mismatch");
        let s = self.len();
        scratch.clear();
        scratch.reserve(s);

        // Initial candidate: the hint when valid, otherwise the last seed
        // (so the remaining candidates can be popped from the back).
        let start = match (hint, exclude) {
            (Some(h), e) if h < s && Some(h) != e => h,
            _ => {
                let mut chosen = None;
                for i in (0..s).rev() {
                    if Some(i) != exclude {
                        chosen = Some(i);
                        break;
                    }
                }
                chosen?
            }
        };
        for i in 0..s {
            if i != start && Some(i) != exclude {
                scratch.push(i as u32);
            }
        }

        let mut cur = start;
        let mut min_d = dist(p, self.seed(cur));
        stats.computed += 1;

        loop {
            // Prune every remaining candidate that Lemma 1 rules out with
            // respect to the current best candidate.
            let row = self.pairwise.row(cur);
            let before = scratch.len();
            scratch.retain(|&j| row[j as usize] < 2.0 * min_d);
            stats.pruned += (before - scratch.len()) as u64;

            // The next surviving candidate must have its distance computed.
            let Some(j) = scratch.pop() else {
                return Some((cur, min_d));
            };
            let j = j as usize;
            let d = dist(p, self.seed(j));
            stats.computed += 1;
            if d < min_d {
                cur = j;
                min_d = d;
            }
        }
    }

    /// Nearest seed for every query in a flat `queries` buffer
    /// (`queries.len()` must be a multiple of `dim`), via brute force.
    /// Returns `(seed index, distance)` per query, aligned with query
    /// order.
    ///
    /// Work is fanned out per [`Parallelism`]: queries are split into
    /// contiguous chunks, each chunk runs the identical per-query search
    /// with its own [`SearchStats`] counter, and the per-chunk counters
    /// are summed into `stats` in chunk order — so the counts (and every
    /// result) are bit-identical to a serial loop over the same queries.
    ///
    /// # Panics
    /// Panics if `queries.len()` is not a multiple of `dim`, or if there
    /// are queries but no eligible seed.
    pub fn nearest_batch_brute(
        &self,
        queries: &[f64],
        exclude: Option<usize>,
        par: Parallelism,
        stats: &mut SearchStats,
    ) -> Vec<(u32, f64)> {
        self.nearest_batch(queries, exclude, false, par, stats)
    }

    /// [`Self::nearest_batch_brute`] with the triangle-inequality search
    /// of Figure 2 instead of brute force. Same chunking, same counter
    /// merging, same equivalence guarantee.
    ///
    /// # Panics
    /// Panics if `queries.len()` is not a multiple of `dim`, or if there
    /// are queries but no eligible seed.
    pub fn nearest_batch_pruned(
        &self,
        queries: &[f64],
        exclude: Option<usize>,
        par: Parallelism,
        stats: &mut SearchStats,
    ) -> Vec<(u32, f64)> {
        self.nearest_batch(queries, exclude, true, par, stats)
    }

    fn nearest_batch(
        &self,
        queries: &[f64],
        exclude: Option<usize>,
        pruned: bool,
        par: Parallelism,
        stats: &mut SearchStats,
    ) -> Vec<(u32, f64)> {
        assert_eq!(
            queries.len() % self.dim,
            0,
            "query buffer length must be a multiple of dim"
        );
        let k = queries.len() / self.dim;
        if k == 0 {
            return Vec::new();
        }
        // Chunk length in *points*, rounded so no query is split.
        let chunk_points = k.div_ceil(par.effective_threads());
        let per_chunk = run_chunks_with_len(queries, chunk_points * self.dim, |chunk| {
            let mut local = SearchStats::new();
            let mut scratch = Vec::new();
            let out: Vec<(u32, f64)> = chunk
                .chunks_exact(self.dim)
                .map(|q| {
                    let (i, d) = if pruned {
                        self.nearest_pruned_with(q, exclude, None, &mut local, &mut scratch)
                    } else {
                        self.nearest_brute(q, exclude, &mut local)
                    }
                    .expect("batch assignment requires at least one eligible seed");
                    (i as u32, d)
                })
                .collect();
            (out, local)
        });
        let mut results = Vec::with_capacity(k);
        for (chunk_results, chunk_stats) in per_chunk {
            results.extend(chunk_results);
            *stats += chunk_stats;
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_seeds() -> NearestSeeds {
        // Four seeds on a 2-d grid, well separated.
        NearestSeeds::from_seeds(
            2,
            [
                [0.0, 0.0].as_slice(),
                [10.0, 0.0].as_slice(),
                [0.0, 10.0].as_slice(),
                [10.0, 10.0].as_slice(),
            ],
        )
    }

    #[test]
    fn pairwise_matrix_filled_on_push() {
        let s = grid_seeds();
        assert_eq!(s.len(), 4);
        assert!((s.pair_distance(0, 1) - 10.0).abs() < 1e-12);
        assert!((s.pair_distance(0, 3) - 200f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.pair_distance(2, 2), 0.0);
    }

    #[test]
    fn brute_and_pruned_agree() {
        let s = grid_seeds();
        let queries = [
            [1.0, 1.0],
            [9.0, 1.0],
            [2.0, 9.0],
            [8.5, 8.5],
            [5.0, 5.0],
            [-3.0, -4.0],
        ];
        for q in &queries {
            let mut b = SearchStats::new();
            let mut t = SearchStats::new();
            let (bi, bd) = s.nearest_brute(q, None, &mut b).unwrap();
            let (ti, td) = s.nearest_pruned(q, None, None, &mut t).unwrap();
            assert!((bd - td).abs() < 1e-12);
            // Ties could pick different indices; for these queries there are
            // no ties except the exact center, where distance equality holds.
            if (q[0] - 5.0).abs() > 1e-9 || (q[1] - 5.0).abs() > 1e-9 {
                assert_eq!(bi, ti, "query {q:?}");
            }
            assert_eq!(t.total(), b.computed, "pruned+computed == brute cost");
        }
    }

    #[test]
    fn pruning_actually_happens_near_a_seed() {
        let s = grid_seeds();
        let mut stats = SearchStats::new();
        // A point almost on seed 0: every other seed is >= 10 away, i.e.
        // >= 2 * dist(p, s0), so all three must be pruned after one
        // distance computation when starting from seed 0.
        let (idx, _) = s
            .nearest_pruned(&[0.1, 0.1], None, Some(0), &mut stats)
            .unwrap();
        assert_eq!(idx, 0);
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.pruned, 3);
    }

    #[test]
    fn exclusion_is_respected() {
        let s = grid_seeds();
        let mut stats = SearchStats::new();
        let (idx, d) = s
            .nearest_pruned(&[0.1, 0.1], Some(0), None, &mut stats)
            .unwrap();
        assert_ne!(idx, 0);
        // Next closest are seeds 1 and 2, symmetric; distance ~ 9.9.
        assert!(d > 9.0 && d < 11.0);

        let mut stats = SearchStats::new();
        let (bidx, bd) = s.nearest_brute(&[0.1, 0.1], Some(0), &mut stats).unwrap();
        assert_ne!(bidx, 0);
        assert!((bd - d).abs() < 1e-12);
    }

    #[test]
    fn empty_set_returns_none() {
        let s = NearestSeeds::new(3);
        let mut stats = SearchStats::new();
        assert!(s
            .nearest_brute(&[0.0, 0.0, 0.0], None, &mut stats)
            .is_none());
        assert!(s
            .nearest_pruned(&[0.0, 0.0, 0.0], None, None, &mut stats)
            .is_none());
    }

    #[test]
    fn single_seed_excluded_returns_none() {
        let mut s = NearestSeeds::new(1);
        s.push(&[5.0]);
        let mut stats = SearchStats::new();
        assert!(s
            .nearest_pruned(&[0.0], Some(0), None, &mut stats)
            .is_none());
    }

    #[test]
    fn replace_updates_matrix_and_results() {
        let mut s = grid_seeds();
        // Move seed 3 next to the origin.
        s.replace(3, &[0.5, 0.5]);
        assert!((s.pair_distance(3, 0) - 0.5f64.sqrt()).abs() < 1e-12);
        let mut stats = SearchStats::new();
        let (idx, _) = s
            .nearest_pruned(&[0.6, 0.6], None, None, &mut stats)
            .unwrap();
        assert_eq!(idx, 3);
    }

    #[test]
    fn swap_remove_keeps_matrix_consistent() {
        let mut s = grid_seeds();
        s.swap_remove(1); // seed (10, 0) removed; (10, 10) takes index 1
        assert_eq!(s.len(), 3);
        assert_eq!(s.seed(1), &[10.0, 10.0]);
        for i in 0..3 {
            for j in 0..3 {
                let expect = dist(s.seed(i), s.seed(j));
                assert!((s.pair_distance(i, j) - expect).abs() < 1e-12, "({i},{j})");
            }
        }
        // Searches still agree with brute force.
        let mut b = SearchStats::new();
        let mut p = SearchStats::new();
        let q = [9.0, 9.0];
        let (bi, bd) = s.nearest_brute(&q, None, &mut b).unwrap();
        let (pi, pd) = s.nearest_pruned(&q, None, None, &mut p).unwrap();
        assert_eq!(bi, pi);
        assert!((bd - pd).abs() < 1e-12);
    }

    #[test]
    fn swap_remove_last_seed() {
        let mut s = grid_seeds();
        s.swap_remove(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.seed(0), &[0.0, 0.0]);
    }

    #[test]
    fn batch_matches_per_query_calls_in_every_mode() {
        let s = grid_seeds();
        let queries: Vec<f64> = (0..40)
            .flat_map(|i| {
                let t = i as f64;
                [t * 0.37 % 11.0, (t * 0.71 + 3.0) % 11.0]
            })
            .collect();
        for pruned in [false, true] {
            // Serial reference: one call per query.
            let mut want = Vec::new();
            let mut want_stats = SearchStats::new();
            for q in queries.chunks_exact(2) {
                let r = if pruned {
                    s.nearest_pruned(q, None, None, &mut want_stats)
                } else {
                    s.nearest_brute(q, None, &mut want_stats)
                }
                .unwrap();
                want.push((r.0 as u32, r.1));
            }
            for par in [
                Parallelism::Serial,
                Parallelism::Threads(2),
                Parallelism::Threads(8),
                Parallelism::Auto,
            ] {
                let mut stats = SearchStats::new();
                let got = if pruned {
                    s.nearest_batch_pruned(&queries, None, par, &mut stats)
                } else {
                    s.nearest_batch_brute(&queries, None, par, &mut stats)
                };
                assert_eq!(got, want, "pruned={pruned} par={par:?}");
                assert_eq!(stats, want_stats, "pruned={pruned} par={par:?}");
            }
        }
    }

    #[test]
    fn batch_respects_exclusion() {
        let s = grid_seeds();
        let queries = [0.1, 0.1, 9.9, 9.9];
        let mut stats = SearchStats::new();
        let got = s.nearest_batch_pruned(&queries, Some(0), Parallelism::Threads(2), &mut stats);
        assert_eq!(got.len(), 2);
        assert_ne!(got[0].0, 0, "excluded seed never wins");
    }

    #[test]
    fn batch_empty_queries() {
        let s = grid_seeds();
        let mut stats = SearchStats::new();
        assert!(s
            .nearest_batch_brute(&[], None, Parallelism::Auto, &mut stats)
            .is_empty());
        assert_eq!(stats, SearchStats::new());
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn batch_ragged_buffer_panics() {
        let s = grid_seeds();
        let mut stats = SearchStats::new();
        let _ = s.nearest_batch_brute(&[1.0, 2.0, 3.0], None, Parallelism::Serial, &mut stats);
    }

    #[test]
    fn hint_does_not_change_result() {
        let s = grid_seeds();
        for hint in 0..4 {
            let mut stats = SearchStats::new();
            let (idx, d) = s
                .nearest_pruned(&[9.0, 9.5], None, Some(hint), &mut stats)
                .unwrap();
            assert_eq!(idx, 3);
            assert!((d - dist(&[9.0, 9.5], &[10.0, 10.0])).abs() < 1e-12);
        }
    }
}
