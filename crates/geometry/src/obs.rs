//! Bridges the per-query [`SearchStats`](crate::stats::SearchStats)
//! accounting into the shared metrics registry.
//!
//! The assignment engines already produce the paper's Figure 8–10
//! currency — computed / pruned / partially-evaluated candidate counts —
//! through caller-owned [`SearchStats`] accumulators, with per-worker
//! copies merged in chunk order by the parallel batch driver. This module
//! turns those numbers into named registry metrics, one family per
//! engine, so long-running deployments can watch them without threading
//! accumulators around:
//!
//! ```text
//! assign.<engine>.queries    nearest-seed searches answered
//! assign.<engine>.computed   full distance evaluations
//! assign.<engine>.pruned     candidates eliminated without a read
//! assign.<engine>.partial    evaluations abandoned by the early-exit kernel
//! assign.<engine>.search_us  latency histogram of instrumented phases
//! ```
//!
//! Counter values inherit the bit-identity guarantee of the underlying
//! accounting: they are identical under `Parallelism::Serial` and
//! `Parallelism::Threads(n)`. The latency histogram is wall-clock and is
//! excluded from that contract.

use crate::stats::SearchStats;
use idb_obs::{Counter, Histogram, MetricsRegistry};

/// Registry handles for one assignment engine's search metrics.
#[derive(Debug, Clone)]
pub struct SearchMetrics {
    queries: Counter,
    computed: Counter,
    pruned: Counter,
    partial: Counter,
    latency: Histogram,
}

impl SearchMetrics {
    /// Looks up (creating on first use) the metric family
    /// `assign.<engine>.*` in `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry, engine: &str) -> Self {
        let name = |suffix: &str| format!("assign.{engine}.{suffix}");
        SearchMetrics {
            queries: registry.counter(&name("queries")),
            computed: registry.counter(&name("computed")),
            pruned: registry.counter(&name("pruned")),
            partial: registry.counter(&name("partial")),
            latency: registry.histogram(&name("search_us")),
        }
    }

    /// Folds one instrumented phase into the registry: `queries` searches
    /// whose accounting delta is `delta`, taking `us` microseconds of
    /// wall-clock.
    pub fn observe(&self, queries: u64, delta: &SearchStats, us: u64) {
        self.queries.add(queries);
        self.computed.add(delta.computed);
        self.pruned.add(delta.pruned);
        self.partial.add(delta.partial);
        self.latency.record(us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observes_deltas_into_named_counters() {
        let registry = MetricsRegistry::new();
        let m = SearchMetrics::register(&registry, "pruned");
        let mut acc = SearchStats::new();
        let before = acc;
        acc.computed += 5;
        acc.pruned += 20;
        acc.partial += 3;
        m.observe(7, &acc.delta_since(&before), 42);
        let counters = registry.counters();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(get("assign.pruned.queries"), 7);
        assert_eq!(get("assign.pruned.computed"), 5);
        assert_eq!(get("assign.pruned.pruned"), 20);
        assert_eq!(get("assign.pruned.partial"), 3);
        assert_eq!(registry.histogram("assign.pruned.search_us").count(), 1);
    }

    #[test]
    fn registering_twice_shares_the_same_cells() {
        let registry = MetricsRegistry::new();
        let a = SearchMetrics::register(&registry, "brute");
        let b = SearchMetrics::register(&registry, "brute");
        a.observe(1, &SearchStats::new(), 0);
        b.observe(2, &SearchStats::new(), 0);
        let counters = registry.counters();
        let q = counters
            .iter()
            .find(|(n, _)| n == "assign.brute.queries")
            .unwrap();
        assert_eq!(q.1, 3);
    }
}
