//! Bridges the per-query [`SearchStats`](crate::stats::SearchStats)
//! accounting into the shared metrics registry.
//!
//! The assignment engines already produce the paper's Figure 8–10
//! currency — computed / pruned / partially-evaluated candidate counts —
//! through caller-owned [`SearchStats`] accumulators, with per-worker
//! copies merged in chunk order by the parallel batch driver. This module
//! turns those numbers into named registry metrics, one family per
//! engine, so long-running deployments can watch them without threading
//! accumulators around:
//!
//! ```text
//! assign.<engine>.queries    nearest-seed searches answered
//! assign.<engine>.computed   full distance evaluations
//! assign.<engine>.pruned     candidates eliminated without a read
//! assign.<engine>.partial    evaluations abandoned by the early-exit kernel
//! assign.<engine>.search_us  latency histogram of instrumented phases
//! ```
//!
//! Counter values inherit the bit-identity guarantee of the underlying
//! accounting: they are identical under `Parallelism::Serial` and
//! `Parallelism::Threads(n)`. The latency histogram is wall-clock and is
//! excluded from that contract.

use crate::assign::RepairStats;
use crate::matrix::MatrixStats;
use crate::stats::SearchStats;
use idb_obs::{Counter, Histogram, MetricsRegistry};

/// Registry handles for one assignment engine's search metrics.
#[derive(Debug, Clone)]
pub struct SearchMetrics {
    queries: Counter,
    computed: Counter,
    pruned: Counter,
    partial: Counter,
    latency: Histogram,
}

impl SearchMetrics {
    /// Looks up (creating on first use) the metric family
    /// `assign.<engine>.*` in `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry, engine: &str) -> Self {
        let name = |suffix: &str| format!("assign.{engine}.{suffix}");
        SearchMetrics {
            queries: registry.counter(&name("queries")),
            computed: registry.counter(&name("computed")),
            pruned: registry.counter(&name("pruned")),
            partial: registry.counter(&name("partial")),
            latency: registry.histogram(&name("search_us")),
        }
    }

    /// Folds one instrumented phase into the registry: `queries` searches
    /// whose accounting delta is `delta`, taking `us` microseconds of
    /// wall-clock.
    pub fn observe(&self, queries: u64, delta: &SearchStats, us: u64) {
        self.queries.add(queries);
        self.computed.add(delta.computed);
        self.pruned.add(delta.pruned);
        self.partial.add(delta.partial);
        self.latency.record(us);
    }
}

/// Registry handles for the seed-set structural-repair metrics
/// (DESIGN.md §15): how much matrix and order-cache work the incremental
/// repair paths actually performed versus what eager per-mutation rebuilds
/// would have cost.
///
/// ```text
/// repair.<engine>.ops            structural seed mutations (push/replace/remove)
/// repair.<engine>.matrix_writes  pairwise-matrix f64 stores performed
/// repair.<engine>.matrix_naive   stores an eager full rebuild would perform
/// repair.<engine>.order_writes   order-cache slots spliced or rebuilt
/// repair.<engine>.order_naive    slots a full per-mutation re-sort would touch
/// ```
///
/// Like [`SearchMetrics`], values inherit the bit-identity guarantee: the
/// mutators run on the single thread driving the maintainer, so counts are
/// identical under every [`Parallelism`](crate::Parallelism) mode.
#[derive(Debug, Clone)]
pub struct RepairMetrics {
    ops: Counter,
    matrix_writes: Counter,
    matrix_naive: Counter,
    order_writes: Counter,
    order_naive: Counter,
}

impl RepairMetrics {
    /// Looks up (creating on first use) the metric family
    /// `repair.<engine>.*` in `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry, engine: &str) -> Self {
        let name = |suffix: &str| format!("repair.{engine}.{suffix}");
        RepairMetrics {
            ops: registry.counter(&name("ops")),
            matrix_writes: registry.counter(&name("matrix_writes")),
            matrix_naive: registry.counter(&name("matrix_naive")),
            order_writes: registry.counter(&name("order_writes")),
            order_naive: registry.counter(&name("order_naive")),
        }
    }

    /// Folds one structural phase into the registry: the matrix and
    /// order-cache accounting deltas accumulated across its mutations.
    pub fn observe(&self, matrix: &MatrixStats, repair: &RepairStats) {
        self.ops.add(repair.ops);
        self.matrix_writes.add(matrix.entries_written);
        self.matrix_naive.add(matrix.naive_entries);
        self.order_writes.add(repair.order_entries);
        self.order_naive.add(repair.order_naive_entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observes_deltas_into_named_counters() {
        let registry = MetricsRegistry::new();
        let m = SearchMetrics::register(&registry, "pruned");
        let mut acc = SearchStats::new();
        let before = acc;
        acc.computed += 5;
        acc.pruned += 20;
        acc.partial += 3;
        m.observe(7, &acc.delta_since(&before), 42);
        let counters = registry.counters();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(get("assign.pruned.queries"), 7);
        assert_eq!(get("assign.pruned.computed"), 5);
        assert_eq!(get("assign.pruned.pruned"), 20);
        assert_eq!(get("assign.pruned.partial"), 3);
        assert_eq!(registry.histogram("assign.pruned.search_us").count(), 1);
    }

    #[test]
    fn registering_twice_shares_the_same_cells() {
        let registry = MetricsRegistry::new();
        let a = SearchMetrics::register(&registry, "brute");
        let b = SearchMetrics::register(&registry, "brute");
        a.observe(1, &SearchStats::new(), 0);
        b.observe(2, &SearchStats::new(), 0);
        let counters = registry.counters();
        let q = counters
            .iter()
            .find(|(n, _)| n == "assign.brute.queries")
            .unwrap();
        assert_eq!(q.1, 3);
    }

    #[test]
    fn repair_metrics_fold_deltas_into_named_counters() {
        let registry = MetricsRegistry::new();
        let m = RepairMetrics::register(&registry, "pruned");
        let matrix = MatrixStats {
            entries_written: 11,
            naive_entries: 400,
            relayouts: 1,
        };
        let repair = RepairStats {
            order_entries: 9,
            order_naive_entries: 100,
            ops: 3,
        };
        m.observe(&matrix, &repair);
        let counters = registry.counters();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(get("repair.pruned.ops"), 3);
        assert_eq!(get("repair.pruned.matrix_writes"), 11);
        assert_eq!(get("repair.pruned.matrix_naive"), 400);
        assert_eq!(get("repair.pruned.order_writes"), 9);
        assert_eq!(get("repair.pruned.order_naive"), 100);
    }
}
