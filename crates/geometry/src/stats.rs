//! Accounting of distance computations.
//!
//! The paper evaluates the triangle-inequality optimization (Figure 10) and
//! the incremental-vs-rebuild speedup (Figure 11) in terms of *distance
//! computations performed* and *distance computations pruned*. Every search
//! routine in this workspace therefore threads a mutable [`SearchStats`]
//! accumulator through its hot loop, so the experiment harness can report
//! exactly the quantities the paper plots.

use std::ops::AddAssign;

/// Counter of point-to-seed distance computations performed and avoided.
///
/// `computed` counts full Euclidean distance evaluations between a query
/// point and a candidate seed. `pruned` counts candidate seeds that were
/// eliminated — by the triangle inequality (Lemma 1) or a k-d subtree cut —
/// *without* touching their coordinates at all. `partial` counts candidates
/// whose evaluation was started but abandoned early by the bounded kernel
/// ([`sq_dist_bounded`](crate::metric::sq_dist_bounded)) once the running
/// sum proved them worse than the current best. Every candidate a search
/// considers lands in exactly one bucket, so
/// `computed + pruned + partial` equals the number of full distance
/// computations a brute-force search would have performed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Point–seed distances evaluated to full dimensionality.
    pub computed: u64,
    /// Point–seed distances avoided entirely (triangle inequality or
    /// k-d subtree cut): the candidate's coordinates were never read.
    pub pruned: u64,
    /// Point–seed distance evaluations abandoned partway by the early-exit
    /// kernel: some axes were accumulated, then the candidate was rejected.
    pub partial: u64,
}

impl SearchStats {
    /// A fresh, zeroed accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total candidates considered (`computed + pruned + partial`); equals
    /// the cost of the brute-force baseline on the same queries.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.computed + self.pruned + self.partial
    }

    /// Fraction of candidate distances that were pruned outright, in
    /// `[0, 1]` — the quantity Figure 10 of the paper plots. Partial
    /// evaluations count toward the denominator but not the numerator, so
    /// the value stays a conservative lower bound on the avoided work.
    ///
    /// Returns `0.0` when no candidate was considered at all, so the value
    /// is always finite.
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.pruned as f64 / total as f64
        }
    }

    /// Fraction of candidates whose full-dimensionality evaluation was
    /// avoided (`(pruned + partial) / total`), in `[0, 1]`: the combined
    /// effect of Lemma 1 pruning and the early-exit kernel.
    ///
    /// Returns `0.0` when no candidate was considered at all.
    #[must_use]
    pub fn avoided_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.pruned + self.partial) as f64 / total as f64
        }
    }

    /// Resets all counters to zero, keeping the allocation-free value type
    /// reusable across experiment phases.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// The counter deltas accumulated since `before` was snapshotted —
    /// how instrumented phases attribute search work to one operation on
    /// a long-lived accumulator.
    ///
    /// # Panics
    /// Panics (in debug builds) if `before` is not an earlier snapshot of
    /// this accumulator; counters are monotonic.
    #[must_use]
    pub fn delta_since(&self, before: &SearchStats) -> SearchStats {
        debug_assert!(
            self.computed >= before.computed
                && self.pruned >= before.pruned
                && self.partial >= before.partial,
            "delta_since requires an earlier snapshot of the same accumulator"
        );
        SearchStats {
            computed: self.computed - before.computed,
            pruned: self.pruned - before.pruned,
            partial: self.partial - before.partial,
        }
    }
}

impl AddAssign for SearchStats {
    fn add_assign(&mut self, rhs: Self) {
        self.computed += rhs.computed;
        self.pruned += rhs.pruned;
        self.partial += rhs.partial;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = SearchStats::new();
        assert_eq!(s.computed, 0);
        assert_eq!(s.pruned, 0);
        assert_eq!(s.partial, 0);
        assert_eq!(s.total(), 0);
        assert_eq!(s.pruned_fraction(), 0.0);
        assert_eq!(s.avoided_fraction(), 0.0);
    }

    #[test]
    fn pruned_fraction_is_ratio_of_total() {
        let s = SearchStats {
            computed: 15,
            pruned: 75,
            partial: 10,
        };
        assert_eq!(s.total(), 100);
        assert!((s.pruned_fraction() - 0.75).abs() < 1e-12);
        assert!((s.avoided_fraction() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = SearchStats {
            computed: 1,
            pruned: 2,
            partial: 3,
        };
        a += SearchStats {
            computed: 10,
            pruned: 20,
            partial: 30,
        };
        assert_eq!(
            a,
            SearchStats {
                computed: 11,
                pruned: 22,
                partial: 33,
            }
        );
    }

    #[test]
    fn reset_zeroes() {
        let mut s = SearchStats {
            computed: 5,
            pruned: 7,
            partial: 9,
        };
        s.reset();
        assert_eq!(s, SearchStats::default());
    }
}
