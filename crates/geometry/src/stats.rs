//! Accounting of distance computations.
//!
//! The paper evaluates the triangle-inequality optimization (Figure 10) and
//! the incremental-vs-rebuild speedup (Figure 11) in terms of *distance
//! computations performed* and *distance computations pruned*. Every search
//! routine in this workspace therefore threads a mutable [`SearchStats`]
//! accumulator through its hot loop, so the experiment harness can report
//! exactly the quantities the paper plots.

use std::ops::AddAssign;

/// Counter of point-to-seed distance computations performed and avoided.
///
/// `computed` counts actual Euclidean distance evaluations between a query
/// point and a candidate seed. `pruned` counts candidate seeds that were
/// eliminated by the triangle inequality (Lemma 1) *without* computing their
/// distance to the query point. `computed + pruned` equals the number of
/// distance computations a brute-force search would have performed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Point–seed distances actually evaluated.
    pub computed: u64,
    /// Point–seed distances avoided via the triangle inequality.
    pub pruned: u64,
}

impl SearchStats {
    /// A fresh, zeroed accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total candidates considered (`computed + pruned`); equals the cost of
    /// the brute-force baseline on the same queries.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.computed + self.pruned
    }

    /// Fraction of candidate distances that were pruned, in `[0, 1]`.
    ///
    /// Returns `0.0` when no candidate was considered at all, so the value
    /// is always finite.
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.pruned as f64 / total as f64
        }
    }

    /// Resets both counters to zero, keeping the allocation-free value type
    /// reusable across experiment phases.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl AddAssign for SearchStats {
    fn add_assign(&mut self, rhs: Self) {
        self.computed += rhs.computed;
        self.pruned += rhs.pruned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = SearchStats::new();
        assert_eq!(s.computed, 0);
        assert_eq!(s.pruned, 0);
        assert_eq!(s.total(), 0);
        assert_eq!(s.pruned_fraction(), 0.0);
    }

    #[test]
    fn pruned_fraction_is_ratio_of_total() {
        let s = SearchStats {
            computed: 25,
            pruned: 75,
        };
        assert_eq!(s.total(), 100);
        assert!((s.pruned_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = SearchStats {
            computed: 1,
            pruned: 2,
        };
        a += SearchStats {
            computed: 10,
            pruned: 20,
        };
        assert_eq!(
            a,
            SearchStats {
                computed: 11,
                pruned: 22
            }
        );
    }

    #[test]
    fn reset_zeroes() {
        let mut s = SearchStats {
            computed: 5,
            pruned: 7,
        };
        s.reset();
        assert_eq!(s, SearchStats::default());
    }
}
