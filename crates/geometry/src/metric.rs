//! Euclidean distance kernels.
//!
//! All coordinates in the workspace are `f64` and points of one dataset share
//! a fixed dimensionality, so the kernels take plain slices. The slice
//! lengths are checked with `debug_assert!` only: the callers (stores, seed
//! sets, trees) guarantee consistent dimensionality by construction, and the
//! kernels sit on the innermost loops of every algorithm in the workspace.
//!
//! # The canonical accumulation order
//!
//! Every distance in the workspace flows through the kernels in this module,
//! and they all share one **fixed, platform-independent accumulation order**
//! (DESIGN.md §15): lanes are consumed in blocks of four, each block feeding
//! four *independent* accumulators
//!
//! ```text
//! acc[j] += (a[4k + j] - b[4k + j])²      j ∈ {0, 1, 2, 3}
//! ```
//!
//! with the `d mod 4` remainder lanes feeding `acc[0..r]` in lane order, and
//! the final value produced by the deterministic tree reduction
//! `(acc0 + acc1) + (acc2 + acc3)`. The four accumulators carry independent
//! dependency chains, so the loop autovectorizes (and otherwise pipelines)
//! without `-ffast-math`-style reassociation — the compiler never has to
//! reorder floating-point additions because the source order *is* the fast
//! order. The result is therefore bit-identical across optimization levels
//! and `target-cpu` flags (ci.sh proves this with a guarded
//! `-C target-cpu=native` test pass), which is what keeps engines ×
//! parallelism × shards bit-identical to each other.
//!
//! For `d ≤ 3` the tree reduction degenerates to the plain left-to-right sum
//! (adding `+0.0` is exact), so low-dimensional values match the historical
//! scalar kernel bit for bit; for `d ≥ 4` the values differ in rounding from
//! the pre-PR-8 scalar kernel, which is why the differential suites were
//! re-baselined exactly once when this kernel became canonical (see the
//! re-baseline policy in DESIGN.md §15).
//!
//! The [`scalar`] submodule keeps the historical sequential kernels as an
//! explicit baseline for benchmarks ([`kernel_report`]) and as an independent
//! implementation for the property suite to fuzz against.
//!
//! [`kernel_report`]: ../../idb_bench/index.html

/// Squared Euclidean distance between two points, in the canonical 4-lane
/// accumulation order.
///
/// Preferred over [`dist`] wherever only comparisons are needed (k-d tree
/// descent, compactness accumulation) because it avoids the square root.
///
/// # Examples
/// ```
/// use idb_geometry::metric::sq_dist;
/// assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
/// ```
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
    }
    for (k, (&x, &y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        let d = x - y;
        match k {
            0 => acc0 += d * d,
            1 => acc1 += d * d,
            _ => acc2 += d * d,
        }
    }
    (acc0 + acc1) + (acc2 + acc3)
}

/// Euclidean distance between two points.
///
/// # Examples
/// ```
/// use idb_geometry::metric::dist;
/// assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
/// ```
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Early-exit squared Euclidean distance: abandons the accumulation as soon
/// as the running sum at a 4-lane block boundary exceeds `bound` and returns
/// `None`; otherwise returns `Some(sq_dist(a, b))`.
///
/// The per-lane terms are non-negative and IEEE-754 round-to-nearest
/// addition of non-negative terms is monotone non-decreasing, so every
/// block-boundary tree reduction is `<=` the final reduction. Whenever the
/// canonical squared distance is `<= bound` no intermediate check can fire,
/// the accumulation — in exactly the [`sq_dist`] order — runs to completion,
/// and the value is bit-identical to the unbounded kernel. A `None`
/// therefore *proves* `sq_dist(a, b) > bound`.
///
/// This is the innermost kernel of the nearest-seed engines: a candidate
/// seed that cannot beat the current best is rejected after a handful of
/// blocks instead of all `d` lanes, which the caller accounts as a *partial*
/// evaluation in [`SearchStats`](crate::stats::SearchStats).
///
/// # Examples
/// ```
/// use idb_geometry::metric::{sq_dist, sq_dist_bounded};
/// let (a, b) = ([0.0, 0.0], [3.0, 4.0]);
/// assert_eq!(sq_dist_bounded(&a, &b, 25.0), Some(sq_dist(&a, &b)));
/// assert_eq!(sq_dist_bounded(&a, &b, 24.9), None);
/// ```
#[inline]
pub fn sq_dist_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
        if (acc0 + acc1) + (acc2 + acc3) > bound {
            return None;
        }
    }
    for (k, (&x, &y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        let d = x - y;
        match k {
            0 => acc0 += d * d,
            1 => acc1 += d * d,
            _ => acc2 += d * d,
        }
    }
    let total = (acc0 + acc1) + (acc2 + acc3);
    if total > bound {
        None
    } else {
        Some(total)
    }
}

/// Squared Euclidean norm of a vector (`|v|²`) in the canonical 4-lane
/// accumulation order, used when deriving a data bubble's extent from its
/// sufficient statistics.
#[inline]
pub fn sq_norm(v: &[f64]) -> f64 {
    let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut cv = v.chunks_exact(4);
    for xv in cv.by_ref() {
        acc0 += xv[0] * xv[0];
        acc1 += xv[1] * xv[1];
        acc2 += xv[2] * xv[2];
        acc3 += xv[3] * xv[3];
    }
    for (k, &x) in cv.remainder().iter().enumerate() {
        match k {
            0 => acc0 += x * x,
            1 => acc1 += x * x,
            _ => acc2 += x * x,
        }
    }
    (acc0 + acc1) + (acc2 + acc3)
}

/// The historical sequential kernels, kept as an explicit baseline.
///
/// These are the pre-PR-8 implementations: one accumulator, one
/// loop-carried dependency chain per value. They are **not** used by any
/// engine — the canonical kernels above are — but the benchmark binary
/// (`kernel_report`) measures against them so the speedup claim stays an
/// honest same-binary comparison, and the property suite uses them as a
/// structurally different implementation to cross-check against (exact
/// equality is only guaranteed for `d ≤ 3`; beyond that the comparison is
/// on relative error).
pub mod scalar {
    /// Sequential single-accumulator squared distance (the pre-PR-8 kernel).
    #[inline]
    #[must_use]
    pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
        let mut acc = 0.0;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let d = x - y;
            acc += d * d;
        }
        acc
    }

    /// Sequential per-lane early-exit squared distance (the pre-PR-8 kernel).
    #[inline]
    #[must_use]
    pub fn sq_dist_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
        let mut acc = 0.0;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let d = x - y;
            acc += d * d;
            if acc > bound {
                return None;
            }
        }
        Some(acc)
    }

    /// Sequential squared norm (the pre-PR-8 kernel).
    #[inline]
    #[must_use]
    pub fn sq_norm(v: &[f64]) -> f64 {
        v.iter().map(|&x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = [1.5, -2.5, 3.25];
        assert_eq!(sq_dist(&p, &p), 0.0);
        assert_eq!(dist(&p, &p), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = [1.0, 2.0, 3.0];
        let b = [-1.0, 0.5, 9.0];
        assert_eq!(dist(&a, &b), dist(&b, &a));
    }

    #[test]
    fn one_dimensional_is_absolute_difference() {
        assert_eq!(dist(&[3.0], &[-4.0]), 7.0);
    }

    #[test]
    fn sq_norm_matches_sq_dist_from_origin() {
        let v = [2.0, -3.0, 6.0];
        assert_eq!(sq_norm(&v), sq_dist(&v, &[0.0, 0.0, 0.0]));
        assert_eq!(sq_norm(&v), 49.0);
    }

    #[test]
    fn empty_points_have_zero_distance() {
        assert_eq!(sq_dist(&[], &[]), 0.0);
    }

    #[test]
    fn low_dimensional_values_match_the_scalar_baseline_exactly() {
        // For d ≤ 3 the tree reduction adds only exact +0.0 terms, so the
        // canonical kernel is bit-identical to the historical scalar one.
        let a = [1.125, -2.75, 3.5];
        let b = [0.25, 4.0, -1.0];
        for d in 0..=3 {
            assert_eq!(sq_dist(&a[..d], &b[..d]), scalar::sq_dist(&a[..d], &b[..d]));
        }
    }

    #[test]
    fn bounded_agrees_with_full_kernel_under_the_bound() {
        let a = [1.0, -2.0, 3.5, 0.25, 9.0];
        let b = [0.5, 4.0, -1.0, 2.0, -3.25];
        let full = sq_dist(&a, &b);
        assert_eq!(sq_dist_bounded(&a, &b, full), Some(full));
        assert_eq!(sq_dist_bounded(&a, &b, full * 2.0), Some(full));
        assert_eq!(sq_dist_bounded(&a, &b, f64::INFINITY), Some(full));
    }

    #[test]
    fn bounded_abandons_above_the_bound() {
        let a = [0.0, 0.0, 0.0];
        let b = [10.0, 10.0, 10.0];
        assert_eq!(sq_dist_bounded(&a, &b, 50.0), None);
        // The exact boundary is inclusive: only *exceeding* aborts.
        assert_eq!(sq_dist_bounded(&a, &b, 300.0), Some(300.0));
    }

    #[test]
    fn bounded_abandons_at_a_block_boundary() {
        // First 4-lane block alone exceeds the bound: the remainder lanes
        // are never touched, yet None still proves sq_dist > bound.
        let a = [10.0, 10.0, 10.0, 10.0, 0.0, 0.0];
        let b = [0.0; 6];
        assert_eq!(sq_dist_bounded(&a, &b, 300.0), None);
        assert!(sq_dist(&a, &b) > 300.0);
    }

    #[test]
    fn bounded_zero_bound_accepts_exact_duplicates() {
        let p = [2.0, 3.0];
        assert_eq!(sq_dist_bounded(&p, &p, 0.0), Some(0.0));
        assert_eq!(sq_dist_bounded(&p, &[2.0, 3.5], 0.0), None);
    }

    #[test]
    fn canonical_order_is_lane_interleaved() {
        // d = 8: acc0 gets lanes {0, 4}, acc1 {1, 5}, etc. Construct values
        // whose rounding detects the interleaved order: the sum of tiny and
        // huge magnitudes differs depending on association.
        let a: Vec<f64> = (0..8).map(|i| if i % 4 == 0 { 1e8 } else { 1.0 }).collect();
        let b = vec![0.0; 8];
        let expect = {
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0, 0.0, 0.0);
            for k in 0..2 {
                a0 += a[4 * k] * a[4 * k];
                a1 += a[4 * k + 1] * a[4 * k + 1];
                a2 += a[4 * k + 2] * a[4 * k + 2];
                a3 += a[4 * k + 3] * a[4 * k + 3];
            }
            (a0 + a1) + (a2 + a3)
        };
        assert_eq!(sq_dist(&a, &b), expect);
        assert_eq!(sq_norm(&a), expect);
        assert_eq!(sq_dist_bounded(&a, &b, f64::INFINITY), Some(expect));
    }
}
