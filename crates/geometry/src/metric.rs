//! Euclidean distance kernels.
//!
//! All coordinates in the workspace are `f64` and points of one dataset share
//! a fixed dimensionality, so the kernels take plain slices. The slice
//! lengths are checked with `debug_assert!` only: the callers (stores, seed
//! sets, trees) guarantee consistent dimensionality by construction, and the
//! kernels sit on the innermost loops of every algorithm in the workspace.

/// Squared Euclidean distance between two points.
///
/// Preferred over [`dist`] wherever only comparisons are needed (k-d tree
/// descent, compactness accumulation) because it avoids the square root.
///
/// # Examples
/// ```
/// use idb_geometry::metric::sq_dist;
/// assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
/// ```
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two points.
///
/// # Examples
/// ```
/// use idb_geometry::metric::dist;
/// assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
/// ```
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Early-exit squared Euclidean distance: abandons the accumulation as soon
/// as the running sum exceeds `bound` and returns `None`; otherwise returns
/// `Some(sq_dist(a, b))`.
///
/// The per-axis terms are non-negative, so the running sum is monotonically
/// non-decreasing; whenever the true squared distance is `<= bound` no
/// partial sum can exceed the bound either, and the accumulation — in the
/// same order as [`sq_dist`] — runs to completion and returns the
/// bit-identical value. A `None` therefore *proves* `sq_dist(a, b) > bound`.
///
/// This is the innermost kernel of the nearest-seed engines: a candidate
/// seed that cannot beat the current best is rejected after a handful of
/// axes instead of all `d`, which the caller accounts as a *partial*
/// evaluation in [`SearchStats`](crate::stats::SearchStats).
///
/// # Examples
/// ```
/// use idb_geometry::metric::{sq_dist, sq_dist_bounded};
/// let (a, b) = ([0.0, 0.0], [3.0, 4.0]);
/// assert_eq!(sq_dist_bounded(&a, &b, 25.0), Some(sq_dist(&a, &b)));
/// assert_eq!(sq_dist_bounded(&a, &b, 24.9), None);
/// ```
#[inline]
pub fn sq_dist_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
        if acc > bound {
            return None;
        }
    }
    Some(acc)
}

/// Squared Euclidean norm of a vector (`|v|²`), used when deriving a data
/// bubble's extent from its sufficient statistics.
#[inline]
pub fn sq_norm(v: &[f64]) -> f64 {
    v.iter().map(|&x| x * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = [1.5, -2.5, 3.25];
        assert_eq!(sq_dist(&p, &p), 0.0);
        assert_eq!(dist(&p, &p), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = [1.0, 2.0, 3.0];
        let b = [-1.0, 0.5, 9.0];
        assert_eq!(dist(&a, &b), dist(&b, &a));
    }

    #[test]
    fn one_dimensional_is_absolute_difference() {
        assert_eq!(dist(&[3.0], &[-4.0]), 7.0);
    }

    #[test]
    fn sq_norm_matches_sq_dist_from_origin() {
        let v = [2.0, -3.0, 6.0];
        assert_eq!(sq_norm(&v), sq_dist(&v, &[0.0, 0.0, 0.0]));
        assert_eq!(sq_norm(&v), 49.0);
    }

    #[test]
    fn empty_points_have_zero_distance() {
        assert_eq!(sq_dist(&[], &[]), 0.0);
    }

    #[test]
    fn bounded_agrees_with_full_kernel_under_the_bound() {
        let a = [1.0, -2.0, 3.5, 0.25];
        let b = [0.5, 4.0, -1.0, 2.0];
        let full = sq_dist(&a, &b);
        assert_eq!(sq_dist_bounded(&a, &b, full), Some(full));
        assert_eq!(sq_dist_bounded(&a, &b, full * 2.0), Some(full));
        assert_eq!(sq_dist_bounded(&a, &b, f64::INFINITY), Some(full));
    }

    #[test]
    fn bounded_abandons_above_the_bound() {
        let a = [0.0, 0.0, 0.0];
        let b = [10.0, 10.0, 10.0];
        assert_eq!(sq_dist_bounded(&a, &b, 50.0), None);
        // The exact boundary is inclusive: only *exceeding* aborts.
        assert_eq!(sq_dist_bounded(&a, &b, 300.0), Some(300.0));
    }

    #[test]
    fn bounded_zero_bound_accepts_exact_duplicates() {
        let p = [2.0, 3.0];
        assert_eq!(sq_dist_bounded(&p, &p, 0.0), Some(0.0));
        assert_eq!(sq_dist_bounded(&p, &[2.0, 3.5], 0.0), None);
    }
}
