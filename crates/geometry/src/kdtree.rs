//! A k-d tree over a static snapshot of points.
//!
//! The point-level clustering substrates (OPTICS on raw points, DBSCAN)
//! need ε-range queries and k-nearest-neighbour queries over the current
//! database contents. A k-d tree built once per clustering run gives
//! `O(log n)` expected query time in the low dimensionalities the paper
//! evaluates (2–20), replacing the `O(n)` scan a naive implementation would
//! perform per query.
//!
//! The tree copies the coordinates into one contiguous buffer at build time,
//! so it remains valid even if the originating store mutates afterwards —
//! clustering always operates on a consistent snapshot.

use crate::metric::{sq_dist, sq_dist_bounded};
use crate::stats::SearchStats;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    /// Index into the flat coordinate buffer / external id table.
    point: u32,
    left: u32,
    right: u32,
}

/// A static k-d tree over points carrying opaque `u64` external ids.
///
/// External ids are preserved verbatim in query results, letting callers map
/// hits back to their own identifiers (e.g. a store's `PointId`).
///
/// # Examples
/// ```
/// use idb_geometry::KdTree;
///
/// let points = [(7u64, [0.0, 0.0]), (8, [5.0, 0.0]), (9, [0.0, 5.0])];
/// let tree = KdTree::build(2, points.iter().map(|(id, p)| (*id, p.as_slice())));
/// let near = tree.range(&[1.0, 1.0], 2.0);
/// assert_eq!(near.len(), 1);
/// assert_eq!(near[0].0, 7);
/// let knn = tree.knn(&[4.0, 0.5], 2);
/// assert_eq!(knn[0].0, 8);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    dim: usize,
    coords: Vec<f64>,
    ids: Vec<u64>,
    nodes: Vec<Node>,
    root: u32,
}

impl KdTree {
    /// Builds a tree from `(external_id, coordinates)` pairs.
    ///
    /// # Panics
    /// Panics if `dim == 0`, or any point's dimensionality differs from
    /// `dim`.
    pub fn build<'a, I>(dim: usize, points: I) -> Self
    where
        I: IntoIterator<Item = (u64, &'a [f64])>,
    {
        assert!(dim > 0, "k-d tree requires dim > 0");
        let mut coords = Vec::new();
        let mut ids = Vec::new();
        for (id, p) in points {
            assert_eq!(p.len(), dim, "point dimensionality mismatch");
            coords.extend_from_slice(p);
            ids.push(id);
        }
        let n = ids.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(n);
        let root = Self::build_rec(dim, &coords, &mut order, 0, &mut nodes);
        Self {
            dim,
            coords,
            ids,
            nodes,
            root,
        }
    }

    /// Builds a tree over a contiguous dimension-strided coordinate block
    /// (point `i` is `flat[i*dim .. (i+1)*dim]`), with external ids
    /// `0..n` — the layout a [`SeedBlock`](crate::SeedBlock) exposes. One
    /// bulk copy of the block replaces the per-point gather of
    /// [`Self::build`]; the resulting tree is identical to
    /// `build(dim, (0..n).map(|i| (i as u64, point_i)))`.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `flat.len()` is not a multiple of `dim`.
    #[must_use]
    pub fn build_dense(dim: usize, flat: &[f64]) -> Self {
        assert!(dim > 0, "k-d tree requires dim > 0");
        assert_eq!(
            flat.len() % dim,
            0,
            "flat buffer length must be a multiple of dim"
        );
        let n = flat.len() / dim;
        let coords = flat.to_vec();
        let ids: Vec<u64> = (0..n as u64).collect();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(n);
        let root = Self::build_rec(dim, &coords, &mut order, 0, &mut nodes);
        Self {
            dim,
            coords,
            ids,
            nodes,
            root,
        }
    }

    fn build_rec(
        dim: usize,
        coords: &[f64],
        order: &mut [u32],
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> u32 {
        if order.is_empty() {
            return NONE;
        }
        let axis = depth % dim;
        let mid = order.len() / 2;
        order.select_nth_unstable_by(mid, |&a, &b| {
            let ca = coords[a as usize * dim + axis];
            let cb = coords[b as usize * dim + axis];
            ca.partial_cmp(&cb).unwrap_or(Ordering::Equal)
        });
        let point = order[mid];
        let node_idx = nodes.len() as u32;
        nodes.push(Node {
            point,
            left: NONE,
            right: NONE,
        });
        let (lo, rest) = order.split_at_mut(mid);
        let hi = &mut rest[1..];
        let left = Self::build_rec(dim, coords, lo, depth + 1, nodes);
        let right = Self::build_rec(dim, coords, hi, depth + 1, nodes);
        nodes[node_idx as usize].left = left;
        nodes[node_idx as usize].right = right;
        node_idx
    }

    /// Number of points stored in the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the tree holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality of the stored points.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn point(&self, i: u32) -> &[f64] {
        let i = i as usize;
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// All points within Euclidean distance `eps` of `center` (inclusive),
    /// returned as `(external_id, distance)` pairs in tree order.
    ///
    /// # Panics
    /// Panics if `center` has the wrong dimensionality.
    #[must_use]
    pub fn range(&self, center: &[f64], eps: f64) -> Vec<(u64, f64)> {
        assert_eq!(center.len(), self.dim, "query dimensionality mismatch");
        let mut out = Vec::new();
        if self.root != NONE {
            self.range_rec(self.root, center, eps, eps * eps, 0, &mut out);
        }
        out
    }

    fn range_rec(
        &self,
        node: u32,
        center: &[f64],
        eps: f64,
        eps_sq: f64,
        depth: usize,
        out: &mut Vec<(u64, f64)>,
    ) {
        let n = &self.nodes[node as usize];
        let p = self.point(n.point);
        let d_sq = sq_dist(center, p);
        if d_sq <= eps_sq {
            out.push((self.ids[n.point as usize], d_sq.sqrt()));
        }
        let axis = depth % self.dim;
        let diff = center[axis] - p[axis];
        let (near, far) = if diff <= 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        if near != NONE {
            self.range_rec(near, center, eps, eps_sq, depth + 1, out);
        }
        if far != NONE && diff.abs() <= eps {
            self.range_rec(far, center, eps, eps_sq, depth + 1, out);
        }
    }

    /// The `k` points nearest to `center`, sorted by ascending distance,
    /// as `(external_id, distance)` pairs. Returns fewer than `k` entries
    /// when the tree holds fewer points.
    ///
    /// # Panics
    /// Panics if `center` has the wrong dimensionality.
    #[must_use]
    pub fn knn(&self, center: &[f64], k: usize) -> Vec<(u64, f64)> {
        assert_eq!(center.len(), self.dim, "query dimensionality mismatch");
        if k == 0 || self.root == NONE {
            return Vec::new();
        }
        // Max-heap on distance so the current worst of the best-k is on top.
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        self.knn_rec(self.root, center, k, 0, &mut heap);
        let mut out: Vec<(u64, f64)> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| (self.ids[e.point as usize], e.dist_sq.sqrt()))
            .collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));
        out
    }

    /// Single nearest neighbour with brute-force-identical tie-breaking and
    /// [`SearchStats`] accounting — the engine behind the k-d seed-search
    /// mode of [`NearestSeeds`](crate::assign::NearestSeeds).
    ///
    /// Points are addressed by **insertion order** (`0..len() as u32`), not
    /// external id, so a caller that inserted its seeds in index order can
    /// use the returned value directly. Returns `(point, squared distance)`
    /// for the point nearest to `center`, with exact ties broken by the
    /// lowest point index; `None` when the tree is empty or the only point
    /// is excluded.
    ///
    /// * `exclude` removes one point from consideration without charging
    ///   any counter for it.
    /// * `hint`, when valid (in range, not excluded), is evaluated up front
    ///   with a full [`sq_dist`] so the descent starts with a finite bound;
    ///   the hint's node is then skipped during traversal so it is charged
    ///   exactly once.
    ///
    /// Every other reachable point is charged to exactly one of
    /// `stats.computed` (full evaluation via the early-exit kernel that ran
    /// to completion) or `stats.partial` (evaluation abandoned once the
    /// running sum exceeded the current best). Points cut off by a subtree
    /// bound are *not* charged here — the caller knows the eligible count
    /// and derives the pruned tally, keeping this routine oblivious to
    /// subtree sizes.
    ///
    /// The far subtree is visited unless `diff² > best_sq` *strictly*: a
    /// far-side point's squared distance is at least the floating-point
    /// square of its axis gap, which is at least `fl(diff²)`, so a pruned
    /// subtree provably holds no point that could beat *or tie* the best.
    ///
    /// # Panics
    /// Panics if `center` has the wrong dimensionality.
    pub fn nearest_one(
        &self,
        center: &[f64],
        exclude: Option<u32>,
        hint: Option<u32>,
        stats: &mut SearchStats,
    ) -> Option<(u32, f64)> {
        assert_eq!(center.len(), self.dim, "query dimensionality mismatch");
        if self.root == NONE {
            return None;
        }
        let mut best: Option<(u32, f64)> = None;
        let seeded = hint.filter(|&h| (h as usize) < self.len() && Some(h) != exclude);
        if let Some(h) = seeded {
            let sq = sq_dist(center, self.point(h));
            stats.computed += 1;
            best = Some((h, sq));
        }
        self.nearest_one_rec(self.root, center, exclude, seeded, 0, &mut best, stats);
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn nearest_one_rec(
        &self,
        node: u32,
        center: &[f64],
        exclude: Option<u32>,
        seeded: Option<u32>,
        depth: usize,
        best: &mut Option<(u32, f64)>,
        stats: &mut SearchStats,
    ) {
        let n = &self.nodes[node as usize];
        let pt = n.point;
        if Some(pt) != exclude && Some(pt) != seeded {
            let bound = best.map_or(f64::INFINITY, |(_, sq)| sq);
            match sq_dist_bounded(center, self.point(pt), bound) {
                None => stats.partial += 1,
                Some(sq) => {
                    stats.computed += 1;
                    match *best {
                        Some((bi, bsq)) if sq > bsq || (sq == bsq && pt >= bi) => {}
                        _ => *best = Some((pt, sq)),
                    }
                }
            }
        }
        let axis = depth % self.dim;
        let diff = center[axis] - self.point(pt)[axis];
        let (near, far) = if diff <= 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        if near != NONE {
            self.nearest_one_rec(near, center, exclude, seeded, depth + 1, best, stats);
        }
        let bsq = best.map_or(f64::INFINITY, |(_, sq)| sq);
        if far != NONE && diff * diff <= bsq {
            self.nearest_one_rec(far, center, exclude, seeded, depth + 1, best, stats);
        }
    }

    fn knn_rec(
        &self,
        node: u32,
        center: &[f64],
        k: usize,
        depth: usize,
        heap: &mut BinaryHeap<HeapEntry>,
    ) {
        let n = &self.nodes[node as usize];
        let p = self.point(n.point);
        let d_sq = sq_dist(center, p);
        if heap.len() < k {
            heap.push(HeapEntry {
                dist_sq: d_sq,
                point: n.point,
            });
        } else if d_sq < heap.peek().map_or(f64::INFINITY, |e| e.dist_sq) {
            heap.pop();
            heap.push(HeapEntry {
                dist_sq: d_sq,
                point: n.point,
            });
        }
        let axis = depth % self.dim;
        let diff = center[axis] - p[axis];
        let (near, far) = if diff <= 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        if near != NONE {
            self.knn_rec(near, center, k, depth + 1, heap);
        }
        let worst = heap.peek().map_or(f64::INFINITY, |e| e.dist_sq);
        if far != NONE && (heap.len() < k || diff * diff <= worst) {
            self.knn_rec(far, center, k, depth + 1, heap);
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    dist_sq: f64,
    point: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq && self.point == other.point
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist_sq
            .partial_cmp(&other.dist_sq)
            .unwrap_or(Ordering::Equal)
            .then(self.point.cmp(&other.point))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::dist;

    fn brute_range(pts: &[(u64, Vec<f64>)], c: &[f64], eps: f64) -> Vec<u64> {
        let mut v: Vec<u64> = pts
            .iter()
            .filter(|(_, p)| dist(p, c) <= eps)
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    fn sample_points() -> Vec<(u64, Vec<f64>)> {
        // Deterministic pseudo-random 2-d points via an LCG.
        let mut state: u64 = 0x1234_5678;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0) * 100.0
        };
        (0..200u64).map(|i| (i, vec![next(), next()])).collect()
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = sample_points();
        let tree = KdTree::build(2, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        assert_eq!(tree.len(), 200);
        for (c, eps) in [
            (vec![50.0, 50.0], 10.0),
            (vec![0.0, 0.0], 30.0),
            (vec![100.0, 100.0], 5.0),
            (vec![25.0, 75.0], 50.0),
        ] {
            let mut got: Vec<u64> = tree.range(&c, eps).into_iter().map(|(id, _)| id).collect();
            got.sort_unstable();
            assert_eq!(got, brute_range(&pts, &c, eps), "center {c:?} eps {eps}");
        }
    }

    #[test]
    fn range_distances_are_correct() {
        let pts = sample_points();
        let tree = KdTree::build(2, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        let c = [40.0, 60.0];
        for (id, d) in tree.range(&c, 20.0) {
            let p = &pts[id as usize].1;
            assert!((dist(p, &c) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = sample_points();
        let tree = KdTree::build(2, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        let c = [33.0, 66.0];
        for k in [1usize, 3, 10, 50] {
            let got = tree.knn(&c, k);
            assert_eq!(got.len(), k);
            let mut brute: Vec<(u64, f64)> = pts.iter().map(|(id, p)| (*id, dist(p, &c))).collect();
            brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            for (i, (_, d)) in got.iter().enumerate() {
                assert!((d - brute[i].1).abs() < 1e-9, "k={k} i={i}");
            }
            // Results are sorted ascending.
            for w in got.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn knn_with_k_larger_than_tree() {
        let pts: Vec<(u64, Vec<f64>)> = vec![(7, vec![1.0]), (9, vec![4.0])];
        let tree = KdTree::build(1, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        let got = tree.knn(&[0.0], 10);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 7);
        assert_eq!(got[1].0, 9);
    }

    #[test]
    fn empty_tree_queries() {
        let tree = KdTree::build(3, std::iter::empty());
        assert!(tree.is_empty());
        assert!(tree.range(&[0.0, 0.0, 0.0], 1.0).is_empty());
        assert!(tree.knn(&[0.0, 0.0, 0.0], 5).is_empty());
    }

    #[test]
    fn duplicate_points_all_reported() {
        let pts: Vec<(u64, Vec<f64>)> = (0..5).map(|i| (i, vec![2.0, 2.0])).collect();
        let tree = KdTree::build(2, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        let hits = tree.range(&[2.0, 2.0], 0.0);
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn nearest_one_matches_brute_force_with_accounting() {
        let pts = sample_points();
        let tree = KdTree::build(2, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        for c in [[33.0, 66.0], [0.0, 0.0], [99.0, 1.0], [50.0, 50.0]] {
            let mut brute: Vec<(u32, f64)> = pts
                .iter()
                .enumerate()
                .map(|(i, (_, p))| (i as u32, sq_dist(p, &c)))
                .collect();
            brute.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            for hint in [None, Some(0u32), Some(137)] {
                let mut stats = SearchStats::new();
                let (idx, sq) = tree.nearest_one(&c, None, hint, &mut stats).unwrap();
                assert_eq!((idx, sq), brute[0], "center {c:?} hint {hint:?}");
                // Each point charged at most once; subtree cuts charge nothing.
                assert!(stats.computed + stats.partial <= pts.len() as u64);
                assert!(stats.computed >= 1);
            }
        }
    }

    #[test]
    fn nearest_one_respects_exclusion_and_tie_break() {
        // Duplicate points: lowest index must win; excluding it promotes
        // the next-lowest duplicate.
        let pts: Vec<(u64, Vec<f64>)> = vec![
            (0, vec![5.0, 5.0]),
            (1, vec![5.0, 5.0]),
            (2, vec![9.0, 9.0]),
        ];
        let tree = KdTree::build(2, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        let mut stats = SearchStats::new();
        let (idx, _) = tree
            .nearest_one(&[5.0, 5.1], None, None, &mut stats)
            .unwrap();
        assert_eq!(idx, 0);
        let (idx, _) = tree
            .nearest_one(&[5.0, 5.1], Some(0), None, &mut stats)
            .unwrap();
        assert_eq!(idx, 1);
        // Hinting the higher duplicate must still surface the lower one.
        let (idx, _) = tree
            .nearest_one(&[5.0, 5.1], None, Some(1), &mut stats)
            .unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn nearest_one_empty_and_fully_excluded() {
        let empty = KdTree::build(2, std::iter::empty());
        let mut stats = SearchStats::new();
        assert!(empty
            .nearest_one(&[0.0, 0.0], None, None, &mut stats)
            .is_none());

        let one = KdTree::build(1, [(7u64, [4.0].as_slice())]);
        assert!(one.nearest_one(&[0.0], Some(0), None, &mut stats).is_none());
        assert_eq!(stats, SearchStats::new());
    }

    #[test]
    fn knn_k_zero_is_empty() {
        let pts = sample_points();
        let tree = KdTree::build(2, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        assert!(tree.knn(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn build_dense_is_identical_to_the_iterator_build() {
        let flat: Vec<f64> = (0..42)
            .flat_map(|i| {
                let t = f64::from(i);
                [(t * 0.37) % 7.0, (t * 1.13) % 5.0, t % 3.0]
            })
            .collect();
        let dense = KdTree::build_dense(3, &flat);
        let iter = KdTree::build(
            3,
            flat.chunks_exact(3).enumerate().map(|(i, p)| (i as u64, p)),
        );
        // Same tree means bit-identical query results and accounting.
        for q in [[0.0, 0.0, 0.0], [3.5, 2.5, 1.5], [6.9, 4.9, 2.9]] {
            let (mut sa, mut sb) = (SearchStats::new(), SearchStats::new());
            let a = dense.nearest_one(&q, None, None, &mut sa);
            let b = iter.nearest_one(&q, None, None, &mut sb);
            assert_eq!(a, b, "query {q:?}");
            assert_eq!(sa, sb, "accounting for {q:?}");
            assert_eq!(dense.knn(&q, 5), iter.knn(&q, 5));
        }
    }
}
