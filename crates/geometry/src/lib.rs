//! Geometric primitives for the incremental data bubbles pipeline.
//!
//! This crate provides the low-level machinery every other crate builds on:
//!
//! * [`metric`] — Euclidean distance kernels over flat `&[f64]` coordinate
//!   slices, in plain and *instrumented* (distance-counting) flavours. The
//!   paper's Figures 10 and 11 report distance-computation counts, so the
//!   counting is a first-class citizen rather than an afterthought.
//! * [`stats`] — [`SearchStats`], the accumulator for
//!   computed vs. pruned distance calculations.
//! * [`matrix`] — [`SymMatrix`], the seed–seed pairwise
//!   distance matrix required by the triangle-inequality pruning lemma.
//! * [`assign`] — [`NearestSeeds`], the Figure 2
//!   algorithm of the paper: nearest-seed search that prunes candidate seeds
//!   with the triangle inequality, plus the brute-force baseline.
//! * [`kdtree`] — a k-d tree for point-level range and k-NN queries, used by
//!   the point-level OPTICS and DBSCAN substrates.
//! * [`obs`] — [`SearchMetrics`], the bridge that folds
//!   `SearchStats` deltas into the shared `idb-obs` metrics registry as
//!   per-engine counter families.
//! * [`parallel`] — [`Parallelism`] (the `Serial | Threads(n) | Auto` knob
//!   threaded through every bulk entry point) and the chunked scoped-thread
//!   helpers whose merge discipline keeps parallel results bit-identical
//!   to serial ones, instrumentation included.
//!
//! Points are represented as `&[f64]` slices of a fixed dimensionality; all
//! containers store coordinates contiguously (structure-of-arrays) to keep
//! the hot distance loops cache-friendly and allocation-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod block;
pub mod kdtree;
pub mod matrix;
pub mod metric;
pub mod obs;
pub mod parallel;
pub mod stats;

pub use assign::{NearestSeeds, RepairStats, SeedSearch, NO_HINT};
pub use block::SeedBlock;
pub use kdtree::KdTree;
pub use matrix::{MatrixStats, SymMatrix};
pub use metric::{dist, sq_dist};
pub use obs::{RepairMetrics, SearchMetrics};
pub use parallel::{EnvParseError, Parallelism};
pub use stats::SearchStats;
