//! Deterministic fan-out of hot loops over scoped worker threads.
//!
//! The paper's efficiency results are stated in *distance computations*,
//! so any parallel execution of the assignment and maintenance hot paths
//! must leave the instrumented counters — and every other output — exactly
//! as the serial code produces them. The scheme used throughout the
//! workspace guarantees that by construction:
//!
//! * work is split into **contiguous chunks** of the input (never
//!   work-stealing, never interleaving), so each item is processed by
//!   exactly one worker with the same per-item code the serial loop runs;
//! * each worker accumulates into **its own** [`SearchStats`] counter and
//!   result buffer; nothing is shared mutably across threads;
//! * chunk results are collected **in chunk order** and merged by
//!   concatenation (results) and addition (counters). Per-item outputs are
//!   independent of every other item, and `u64` addition is associative
//!   and commutative, so the merged values are bit-identical to the serial
//!   ones regardless of thread count or scheduling.
//!
//! Workers are plain `std::thread::scope` threads — no thread pool, no
//! extra dependencies. Spawning a handful of OS threads costs a few
//! microseconds, which is negligible against the O(N·s·d) scans being
//! fanned out; callers gate tiny inputs to the serial path anyway via
//! [`Parallelism::Serial`].
//!
//! [`SearchStats`]: crate::stats::SearchStats

use std::fmt;

/// An environment configuration knob held a value that does not parse.
///
/// Library callers get this from the `from_env_strict` constructors
/// ([`Parallelism::from_env_strict`],
/// [`SeedSearch::from_env_strict`](crate::SeedSearch::from_env_strict));
/// the `Default` impls used by binaries instead warn **once** on stderr
/// and fall back, so a typo in `IDB_PARALLELISM` is loud rather than a
/// silent behavior change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvParseError {
    /// The environment variable that held the bad value.
    pub var: &'static str,
    /// The rejected value.
    pub value: String,
    /// A human description of the accepted values.
    pub expected: &'static str,
}

impl fmt::Display for EnvParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}={:?}: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvParseError {}

/// How a bulk operation spreads its work over threads.
///
/// Threaded through [`MaintainerConfig`](../../idb_core/config/index.html)
/// so experiments, benches and tests can pin the execution mode. All modes
/// produce identical results (see the module docs); the choice only
/// affects wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Run in the calling thread, exactly like the pre-parallel code.
    Serial,
    /// Fan out over this many worker threads (values are clamped to at
    /// least 1; `Threads(1)` still runs in the calling thread).
    Threads(usize),
    /// Fan out over [`std::thread::available_parallelism`] threads.
    Auto,
}

impl Default for Parallelism {
    /// The environment default: the `IDB_PARALLELISM` variable when set to
    /// something parseable, otherwise [`Parallelism::Serial`]. An *invalid*
    /// value warns once on stderr before falling back — a typo must never
    /// silently change the execution mode.
    fn default() -> Self {
        match Self::from_env_strict() {
            Ok(mode) => mode.unwrap_or(Self::Serial),
            Err(e) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| eprintln!("warning: {e}; falling back to serial"));
                Self::Serial
            }
        }
    }
}

impl Parallelism {
    /// Number of worker threads this mode resolves to (always ≥ 1).
    #[must_use]
    pub fn effective_threads(self) -> usize {
        match self {
            Self::Serial => 1,
            Self::Threads(n) => n.max(1),
            Self::Auto => std::thread::available_parallelism().map_or(1, usize::from),
        }
    }

    /// Parses a mode from a string: `serial`, `auto`, or a positive thread
    /// count. Case-insensitive; `None` for anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("serial") {
            Some(Self::Serial)
        } else if s.eq_ignore_ascii_case("auto") {
            Some(Self::Auto)
        } else {
            s.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .map(Self::Threads)
        }
    }

    /// Reads the `IDB_PARALLELISM` environment variable (the knob `ci.sh`
    /// uses to run the whole test suite in both modes). `None` when unset
    /// or unparseable; use [`Parallelism::from_env_strict`] to distinguish
    /// those two cases.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        Self::from_env_strict().ok().flatten()
    }

    /// Like [`Parallelism::from_env`], but an unparseable value is a typed
    /// [`EnvParseError`] instead of a silent `None`. `Ok(None)` means the
    /// variable is unset.
    ///
    /// # Errors
    /// [`EnvParseError`] when `IDB_PARALLELISM` is set to something that
    /// [`Parallelism::parse`] rejects.
    pub fn from_env_strict() -> Result<Option<Self>, EnvParseError> {
        match std::env::var("IDB_PARALLELISM") {
            Err(_) => Ok(None),
            Ok(v) => match Self::parse(&v) {
                Some(mode) => Ok(Some(mode)),
                None => Err(EnvParseError {
                    var: "IDB_PARALLELISM",
                    value: v,
                    expected: "`serial`, `auto`, or a positive thread count",
                }),
            },
        }
    }
}

/// Splits `items` into chunks of `chunk_len` and runs `f` on every chunk —
/// in the calling thread when a single chunk suffices, otherwise one
/// scoped worker thread per chunk. Returns the chunk results **in chunk
/// order**.
///
/// # Panics
/// Panics if `chunk_len == 0` (with non-empty input), or propagates a
/// worker panic.
pub fn run_chunks_with_len<T, R, F>(items: &[T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    if items.len() <= chunk_len {
        return vec![f(items)];
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Splits the index range `0..len` into contiguous sub-ranges of
/// `chunk_len` and runs `f` on every sub-range — in the calling thread
/// when a single range suffices, otherwise one scoped worker thread per
/// range. Returns the results **in range order**.
///
/// This is the index-space twin of [`run_chunks_with_len`] for callers
/// that must slice *several* parallel buffers consistently (e.g. a query
/// buffer plus a per-query hint array): the worker receives the index
/// range and slices whatever it needs.
///
/// # Panics
/// Panics if `chunk_len == 0` (with `len > 0`), or propagates a worker
/// panic.
pub fn run_ranges<R, F>(len: usize, chunk_len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    if len <= chunk_len {
        return vec![f(0..len)];
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..len)
            .step_by(chunk_len)
            .map(|start| {
                let end = (start + chunk_len).min(len);
                scope.spawn(move || f(start..end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// [`run_chunks_with_len`] with the chunk length derived from a worker
/// count: `threads` contiguous chunks of near-equal size (`threads ≤ 1`
/// degenerates to one serial chunk).
pub fn run_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let chunk_len = items.len().div_ceil(threads.max(1));
    run_chunks_with_len(items, chunk_len, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_modes() {
        assert_eq!(Parallelism::parse("serial"), Some(Parallelism::Serial));
        assert_eq!(Parallelism::parse("SERIAL"), Some(Parallelism::Serial));
        assert_eq!(Parallelism::parse("auto"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::parse(" 4 "), Some(Parallelism::Threads(4)));
        assert_eq!(Parallelism::parse("0"), None);
        assert_eq!(Parallelism::parse("-2"), None);
        assert_eq!(Parallelism::parse("fast"), None);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(Parallelism::Serial.effective_threads(), 1);
        assert_eq!(Parallelism::Threads(0).effective_threads(), 1);
        assert_eq!(Parallelism::Threads(8).effective_threads(), 8);
        assert!(Parallelism::Auto.effective_threads() >= 1);
    }

    #[test]
    fn run_chunks_covers_all_items_in_order() {
        let items: Vec<u32> = (0..103).collect();
        for threads in [1usize, 2, 3, 8, 200] {
            let chunks = run_chunks(&items, threads, |c| c.to_vec());
            let flat: Vec<u32> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads = {threads}");
        }
    }

    #[test]
    fn run_chunks_empty_input() {
        let chunks = run_chunks::<u32, Vec<u32>, _>(&[], 4, |c| c.to_vec());
        assert!(chunks.is_empty());
    }

    #[test]
    fn chunked_sums_match_serial() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: u64 = items.iter().sum();
        for threads in [2usize, 4, 7] {
            let total: u64 = run_chunks(&items, threads, |c| c.iter().sum::<u64>())
                .into_iter()
                .sum();
            assert_eq!(total, serial);
        }
    }

    #[test]
    fn run_ranges_covers_every_index_in_order() {
        for (len, chunk) in [(103usize, 10usize), (10, 10), (10, 100), (7, 1)] {
            let ranges = run_ranges(len, chunk, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = ranges.into_iter().flatten().collect();
            assert_eq!(flat, (0..len).collect::<Vec<usize>>(), "{len}/{chunk}");
        }
        assert!(run_ranges(0, 4, |r| r.len()).is_empty());
    }

    #[test]
    fn with_len_respects_stride_boundaries() {
        // A stride-3 layout must never be split mid-record.
        let items: Vec<f64> = (0..99).map(|i| i as f64).collect();
        let chunks = run_chunks_with_len(&items, 3 * 4, |c| {
            assert_eq!(c.len() % 3, 0);
            c.len()
        });
        assert_eq!(chunks.iter().sum::<usize>(), 99);
    }

    #[test]
    fn env_strict_distinguishes_unset_invalid_and_valid() {
        // The only test in this binary touching IDB_PARALLELISM, so the
        // set/restore sequence cannot race another thread.
        let saved = std::env::var("IDB_PARALLELISM").ok();
        std::env::remove_var("IDB_PARALLELISM");
        assert_eq!(Parallelism::from_env_strict(), Ok(None));
        std::env::set_var("IDB_PARALLELISM", "3");
        assert_eq!(
            Parallelism::from_env_strict(),
            Ok(Some(Parallelism::Threads(3)))
        );
        assert_eq!(Parallelism::default(), Parallelism::Threads(3));
        std::env::set_var("IDB_PARALLELISM", "bogus");
        let err = Parallelism::from_env_strict().unwrap_err();
        assert_eq!(err.var, "IDB_PARALLELISM");
        assert_eq!(err.value, "bogus");
        assert!(err.to_string().contains("expected"), "{err}");
        assert_eq!(Parallelism::from_env(), None, "lenient view stays None");
        // The default warns (once, on stderr) and falls back — it must
        // never panic or silently pick a surprising mode.
        assert_eq!(Parallelism::default(), Parallelism::Serial);
        match saved {
            Some(v) => std::env::set_var("IDB_PARALLELISM", v),
            None => std::env::remove_var("IDB_PARALLELISM"),
        }
    }
}
