//! Property-based tests for the geometry substrate.
//!
//! The triangle-inequality search is the paper's Section 3 contribution; its
//! single most important invariant is that pruning never changes the result
//! relative to the brute-force baseline. The k-d tree's range/knn results are
//! likewise checked against exhaustive scans on random inputs.

use idb_geometry::{dist, KdTree, NearestSeeds, SearchStats};
use proptest::prelude::*;

fn point(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, dim)
}

fn points(dim: usize, max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(point(dim), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pruned nearest-seed search returns the same minimum distance as the
    /// brute-force scan, for any seed set, query and hint.
    #[test]
    fn pruned_search_equals_brute_force(
        seeds in points(3, 40),
        q in point(3),
        hint_raw in 0usize..64,
    ) {
        let set = NearestSeeds::from_seeds(3, seeds.iter().map(|s| s.as_slice()));
        let hint = Some(hint_raw % set.len());
        let mut bs = SearchStats::new();
        let mut ps = SearchStats::new();
        let (_, bd) = set.nearest_brute(&q, None, &mut bs).unwrap();
        let (pi, pd) = set.nearest_pruned(&q, None, hint, &mut ps).unwrap();
        prop_assert!((bd - pd).abs() < 1e-9);
        // The returned index truly attains the minimum distance.
        prop_assert!((dist(&q, set.seed(pi)) - pd).abs() < 1e-12);
        // Work accounting: pruned + computed covers exactly all seeds.
        prop_assert_eq!(ps.total(), set.len() as u64);
    }

    /// Exclusion removes exactly the excluded seed from consideration.
    #[test]
    fn pruned_search_respects_exclusion(
        seeds in points(2, 30),
        q in point(2),
        ex_raw in 0usize..64,
    ) {
        let set = NearestSeeds::from_seeds(2, seeds.iter().map(|s| s.as_slice()));
        let ex = ex_raw % set.len();
        let mut bs = SearchStats::new();
        let mut ps = SearchStats::new();
        let brute = set.nearest_brute(&q, Some(ex), &mut bs);
        let pruned = set.nearest_pruned(&q, Some(ex), None, &mut ps);
        match (brute, pruned) {
            (None, None) => prop_assert_eq!(set.len(), 1),
            (Some((_, bd)), Some((pi, pd))) => {
                prop_assert!(pi != ex);
                prop_assert!((bd - pd).abs() < 1e-9);
            }
            _ => prop_assert!(false, "brute and pruned disagree on emptiness"),
        }
    }

    /// Replacing a seed keeps the pairwise matrix consistent with actual
    /// seed coordinates.
    #[test]
    fn replace_keeps_matrix_consistent(
        seeds in points(2, 20),
        newseed in point(2),
        idx_raw in 0usize..64,
    ) {
        let mut set = NearestSeeds::from_seeds(2, seeds.iter().map(|s| s.as_slice()));
        let idx = idx_raw % set.len();
        set.replace(idx, &newseed);
        for j in 0..set.len() {
            let expect = dist(set.seed(idx), set.seed(j));
            prop_assert!((set.pair_distance(idx, j) - expect).abs() < 1e-9);
        }
    }

    /// k-d tree range query equals the brute-force filter.
    #[test]
    fn kdtree_range_equals_scan(
        pts in points(2, 120),
        q in point(2),
        eps in 0.0f64..120.0,
    ) {
        let tree = KdTree::build(2, pts.iter().enumerate().map(|(i, p)| (i as u64, p.as_slice())));
        let mut got: Vec<u64> = tree.range(&q, eps).into_iter().map(|(id, _)| id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| dist(p, &q) <= eps)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// k-d tree knn distances equal the k smallest brute-force distances.
    #[test]
    fn kdtree_knn_equals_scan(
        pts in points(3, 100),
        q in point(3),
        k in 1usize..20,
    ) {
        let tree = KdTree::build(3, pts.iter().enumerate().map(|(i, p)| (i as u64, p.as_slice())));
        let got = tree.knn(&q, k);
        let mut want: Vec<f64> = pts.iter().map(|p| dist(p, &q)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect_len = k.min(pts.len());
        prop_assert_eq!(got.len(), expect_len);
        for (i, (_, d)) in got.iter().enumerate() {
            prop_assert!((d - want[i]).abs() < 1e-9);
        }
    }
}
