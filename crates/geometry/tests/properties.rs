//! Property-based tests for the geometry substrate.
//!
//! The triangle-inequality search is the paper's Section 3 contribution; its
//! single most important invariant is that pruning never changes the result
//! relative to the brute-force baseline. The k-d tree's range/knn results are
//! likewise checked against exhaustive scans on random inputs.

use idb_geometry::metric::{sq_dist, sq_dist_bounded};
use idb_geometry::{dist, KdTree, NearestSeeds, SearchStats, SeedSearch};
use proptest::prelude::*;

fn point(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, dim)
}

fn points(dim: usize, max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(point(dim), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pruned nearest-seed search returns the same minimum distance as the
    /// brute-force scan, for any seed set, query and hint.
    #[test]
    fn pruned_search_equals_brute_force(
        seeds in points(3, 40),
        q in point(3),
        hint_raw in 0usize..64,
    ) {
        let set = NearestSeeds::from_seeds(3, seeds.iter().map(|s| s.as_slice()));
        let hint = Some(hint_raw % set.len());
        let mut bs = SearchStats::new();
        let mut ps = SearchStats::new();
        let (bi, bd) = set.nearest_brute(&q, None, &mut bs).unwrap();
        let (pi, pd) = set.nearest_pruned(&q, None, hint, &mut ps).unwrap();
        prop_assert_eq!(bi, pi);
        prop_assert_eq!(bd.to_bits(), pd.to_bits());
        // The returned index truly attains the minimum distance.
        prop_assert!((dist(&q, set.seed(pi)) - pd).abs() < 1e-12);
        // Work accounting: pruned + computed + partial covers all seeds.
        prop_assert_eq!(ps.total(), set.len() as u64);
    }

    /// Exclusion removes exactly the excluded seed from consideration.
    #[test]
    fn pruned_search_respects_exclusion(
        seeds in points(2, 30),
        q in point(2),
        ex_raw in 0usize..64,
    ) {
        let set = NearestSeeds::from_seeds(2, seeds.iter().map(|s| s.as_slice()));
        let ex = ex_raw % set.len();
        let mut bs = SearchStats::new();
        let mut ps = SearchStats::new();
        let brute = set.nearest_brute(&q, Some(ex), &mut bs);
        let pruned = set.nearest_pruned(&q, Some(ex), None, &mut ps);
        match (brute, pruned) {
            (None, None) => prop_assert_eq!(set.len(), 1),
            (Some((_, bd)), Some((pi, pd))) => {
                prop_assert!(pi != ex);
                prop_assert!((bd - pd).abs() < 1e-9);
            }
            _ => prop_assert!(false, "brute and pruned disagree on emptiness"),
        }
    }

    /// Replacing a seed keeps the pairwise matrix consistent with actual
    /// seed coordinates.
    #[test]
    fn replace_keeps_matrix_consistent(
        seeds in points(2, 20),
        newseed in point(2),
        idx_raw in 0usize..64,
    ) {
        let mut set = NearestSeeds::from_seeds(2, seeds.iter().map(|s| s.as_slice()));
        let idx = idx_raw % set.len();
        set.replace(idx, &newseed);
        for j in 0..set.len() {
            let expect = dist(set.seed(idx), set.seed(j));
            prop_assert!((set.pair_distance(idx, j) - expect).abs() < 1e-9);
        }
    }

    /// k-d tree range query equals the brute-force filter.
    #[test]
    fn kdtree_range_equals_scan(
        pts in points(2, 120),
        q in point(2),
        eps in 0.0f64..120.0,
    ) {
        let tree = KdTree::build(2, pts.iter().enumerate().map(|(i, p)| (i as u64, p.as_slice())));
        let mut got: Vec<u64> = tree.range(&q, eps).into_iter().map(|(id, _)| id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| dist(p, &q) <= eps)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// k-d tree knn distances equal the k smallest brute-force distances.
    #[test]
    fn kdtree_knn_equals_scan(
        pts in points(3, 100),
        q in point(3),
        k in 1usize..20,
    ) {
        let tree = KdTree::build(3, pts.iter().enumerate().map(|(i, p)| (i as u64, p.as_slice())));
        let got = tree.knn(&q, k);
        let mut want: Vec<f64> = pts.iter().map(|p| dist(p, &q)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect_len = k.min(pts.len());
        prop_assert_eq!(got.len(), expect_len);
        for (i, (_, d)) in got.iter().enumerate() {
            prop_assert!((d - want[i]).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whenever the true squared distance is within the bound, the
    /// early-exit kernel runs to completion and returns the bit-identical
    /// value of the plain kernel; whenever it abandons, the true value
    /// really exceeds the bound.
    #[test]
    fn bounded_kernel_agrees_with_full_kernel(
        a in prop::collection::vec(-100.0f64..100.0, 1..8),
        b_raw in prop::collection::vec(-100.0f64..100.0, 1..8),
        factor in 0.0f64..2.0,
    ) {
        let n = a.len().min(b_raw.len());
        let (a, b) = (&a[..n], &b_raw[..n]);
        let full = sq_dist(a, b);
        let bound = full * factor;
        match sq_dist_bounded(a, b, bound) {
            Some(sq) => {
                prop_assert_eq!(sq.to_bits(), full.to_bits());
                prop_assert!(full <= bound || full == 0.0);
            }
            None => prop_assert!(full > bound),
        }
        // At or above the exact value the kernel always completes.
        prop_assert_eq!(sq_dist_bounded(a, b, full), Some(full));
        prop_assert_eq!(sq_dist_bounded(a, b, f64::INFINITY), Some(full));
    }

    /// All three engines return identical `(index, distance)` pairs —
    /// including under exclusion, warm-start hints, and degenerate
    /// duplicate-seed sets — and each accounts every eligible seed exactly
    /// once across computed/pruned/partial.
    #[test]
    fn all_engines_identical_with_full_accounting(
        seeds in points(3, 32),
        dup_raw in 0usize..64,
        q in point(3),
        hint_raw in 0usize..64,
        ex_raw in prop::option::of(0usize..64),
    ) {
        let mut set = NearestSeeds::from_seeds(3, seeds.iter().map(|s| s.as_slice()));
        // Degenerate case: duplicate one seed so exact ties exist.
        let dup: Vec<f64> = set.seed(dup_raw % set.len()).to_vec();
        set.push(&dup);
        let s = set.len();
        let hint = Some(hint_raw % s);
        let ex = ex_raw.map(|e| e % s).filter(|_| s > 1);
        let eligible = (s - usize::from(ex.is_some())) as u64;

        let mut bs = SearchStats::new();
        let (bi, bd) = set.nearest_brute(&q, ex, &mut bs).unwrap();
        prop_assert_eq!(bs.total(), eligible);
        for engine in [SeedSearch::Pruned, SeedSearch::KdTree] {
            for h in [None, hint] {
                let mut es = SearchStats::new();
                let (ei, ed) = set.nearest(engine, &q, ex, h, &mut es).unwrap();
                prop_assert_eq!(bi, ei, "engine {:?} hint {:?}", engine, h);
                prop_assert_eq!(bd.to_bits(), ed.to_bits(), "engine {:?} hint {:?}", engine, h);
                prop_assert_eq!(es.total(), eligible, "engine {:?} hint {:?}", engine, h);
            }
        }
    }
}
