//! Property suite pinning the canonical 4-lane distance kernels.
//!
//! Every distance in the workspace flows through `metric::{sq_dist,
//! sq_dist_bounded, sq_norm}`, and their **fixed accumulation order** is
//! what keeps engines × parallelism × shards bit-identical to each other
//! (DESIGN.md §15). This suite pins that order with an independently
//! written four-accumulator reference, proves the early-exit kernel's
//! `None` is a certificate for `> bound`, checks non-finite propagation
//! against the reference, and fuzzes the kernels over random subslices of
//! a shared buffer (the SoA layouts hand the kernels interior slices, so
//! alignment must never matter).

use idb_geometry::metric::{scalar, sq_dist, sq_dist_bounded, sq_norm};
use proptest::prelude::*;

/// Independent reference for the canonical accumulation order: lane `i`
/// feeds accumulator `i mod 4` (the remainder lanes of the kernels land on
/// `acc[0..r]`, which is the same mapping because a remainder lane's global
/// index is `4·blocks + k`), reduced as `(acc0 + acc1) + (acc2 + acc3)`.
fn ref_reduce(terms: impl Iterator<Item = f64>) -> f64 {
    let mut acc = [0.0f64; 4];
    for (i, t) in terms.enumerate() {
        acc[i % 4] += t;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

fn ref_sq_dist(a: &[f64], b: &[f64]) -> f64 {
    ref_reduce(a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)))
}

fn ref_sq_norm(v: &[f64]) -> f64 {
    ref_reduce(v.iter().map(|&x| x * x))
}

fn coords(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The unrolled kernels equal the four-accumulator reference bit for
    /// bit at every dimensionality — including `d < 4` (no full block) and
    /// every `d mod 4` remainder shape.
    #[test]
    fn kernels_match_reference_bit_for_bit(
        a in coords(0..300),
        b_raw in coords(0..300),
    ) {
        let n = a.len().min(b_raw.len());
        let (a, b) = (&a[..n], &b_raw[..n]);
        prop_assert_eq!(sq_dist(a, b).to_bits(), ref_sq_dist(a, b).to_bits());
        prop_assert_eq!(sq_norm(a).to_bits(), ref_sq_norm(a).to_bits());
        prop_assert_eq!(
            sq_dist_bounded(a, b, f64::INFINITY).map(f64::to_bits),
            Some(ref_sq_dist(a, b).to_bits())
        );
    }

    /// A completed bounded run is bit-identical to the unbounded kernel; a
    /// `None` is a proof that the true squared distance exceeds the bound.
    #[test]
    fn bounded_none_proves_above_bound(
        a in coords(0..300),
        b_raw in coords(0..300),
        factor in 0.0f64..2.0,
    ) {
        let n = a.len().min(b_raw.len());
        let (a, b) = (&a[..n], &b_raw[..n]);
        let full = sq_dist(a, b);
        match sq_dist_bounded(a, b, full * factor) {
            Some(sq) => prop_assert_eq!(sq.to_bits(), full.to_bits()),
            None => prop_assert!(full > full * factor),
        }
        // The exact value is an inclusive bound: the kernel always
        // completes there, bit-identically.
        prop_assert_eq!(sq_dist_bounded(a, b, full), Some(full));
    }

    /// Planting a NaN or an infinity anywhere yields exactly what the
    /// reference yields — non-finite values flow through the lane
    /// accumulators without being masked, reordered or absorbed.
    #[test]
    fn non_finite_propagation_matches_reference(
        a in coords(1..64),
        b_raw in coords(1..64),
        at_raw in 0usize..64,
        poison_raw in 0usize..3,
    ) {
        let n = a.len().min(b_raw.len());
        let mut a = a[..n].to_vec();
        let b = &b_raw[..n];
        let poison = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][poison_raw];
        a[at_raw % n] = poison;
        let got = sq_dist(&a, b);
        let want = ref_sq_dist(&a, b);
        prop_assert_eq!(got.to_bits(), want.to_bits());
        prop_assert!(!got.is_finite());
        prop_assert_eq!(sq_norm(&a).to_bits(), ref_sq_norm(&a).to_bits());
        // The bounded kernel completes with the reference bits (a NaN never
        // trips a `>` comparison) or abandons only on a genuine overflow of
        // the bound (a single ±∞ lane drives the total to +∞).
        match sq_dist_bounded(&a, b, 1e300) {
            Some(sq) => prop_assert_eq!(sq.to_bits(), want.to_bits()),
            None => prop_assert_eq!(want, f64::INFINITY),
        }
    }

    /// Random-stride fuzz: the kernels applied to arbitrary interior
    /// subslices of one flat buffer (the SoA block layout) agree with the
    /// reference on those exact subslices — results depend only on the
    /// lane values, never on where the slice starts.
    #[test]
    fn random_stride_subslices_match_reference(
        buf in coords(8..512),
        off_a_raw in 0usize..512,
        off_b_raw in 0usize..512,
        len_raw in 0usize..128,
    ) {
        let off_a = off_a_raw % buf.len();
        let off_b = off_b_raw % buf.len();
        let len = len_raw % (buf.len() - off_a.max(off_b)).max(1);
        let a = &buf[off_a..off_a + len];
        let b = &buf[off_b..off_b + len];
        prop_assert_eq!(sq_dist(a, b).to_bits(), ref_sq_dist(a, b).to_bits());
        prop_assert_eq!(sq_norm(a).to_bits(), ref_sq_norm(a).to_bits());
        let full = sq_dist(a, b);
        prop_assert_eq!(sq_dist_bounded(a, b, full), Some(full));
    }

    /// Cross-check against the structurally different historical scalar
    /// kernels: bit-identical for `d ≤ 3` (the tree reduction degenerates
    /// to the left-to-right sum), within tight relative error beyond.
    #[test]
    fn scalar_baseline_cross_check(
        a in coords(0..128),
        b_raw in coords(0..128),
    ) {
        let n = a.len().min(b_raw.len());
        let (a, b) = (&a[..n], &b_raw[..n]);
        let canon = sq_dist(a, b);
        let base = scalar::sq_dist(a, b);
        if n <= 3 {
            prop_assert_eq!(canon.to_bits(), base.to_bits());
        } else if base != 0.0 {
            prop_assert!(((canon - base) / base).abs() < 1e-12);
        } else {
            prop_assert_eq!(canon, 0.0);
        }
        // The scalar bounded kernel abandons on a per-lane rather than
        // per-block boundary, but a `None` from either is a true `> bound`
        // certificate against its own full kernel.
        let bound = base * 0.5;
        if scalar::sq_dist_bounded(a, b, bound).is_none() {
            prop_assert!(base > bound);
        }
        if sq_dist_bounded(a, b, bound).is_none() {
            prop_assert!(canon > bound);
        }
    }
}
