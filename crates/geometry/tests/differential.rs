//! Differential suite: every nearest-seed engine and every parallel batch
//! entry point must be *bit-identical* to the serial brute-force reference
//! — assignments, distances, tie-breaking, and the instrumented
//! [`SearchStats`] counters alike — for every thread count, hint pattern,
//! and post-mutation (merge/split-style) seed set.
//!
//! The paper reports its efficiency results in distance computations
//! (Figures 10 and 11), so the counters are part of the contract, not just
//! the assignments. The suite drives randomized seed sets and query
//! buffers through [`NearestSeeds::nearest_batch`] under all three
//! [`SeedSearch`] engines and `Serial` / `Threads(2 | 4 | 8)` and demands
//! exact equality throughout.

use idb_geometry::{NearestSeeds, Parallelism, SearchStats, SeedSearch, NO_HINT};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;
const MODES: [Parallelism; 4] = [
    Parallelism::Serial,
    Parallelism::Threads(2),
    Parallelism::Threads(4),
    Parallelism::Threads(8),
];
const ENGINES: [SeedSearch; 3] = [SeedSearch::Brute, SeedSearch::Pruned, SeedSearch::KdTree];

/// One randomized instance: a seed set (sometimes containing exact
/// duplicates), a query buffer, an optional excluded seed, and a per-query
/// warm-start hint pattern mixing valid seeds with [`NO_HINT`].
struct Case {
    seeds: NearestSeeds,
    queries: Vec<f64>,
    exclude: Option<usize>,
    hints: Vec<u32>,
    dim: usize,
}

fn random_case(rng: &mut StdRng) -> Case {
    let dim = rng.gen_range(1..=7);
    let num_seeds = rng.gen_range(1..=24);
    // Query counts straddle the chunking boundaries: empty buffers, fewer
    // queries than threads, and buffers that split unevenly.
    let num_queries = rng.gen_range(0..=65);
    let mut seeds = NearestSeeds::new(dim);
    for i in 0..num_seeds {
        // One seed in four duplicates an earlier one, exercising the exact
        // tie-break (lowest index wins) in every engine.
        if i > 0 && rng.gen_range(0..4) == 0 {
            let dup = rng.gen_range(0..i);
            let copy: Vec<f64> = seeds.seed(dup).to_vec();
            seeds.push(&copy);
        } else {
            let s: Vec<f64> = (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
            seeds.push(&s);
        }
    }
    let queries: Vec<f64> = (0..num_queries * dim)
        .map(|_| rng.gen_range(-60.0..60.0))
        .collect();
    // Exclusion mirrors the merge path (donor seed ineligible); only legal
    // when another seed remains.
    let exclude = if num_seeds > 1 && rng.gen_range(0..3) == 0 {
        Some(rng.gen_range(0..num_seeds))
    } else {
        None
    };
    let hints: Vec<u32> = (0..num_queries)
        .map(|_| {
            if rng.gen_range(0..3) == 0 {
                NO_HINT
            } else {
                rng.gen_range(0..num_seeds) as u32
            }
        })
        .collect();
    Case {
        seeds,
        queries,
        exclude,
        hints,
        dim,
    }
}

/// Per-query serial reference for one case under one engine.
fn reference(case: &Case, engine: SeedSearch, hinted: bool) -> (Vec<(u32, f64)>, SearchStats) {
    let mut stats = SearchStats::new();
    let out = case
        .queries
        .chunks_exact(case.dim)
        .enumerate()
        .map(|(qi, q)| {
            let hint = if hinted && case.hints[qi] != NO_HINT {
                Some(case.hints[qi] as usize)
            } else {
                None
            };
            let (i, d) = case
                .seeds
                .nearest(engine, q, case.exclude, hint, &mut stats)
                .expect("eligible seed");
            (i as u32, d)
        })
        .collect();
    (out, stats)
}

/// Batch calls match the per-query serial reference bit-for-bit in every
/// engine, every parallelism mode, hinted and unhinted.
#[test]
fn batch_matches_serial_reference_in_every_engine_and_mode() {
    let mut rng = StdRng::seed_from_u64(0xB001);
    for case_no in 0..CASES {
        let case = random_case(&mut rng);
        for engine in ENGINES {
            for hinted in [false, true] {
                let (ref_out, ref_stats) = reference(&case, engine, hinted);
                let hints = hinted.then_some(case.hints.as_slice());
                for par in MODES {
                    let mut stats = SearchStats::new();
                    let out = case.seeds.nearest_batch(
                        &case.queries,
                        case.exclude,
                        engine,
                        hints,
                        par,
                        &mut stats,
                    );
                    assert_eq!(
                        out, ref_out,
                        "case {case_no} ({engine:?}, hinted={hinted}, {par:?}): assignments diverged"
                    );
                    assert_eq!(
                        stats, ref_stats,
                        "case {case_no} ({engine:?}, hinted={hinted}, {par:?}): accounting diverged"
                    );
                }
            }
        }
    }
}

/// All engines return bit-identical `(index, distance)` pairs to brute
/// force — same index on exact ties (lowest wins), same distance bits —
/// regardless of hints.
#[test]
fn engines_bit_identical_to_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xAB);
    for case_no in 0..CASES {
        let case = random_case(&mut rng);
        let (brute, brute_stats) = reference(&case, SeedSearch::Brute, false);
        for engine in [SeedSearch::Pruned, SeedSearch::KdTree] {
            for hinted in [false, true] {
                let (out, stats) = reference(&case, engine, hinted);
                assert_eq!(out.len(), brute.len());
                for (q, (b, o)) in brute.iter().zip(&out).enumerate() {
                    assert_eq!(
                        b.0, o.0,
                        "case {case_no}, query {q} ({engine:?}, hinted={hinted}): index diverged"
                    );
                    assert_eq!(
                        b.1.to_bits(),
                        o.1.to_bits(),
                        "case {case_no}, query {q} ({engine:?}, hinted={hinted}): distance bits diverged"
                    );
                }
                assert!(
                    stats.computed <= brute_stats.computed,
                    "case {case_no} ({engine:?}): engine computed more than brute force"
                );
                assert_eq!(
                    stats.total(),
                    brute_stats.total(),
                    "case {case_no} ({engine:?}): candidate accounting diverged"
                );
            }
        }
    }
}

/// Counter merging is pure u64 addition over per-chunk counters, so a
/// batch split across threads must account each candidate exactly once:
/// computed + pruned + partial = queries x eligible seeds, in every engine
/// and every mode.
#[test]
fn merged_counters_cover_every_candidate_exactly_once() {
    let mut rng = StdRng::seed_from_u64(0xCC);
    for _ in 0..CASES {
        let case = random_case(&mut rng);
        let queries = case.queries.len() / case.dim;
        let eligible = case.seeds.len() - usize::from(case.exclude.is_some());
        for engine in ENGINES {
            for par in MODES {
                let mut stats = SearchStats::new();
                case.seeds.nearest_batch(
                    &case.queries,
                    case.exclude,
                    engine,
                    Some(&case.hints),
                    par,
                    &mut stats,
                );
                assert_eq!(
                    stats.total(),
                    (queries * eligible) as u64,
                    "{engine:?} {par:?}"
                );
            }
        }
    }
}

/// Seed-set mutations — the merge/split/retire bookkeeping of the
/// incremental maintainer — keep every engine bit-identical to brute
/// force, including warm-start hints that point at the mutated seeds.
#[test]
fn engines_stay_identical_across_seed_mutations() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for case_no in 0..CASES {
        let mut case = random_case(&mut rng);
        // A short mutation script: replace (split/merge re-seeding), push
        // (adaptive growth), swap_remove (adaptive retirement).
        for step in 0..rng.gen_range(1..=4) {
            let s = case.seeds.len();
            match rng.gen_range(0..3) {
                0 => {
                    let i = rng.gen_range(0..s);
                    let p: Vec<f64> = (0..case.dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
                    case.seeds.replace(i, &p);
                }
                1 => {
                    let p: Vec<f64> = (0..case.dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
                    case.seeds.push(&p);
                }
                _ if s > 1 => case.seeds.swap_remove(rng.gen_range(0..s)),
                _ => {}
            }
            let s = case.seeds.len();
            // Refresh exclusion and hints to the surviving index range —
            // exactly what the maintainer does after a merge/split.
            case.exclude = case.exclude.filter(|&e| e < s && s > 1);
            for h in &mut case.hints {
                if *h != NO_HINT && *h as usize >= s {
                    *h = rng.gen_range(0..s) as u32;
                }
            }
            let (brute, _) = reference(&case, SeedSearch::Brute, false);
            for engine in [SeedSearch::Pruned, SeedSearch::KdTree] {
                let (out, _) = reference(&case, engine, true);
                for (q, (b, o)) in brute.iter().zip(&out).enumerate() {
                    assert_eq!(
                        (b.0, b.1.to_bits()),
                        (o.0, o.1.to_bits()),
                        "case {case_no}, step {step}, query {q} ({engine:?}): diverged after mutation"
                    );
                }
            }
        }
    }
}
