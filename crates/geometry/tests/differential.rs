//! Differential suite: the parallel batch assignment entry points must be
//! *bit-identical* to the serial per-query reference — assignments,
//! distances, and the instrumented [`SearchStats`] counters alike — for
//! every thread count.
//!
//! The paper reports its efficiency results in distance computations
//! (Figures 10 and 11), so the counters are part of the contract, not just
//! the assignments. The suite drives randomized seed sets and query
//! buffers through [`NearestSeeds::nearest_batch_brute`] and
//! [`NearestSeeds::nearest_batch_pruned`] under `Serial` and
//! `Threads(2 | 4 | 8)` and demands exact equality throughout.

use idb_geometry::{NearestSeeds, Parallelism, SearchStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;
const MODES: [Parallelism; 4] = [
    Parallelism::Serial,
    Parallelism::Threads(2),
    Parallelism::Threads(4),
    Parallelism::Threads(8),
];

/// One randomized instance: a seed set, a query buffer, and an optional
/// excluded seed.
struct Case {
    seeds: NearestSeeds,
    queries: Vec<f64>,
    exclude: Option<usize>,
    dim: usize,
}

fn random_case(rng: &mut StdRng) -> Case {
    let dim = rng.gen_range(1..=7);
    let num_seeds = rng.gen_range(1..=24);
    // Query counts straddle the chunking boundaries: empty buffers, fewer
    // queries than threads, and buffers that split unevenly.
    let num_queries = rng.gen_range(0..=65);
    let mut seeds = NearestSeeds::new(dim);
    for _ in 0..num_seeds {
        let s: Vec<f64> = (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
        seeds.push(&s);
    }
    let queries: Vec<f64> = (0..num_queries * dim)
        .map(|_| rng.gen_range(-60.0..60.0))
        .collect();
    // Exclusion mirrors the merge path (donor seed ineligible); only legal
    // when another seed remains.
    let exclude = if num_seeds > 1 && rng.gen_range(0..3) == 0 {
        Some(rng.gen_range(0..num_seeds))
    } else {
        None
    };
    Case {
        seeds,
        queries,
        exclude,
        dim,
    }
}

/// Per-query serial reference for one case.
fn reference(case: &Case, pruned: bool) -> (Vec<(u32, f64)>, SearchStats) {
    let mut stats = SearchStats::new();
    let out = case
        .queries
        .chunks_exact(case.dim)
        .map(|q| {
            let (i, d) = if pruned {
                case.seeds
                    .nearest_pruned(q, case.exclude, None, &mut stats)
                    .expect("eligible seed")
            } else {
                case.seeds
                    .nearest_brute(q, case.exclude, &mut stats)
                    .expect("eligible seed")
            };
            (i as u32, d)
        })
        .collect();
    (out, stats)
}

fn run_differential(pruned: bool, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for case_no in 0..CASES {
        let case = random_case(&mut rng);
        let (ref_out, ref_stats) = reference(&case, pruned);
        for par in MODES {
            let mut stats = SearchStats::new();
            let out = if pruned {
                case.seeds
                    .nearest_batch_pruned(&case.queries, case.exclude, par, &mut stats)
            } else {
                case.seeds
                    .nearest_batch_brute(&case.queries, case.exclude, par, &mut stats)
            };
            assert_eq!(
                out, ref_out,
                "case {case_no} ({par:?}): assignments diverged"
            );
            assert_eq!(
                (stats.computed, stats.pruned),
                (ref_stats.computed, ref_stats.pruned),
                "case {case_no} ({par:?}): distance accounting diverged"
            );
        }
    }
}

#[test]
fn batch_brute_matches_serial_reference_in_every_mode() {
    run_differential(false, 0xB001);
}

#[test]
fn batch_pruned_matches_serial_reference_in_every_mode() {
    run_differential(true, 0xF16);
}

/// The pruned and brute paths must agree on the *assignment* (the counters
/// legitimately differ — that difference is the paper's Figure 10).
#[test]
fn pruned_and_brute_agree_on_assignments() {
    let mut rng = StdRng::seed_from_u64(0xAB);
    for case_no in 0..CASES {
        let case = random_case(&mut rng);
        let mut s1 = SearchStats::new();
        let mut s2 = SearchStats::new();
        let brute = case.seeds.nearest_batch_brute(
            &case.queries,
            case.exclude,
            Parallelism::Threads(4),
            &mut s1,
        );
        let pruned = case.seeds.nearest_batch_pruned(
            &case.queries,
            case.exclude,
            Parallelism::Threads(4),
            &mut s2,
        );
        for (q, (b, p)) in brute.iter().zip(&pruned).enumerate() {
            assert_eq!(b.1, p.1, "case {case_no}, query {q}: distances differ");
            // Seed indices may differ only on exact distance ties.
            if b.0 != p.0 {
                assert_eq!(
                    b.1, p.1,
                    "case {case_no}, query {q}: different seeds at different distances"
                );
            }
        }
        assert!(
            s2.computed <= s1.computed,
            "case {case_no}: pruning computed more distances than brute force"
        );
        assert_eq!(
            s1.computed + s1.pruned,
            s2.computed + s2.pruned,
            "case {case_no}: candidate accounting diverged"
        );
    }
}

/// Counter merging is pure u64 addition over per-chunk counters, so a
/// batch split across threads must account each candidate exactly once:
/// computed + pruned = queries x eligible seeds, in every mode.
#[test]
fn merged_counters_cover_every_candidate_exactly_once() {
    let mut rng = StdRng::seed_from_u64(0xCC);
    for _ in 0..CASES {
        let case = random_case(&mut rng);
        let queries = case.queries.len() / case.dim;
        let eligible = case.seeds.len() - usize::from(case.exclude.is_some());
        for par in MODES {
            let mut stats = SearchStats::new();
            case.seeds
                .nearest_batch_pruned(&case.queries, case.exclude, par, &mut stats);
            assert_eq!(
                stats.computed + stats.pruned,
                (queries * eligible) as u64,
                "{par:?}"
            );
        }
    }
}
