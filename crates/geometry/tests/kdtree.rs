//! Property tests for the k-d tree: k-NN and range queries must agree
//! with a brute-force scan on random inputs, including the degenerate
//! shapes that stress the median-split construction — duplicate points
//! and points equal on every coordinate.

use idb_geometry::{dist, KdTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 200;

fn brute_range(pts: &[(u64, Vec<f64>)], center: &[f64], eps: f64) -> Vec<(u64, f64)> {
    let mut out: Vec<(u64, f64)> = pts
        .iter()
        .map(|(id, p)| (*id, dist(p, center)))
        .filter(|&(_, d)| d <= eps)
        .collect();
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

fn brute_knn(pts: &[(u64, Vec<f64>)], center: &[f64], k: usize) -> Vec<(u64, f64)> {
    let mut all: Vec<(u64, f64)> = pts.iter().map(|(id, p)| (*id, dist(p, center))).collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

fn sorted(mut v: Vec<(u64, f64)>) -> Vec<(u64, f64)> {
    v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    v
}

/// Random points from three regimes: continuous (tie-free), a coarse
/// integer grid (many duplicates), and all-equal coordinates (every
/// median split is a tie).
fn random_points(rng: &mut StdRng, regime: u8) -> (usize, Vec<(u64, Vec<f64>)>) {
    let dim = rng.gen_range(1..=4);
    let n = rng.gen_range(0..=60);
    let pts = (0..n)
        .map(|i| {
            let p: Vec<f64> = match regime {
                0 => (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect(),
                1 => (0..dim).map(|_| f64::from(rng.gen_range(-2..3))).collect(),
                _ => vec![1.5; dim],
            };
            (i as u64, p)
        })
        .collect();
    (dim, pts)
}

fn random_center(rng: &mut StdRng, dim: usize) -> Vec<f64> {
    (0..dim).map(|_| rng.gen_range(-11.0..11.0)).collect()
}

#[test]
fn range_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x4D01);
    for case in 0..CASES {
        let (dim, pts) = random_points(&mut rng, (case % 3) as u8);
        let tree = KdTree::build(dim, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        assert_eq!(tree.len(), pts.len());
        for _ in 0..4 {
            let center = random_center(&mut rng, dim);
            let eps = rng.gen_range(0.0..12.0);
            let got = sorted(tree.range(&center, eps));
            let want = brute_range(&pts, &center, eps);
            assert_eq!(
                got.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                want.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                "case {case}: range members diverged"
            );
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-12, "case {case}: distance diverged");
            }
        }
    }
}

#[test]
fn knn_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x4D02);
    for case in 0..CASES {
        let (dim, pts) = random_points(&mut rng, (case % 3) as u8);
        let tree = KdTree::build(dim, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        for _ in 0..4 {
            let center = random_center(&mut rng, dim);
            let k = rng.gen_range(0..=pts.len() + 2);
            let got = sorted(tree.knn(&center, k));
            let want = brute_knn(&pts, &center, k);
            assert_eq!(got.len(), want.len(), "case {case}: k-NN size diverged");
            // Ties at the k-th distance allow different members; the
            // distance multiset is the invariant.
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.1 - w.1).abs() < 1e-12,
                    "case {case}: k-NN distances diverged ({} vs {})",
                    g.1,
                    w.1
                );
            }
        }
    }
}

/// Duplicates must all be reported by a range query centred on them.
#[test]
fn duplicate_points_are_all_found() {
    let pts: Vec<(u64, Vec<f64>)> = (0..10).map(|i| (i, vec![3.0, -1.0])).collect();
    let tree = KdTree::build(2, pts.iter().map(|(id, p)| (*id, p.as_slice())));
    let mut hits: Vec<u64> = tree
        .range(&[3.0, -1.0], 0.0)
        .iter()
        .map(|&(id, _)| id)
        .collect();
    hits.sort_unstable();
    assert_eq!(hits, (0..10).collect::<Vec<u64>>());
    let knn = tree.knn(&[3.0, -1.0], 4);
    assert_eq!(knn.len(), 4);
    assert!(knn.iter().all(|&(_, d)| d == 0.0));
}

/// All-equal coordinates: every split is degenerate, yet queries stay
/// exact and total.
#[test]
fn all_equal_coordinates_stay_exact() {
    for n in [1usize, 2, 7, 33] {
        let pts: Vec<(u64, Vec<f64>)> = (0..n as u64).map(|i| (i, vec![1.5, 1.5, 1.5])).collect();
        let tree = KdTree::build(3, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        assert_eq!(tree.range(&[1.5, 1.5, 1.5], 0.0).len(), n);
        assert_eq!(tree.range(&[0.0, 0.0, 0.0], 1.0).len(), 0);
        assert_eq!(tree.knn(&[9.0, 9.0, 9.0], n + 5).len(), n);
    }
}

/// Empty tree: no panics, empty answers.
#[test]
fn empty_tree_is_total() {
    let tree = KdTree::build(2, std::iter::empty());
    assert!(tree.is_empty());
    assert_eq!(tree.range(&[0.0, 0.0], 100.0).len(), 0);
    assert_eq!(tree.knn(&[0.0, 0.0], 3).len(), 0);
}
