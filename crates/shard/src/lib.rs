//! Sharded multi-stream service layer over the incremental data-bubble
//! maintainer.
//!
//! The service splits the point space into `V` fixed logical
//! **partitions** — each a fully independent
//! [`DurableMaintainer`](idb_core::DurableMaintainer) with its own WAL
//! epoch, checkpoint cadence, maintenance RNG and tagged observability
//! handle — and groups the partitions behind `N` **shards**: bounded
//! queues with a supervised drain loop. The split is the key design
//! decision:
//!
//! * **Partitions carry the bit-identity contract.** Routing
//!   ([`route_point`]) hashes exact coordinate bit patterns, so which
//!   maintainer owns a point depends only on the point and `V`.
//! * **Shards are pure physics.** `N` — like the thread count — changes
//!   wall-clock behavior only (queue grouping, drain parallelism,
//!   backpressure onset), never an output bit. The differential suites
//!   prove shards ∈ {1, 2, 4, 8} produce identical merged bubble sets
//!   and cluster orderings.
//!
//! Failures stay typed and local: a saturated queue sheds the
//! submission whole ([`ShardError::QueueFull`]), a persistently degraded
//! partition is quarantined by the supervisor while its siblings keep
//! serving ([`ShardError::Unavailable`]), and a crashed partition
//! restarts through the ordinary recovery path without blocking anyone.
//!
//! ```
//! use idb_core::{DurabilityConfig, MaintainerConfig, MemCheckpoints};
//! use idb_obs::Obs;
//! use idb_shard::{ShardConfig, ShardRouter};
//! use idb_store::{Batch, MemSink};
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut initial = Batch::default();
//! for _ in 0..400 {
//!     let p: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
//!     initial.inserts.push((p, Some(0)));
//! }
//! let scfg = ShardConfig::new(4).with_shards(2);
//! let (mut router, ids) = ShardRouter::create(
//!     3,
//!     &initial,
//!     &MaintainerConfig::new(10),
//!     scfg,
//!     DurabilityConfig::default(),
//!     42,
//!     &Obs::disabled(),
//!     |_| (MemSink::new(), MemCheckpoints::new()),
//! )
//! .unwrap();
//! assert_eq!(ids.len(), 400);
//!
//! let mut update = Batch::default();
//! update.deletes.push(ids[0]);
//! update.inserts.push((vec![0.1, 0.2, 0.3], Some(1)));
//! let new_ids = router.apply(&update).unwrap();
//! assert_eq!(new_ids.len(), 1);
//! ```

pub mod config;
pub mod error;
pub mod route;
pub mod router;

pub use config::{shards_from_env, shards_from_env_strict, ShardConfig, SHARDS_ENV};
pub use error::ShardError;
pub use route::{
    local_capacity_exceeded, partition_round_seed, route_point, GlobalId, LOCAL_BITS, MAX_LOCAL,
    MAX_PARTITIONS, PARTITION_BITS,
};
pub use router::{PartitionStatus, RestartReport, ShardRouter, TicketResult};
