//! Service-layer tunables and the `IDB_SHARDS` environment knob.
//!
//! Partition count is *logical* configuration — it determines which
//! maintainer owns which region of point space and therefore the
//! summarization content. Shard count is *physical* configuration — how
//! partitions are grouped behind queues and drained — and, like thread
//! count, is guaranteed not to change a single output bit. `IDB_SHARDS`
//! therefore defaults the shard count only, exactly as
//! `IDB_PARALLELISM` defaults the thread count.

use crate::route::MAX_PARTITIONS;
use idb_geometry::parallel::EnvParseError;
use idb_store::StorageBudget;

/// Environment variable defaulting the shard count.
pub const SHARDS_ENV: &str = "IDB_SHARDS";

/// Tunables of the sharded service layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardConfig {
    /// Fixed logical partition count `V` (the bit-identity *contract*:
    /// changing it changes which maintainer owns which points).
    pub partitions: u32,
    /// Shard count `N`: how many queue/supervision groups the partitions
    /// are packed into. Pure grouping — any value yields bit-identical
    /// outputs. Clamped to `1..=partitions` at construction.
    pub shards: u32,
    /// Bounded queue capacity per shard, in sub-batch entries. A
    /// submission that would overflow any target queue is shed whole
    /// with [`ShardError::QueueFull`](crate::ShardError::QueueFull).
    pub queue_capacity: usize,
    /// Consecutive degraded supervisor polls before a partition is
    /// quarantined.
    pub quarantine_after: u32,
    /// Consecutive healthy polls before a quarantined partition is
    /// released.
    pub heal_after: u32,
    /// When set, overrides the *per-partition* WAL disk budget of the
    /// [`DurabilityConfig`](idb_core::DurabilityConfig) handed to
    /// [`ShardRouter::create`](crate::ShardRouter::create) — every
    /// partition gets its own copy, so one partition exhausting its
    /// budget sheds only its own batches while siblings keep serving.
    /// `None` leaves the durability config's budget untouched.
    pub disk_budget: Option<StorageBudget>,
    /// When set, overrides the *per-partition* hot-point budget of the
    /// [`DurabilityConfig`](idb_core::DurabilityConfig) handed to
    /// [`ShardRouter::create`](crate::ShardRouter::create): each
    /// partition gets its own cold tier and keeps at most this many
    /// payloads resident, so the whole service's point residency is
    /// `partitions × hot_points` regardless of stream length. `None`
    /// leaves the durability config's own setting (ambient
    /// `IDB_HOT_POINTS` by default) untouched.
    pub hot_points: Option<Option<usize>>,
}

impl ShardConfig {
    /// A config with `partitions` logical partitions; the shard count
    /// defaults from `IDB_SHARDS` (falling back to 1), and the
    /// supervision thresholds to quarantine-after-3 / heal-after-2.
    ///
    /// # Panics
    /// Panics unless `1 <= partitions <= MAX_PARTITIONS`.
    #[must_use]
    pub fn new(partitions: u32) -> Self {
        assert!(
            (1..=MAX_PARTITIONS).contains(&partitions),
            "partitions must be in 1..={MAX_PARTITIONS}"
        );
        let shards = shards_from_env().unwrap_or(1).min(partitions);
        Self {
            partitions,
            shards,
            queue_capacity: 1024,
            quarantine_after: 3,
            heal_after: 2,
            disk_budget: None,
            hot_points: None,
        }
    }

    /// Sets the shard count (clamped to `1..=partitions`).
    #[must_use]
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.clamp(1, self.partitions);
        self
    }

    /// Sets the per-shard queue capacity (at least 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the supervision thresholds (each at least 1).
    #[must_use]
    pub fn with_supervision(mut self, quarantine_after: u32, heal_after: u32) -> Self {
        self.quarantine_after = quarantine_after.max(1);
        self.heal_after = heal_after.max(1);
        self
    }

    /// Sets the per-partition WAL disk budget (see
    /// [`ShardConfig::disk_budget`]).
    #[must_use]
    pub fn with_disk_budget(mut self, budget: StorageBudget) -> Self {
        self.disk_budget = Some(budget);
        self
    }

    /// Sets the per-partition hot-point budget (see
    /// [`ShardConfig::hot_points`]); `None` disables tiering for every
    /// partition regardless of the ambient `IDB_HOT_POINTS`.
    #[must_use]
    pub fn with_hot_points(mut self, hot_points: Option<usize>) -> Self {
        self.hot_points = Some(hot_points);
        self
    }

    /// The shard owning `partition`: contiguous balanced ranges, so a
    /// shard's partitions sit side by side and the grouping is a pure
    /// function of `(partition, partitions, shards)`.
    ///
    /// # Panics
    /// Panics if `partition` is out of range.
    #[must_use]
    pub fn shard_of(&self, partition: u32) -> u32 {
        assert!(partition < self.partitions, "partition out of range");
        ((u64::from(partition) * u64::from(self.shards)) / u64::from(self.partitions)) as u32
    }
}

/// The `IDB_SHARDS` value, if set and parseable (a positive integer up
/// to [`MAX_PARTITIONS`]); an invalid value warns **once** on stderr and
/// reads as unset, mirroring `IDB_PARALLELISM`.
#[must_use]
pub fn shards_from_env() -> Option<u32> {
    match shards_from_env_strict() {
        Ok(v) => v,
        Err(e) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("warning: {e}; falling back to 1 shard"));
            None
        }
    }
}

/// Like [`shards_from_env`], but an unparseable value is a typed error
/// instead of a warning — library callers decide the failure policy.
///
/// # Errors
/// [`EnvParseError`] when `IDB_SHARDS` is set to anything but a positive
/// integer in `1..=MAX_PARTITIONS`.
pub fn shards_from_env_strict() -> Result<Option<u32>, EnvParseError> {
    let Some(raw) = std::env::var_os(SHARDS_ENV) else {
        return Ok(None);
    };
    let text = raw.to_string_lossy();
    text.trim()
        .parse::<u32>()
        .ok()
        .filter(|&n| (1..=MAX_PARTITIONS).contains(&n))
        .map(Some)
        .ok_or_else(|| EnvParseError {
            var: SHARDS_ENV,
            value: text.into_owned(),
            expected: "a positive shard count (1..=256)",
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_contiguous_and_balanced() {
        let cfg = ShardConfig::new(8).with_shards(3);
        let owners: Vec<u32> = (0..8).map(|p| cfg.shard_of(p)).collect();
        // Non-decreasing (contiguous ranges) and covering every shard.
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        for s in 0..3 {
            let size = owners.iter().filter(|&&o| o == s).count();
            assert!((2..=3).contains(&size), "shard {s} owns {size} partitions");
        }
    }

    #[test]
    fn one_shard_owns_everything() {
        let cfg = ShardConfig::new(5);
        assert_eq!(cfg.shards, 1);
        assert!((0..5).all(|p| cfg.shard_of(p) == 0));
    }

    #[test]
    fn shards_clamp_to_partitions() {
        let cfg = ShardConfig::new(2).with_shards(100);
        assert_eq!(cfg.shards, 2);
        let cfg = ShardConfig::new(4).with_shards(0);
        assert_eq!(cfg.shards, 1);
    }

    // Env-var behavior is covered in `tests/env_knob.rs`, where the
    // process environment can be mutated without racing other tests.
}
