//! The shard router: V fault-isolated maintainer partitions behind N
//! bounded queues, with supervised quarantine and per-partition restart.
//!
//! # Determinism model
//!
//! Every piece of *state* lives in a partition: its own
//! [`DurableMaintainer`] (store, summarization, WAL epoch, checkpoint
//! cadence), its own maintenance RNG (seeded by
//! [`partition_round_seed`]), its own [`SearchStats`] and its own tagged
//! [`Obs`] handle. Shards own no state at all — a shard is a bounded
//! queue plus a drain loop over a contiguous partition range. Routing
//! ([`route_point`]) and the per-partition FIFO order are pure functions
//! of the submitted batches, so the shard count — like the thread count
//! in the rest of the codebase — can change wall-clock behavior only,
//! never an output bit. A one-partition router is the unsharded
//! [`DurableMaintainer`] verbatim: same batches, same round seeds, same
//! ids.
//!
//! # Failure model
//!
//! * **Backpressure**: a submission that would overflow any target
//!   shard's queue is shed whole with
//!   [`ShardError::QueueFull`] — nothing is enqueued, nothing is
//!   silently dropped.
//! * **Quarantine**: [`ShardRouter::poll_health`] counts consecutive
//!   degraded polls per partition; past the threshold the partition is
//!   quarantined — submissions touching it shed with
//!   [`ShardError::Unavailable`] while siblings keep serving — and each
//!   subsequent poll attempts a heal (`sync`). Enough healthy polls
//!   release it.
//! * **Crash**: [`ShardRouter::kill_partition`] drops a partition's
//!   in-memory state (keeping the durable media);
//!   [`ShardRouter::restart_partition`] rebuilds it through the ordinary
//!   [`recover_with_obs`] path. Sibling partitions never block.

use crate::config::ShardConfig;
use crate::error::ShardError;
use crate::route::{partition_round_seed, route_point, GlobalId};
use idb_clustering::merged::{optics_merged, MergedRef};
use idb_clustering::optics_bubbles::BubbleOrdering;
use idb_core::{
    recover_with_obs, Bubble, CheckpointStore, DurabilityConfig, DurableMaintainer, Health,
    IncrementalBubbles, MaintainerConfig,
};
use idb_geometry::{Parallelism, SearchStats};
use idb_obs::{EventKind, Obs};
use idb_store::{Batch, DurableSink, PointId, PointStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, VecDeque};

/// One partition: all the state the service holds for its region of
/// point space.
#[derive(Debug)]
struct PartitionSlot<S: DurableSink, C: CheckpointStore> {
    /// `None` while crashed (between kill and restart).
    maintainer: Option<DurableMaintainer<S, C>>,
    /// The maintenance round-seed stream; service-layer state, so it
    /// survives a maintainer restart (replay re-uses WAL-logged seeds
    /// and never re-draws).
    rng: StdRng,
    search: SearchStats,
    obs: Obs,
    quarantined: bool,
    consec_degraded: u32,
    consec_healthy: u32,
}

/// One queued sub-batch: a ticket's slice of work for one partition.
#[derive(Debug)]
struct QueueEntry {
    ticket: u64,
    partition: u32,
    /// Deletes as partition-local ids; inserts the routed subset.
    sub: Batch,
    /// For each insert in `sub`, its position in the client batch.
    insert_positions: Vec<u32>,
}

/// Accumulates a ticket's result while its entries drain.
#[derive(Debug)]
struct PendingTicket {
    /// Client ids in client insert order; `PointId(u32::MAX)` until the
    /// owning partition's entry applies.
    ids: Vec<PointId>,
    error: Option<ShardError>,
}

/// Supervisor view of one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStatus {
    /// Serving, durable media accepting writes.
    Healthy,
    /// Serving from memory; WAL records buffered.
    Degraded {
        /// Buffered (non-durable) WAL records.
        buffered_batches: usize,
        /// Batches shed by the bounded durability layer this epoch.
        shed_batches: u64,
    },
    /// Shedding submissions while the supervisor waits for a heal.
    Quarantined,
    /// Crashed: killed and not yet restarted.
    Offline,
}

/// What a partition restart replayed, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartReport {
    /// WAL records replayed on top of the adopted checkpoint.
    pub replayed: usize,
    /// Durable batches after recovery.
    pub batches_durable: u64,
    /// Whether a torn final WAL record was discarded.
    pub torn_tail: bool,
    /// Sequence number of the checkpoint recovery started from.
    pub checkpoint_seq: u64,
}

/// Result of one drained ticket: client ids for its inserts (in client
/// batch order) or the first typed failure among its sub-batches.
pub type TicketResult = (u64, Result<Vec<PointId>, ShardError>);

/// One shard's drain work: its first partition index, its FIFO, and its
/// contiguous slice of partition slots (carved with `split_at_mut` so a
/// worker thread owns each partition exclusively).
type ShardWork<'a, S, C> = (usize, VecDeque<QueueEntry>, &'a mut [PartitionSlot<S, C>]);

/// V fault-isolated maintainer partitions behind N bounded shard queues.
#[derive(Debug)]
pub struct ShardRouter<S: DurableSink, C: CheckpointStore> {
    dim: usize,
    scfg: ShardConfig,
    dcfg: DurabilityConfig,
    slots: Vec<PartitionSlot<S, C>>,
    /// One bounded FIFO per shard.
    queues: Vec<VecDeque<QueueEntry>>,
    pending: BTreeMap<u64, PendingTicket>,
    next_ticket: u64,
}

impl<S: DurableSink, C: CheckpointStore> ShardRouter<S, C> {
    /// Builds the service over an insert-only initial batch: points are
    /// routed to their partitions, each partition builds its own
    /// summarization (drawing from its [`partition_round_seed`]-derived
    /// RNG) and starts durable operation on the media `media(partition)`
    /// hands it. Returns the router plus the client ids of the initial
    /// inserts, in batch order.
    ///
    /// `obs` is the root observability handle; partition `p` journals
    /// through `obs.tagged(p)`.
    ///
    /// # Errors
    /// [`ShardError::Recovery`] when a partition cannot start durable
    /// operation (initial WAL header or baseline checkpoint failed).
    ///
    /// # Panics
    /// Panics if `initial` contains deletes, or a partition receives
    /// fewer points than `mconfig.num_bubbles` (as
    /// [`IncrementalBubbles::build`] does).
    #[allow(clippy::too_many_arguments)] // a constructor: each argument is one layer's config
    pub fn create(
        dim: usize,
        initial: &Batch,
        mconfig: &MaintainerConfig,
        scfg: ShardConfig,
        dcfg: DurabilityConfig,
        seed: u64,
        obs: &Obs,
        mut media: impl FnMut(u32) -> (S, C),
    ) -> Result<(Self, Vec<PointId>), ShardError> {
        assert!(
            initial.deletes.is_empty(),
            "the initial batch must be insert-only"
        );
        let mut dcfg = dcfg;
        if let Some(budget) = scfg.disk_budget {
            // Each partition owns a full copy of the durability config, so
            // the budget is enforced per partition.
            dcfg.disk_budget = budget;
        }
        if let Some(hot) = scfg.hot_points {
            // Same per-partition ownership for the hot-point budget: every
            // partition hangs its own cold tier off its own store.
            dcfg.hot_points = hot;
        }
        let partitions = scfg.partitions;
        // Route the initial population.
        let mut stores: Vec<PointStore> = (0..partitions).map(|_| PointStore::new(dim)).collect();
        let mut client_ids = Vec::with_capacity(initial.inserts.len());
        for (coords, label) in &initial.inserts {
            let p = route_point(coords, partitions);
            let local = stores[p as usize].insert(coords, *label);
            client_ids.push(
                GlobalId {
                    partition: p,
                    local,
                }
                .client_id(),
            );
        }

        // Build and start each partition.
        let mut slots = Vec::with_capacity(partitions as usize);
        for (p, store) in stores.into_iter().enumerate() {
            let p = p as u32;
            let mut rng = StdRng::seed_from_u64(partition_round_seed(seed, p));
            let mut search = SearchStats::new();
            let tagged = obs.tagged(p);
            let mut bubbles =
                IncrementalBubbles::build(&store, mconfig.clone(), &mut rng, &mut search);
            bubbles.set_obs(tagged.clone());
            let (sink, checkpoints) = media(p);
            let maintainer =
                DurableMaintainer::adopt(store, bubbles, dcfg.clone(), sink, checkpoints).map_err(
                    |source| ShardError::Recovery {
                        partition: p,
                        source,
                    },
                )?;
            slots.push(PartitionSlot {
                maintainer: Some(maintainer),
                rng,
                search,
                obs: tagged,
                quarantined: false,
                consec_degraded: 0,
                consec_healthy: 0,
            });
        }
        let queues = (0..scfg.shards).map(|_| VecDeque::new()).collect();
        Ok((
            Self {
                dim,
                scfg,
                dcfg,
                slots,
                queues,
                pending: BTreeMap::new(),
                next_ticket: 0,
            },
            client_ids,
        ))
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ShardConfig {
        &self.scfg
    }

    /// Dimensionality of the point space.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Live points across all online partitions.
    #[must_use]
    pub fn total_points(&self) -> u64 {
        self.slots
            .iter()
            .filter_map(|s| s.maintainer.as_ref())
            .map(|m| m.store().len() as u64)
            .sum()
    }

    /// Entries currently queued on `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn queue_depth(&self, shard: u32) -> usize {
        self.queues[shard as usize].len()
    }

    /// A partition's maintainer, `None` while crashed.
    ///
    /// # Panics
    /// Panics if `partition` is out of range.
    #[must_use]
    pub fn maintainer(&self, partition: u32) -> Option<&DurableMaintainer<S, C>> {
        self.slots[partition as usize].maintainer.as_ref()
    }

    /// Mutable maintainer access — the fault-injection surface (e.g.
    /// reaching a `FaultSink` through `wal_sink_mut`).
    ///
    /// # Panics
    /// Panics if `partition` is out of range.
    #[must_use]
    pub fn maintainer_mut(&mut self, partition: u32) -> Option<&mut DurableMaintainer<S, C>> {
        self.slots[partition as usize].maintainer.as_mut()
    }

    /// A partition's live bubble set, `None` while crashed.
    ///
    /// # Panics
    /// Panics if `partition` is out of range.
    #[must_use]
    pub fn partition_bubbles(&self, partition: u32) -> Option<&[Bubble]> {
        self.maintainer(partition).map(|m| m.bubbles().bubbles())
    }

    /// Routes and enqueues one client batch, returning its ticket.
    /// Sheds whole — nothing is enqueued — on any typed failure.
    ///
    /// # Errors
    /// * [`ShardError::UnknownId`] — a delete's partition field names no
    ///   partition;
    /// * [`ShardError::Unavailable`] — a touched partition is
    ///   quarantined or offline;
    /// * [`ShardError::QueueFull`] — a target shard's queue cannot take
    ///   the new entries.
    pub fn submit(&mut self, batch: &Batch) -> Result<u64, ShardError> {
        let partitions = self.scfg.partitions;
        // Split into per-partition sub-batches (BTreeMap: partition
        // order is deterministic).
        let mut subs: BTreeMap<u32, (Batch, Vec<u32>)> = BTreeMap::new();
        for &id in &batch.deletes {
            let g = GlobalId::from_client(id, partitions).ok_or(ShardError::UnknownId { id })?;
            subs.entry(g.partition).or_default().0.deletes.push(g.local);
        }
        for (pos, (coords, label)) in batch.inserts.iter().enumerate() {
            let p = route_point(coords, partitions);
            let entry = subs.entry(p).or_default();
            entry.0.inserts.push((coords.clone(), *label));
            entry.1.push(pos as u32);
        }

        // Availability: shed before touching any queue.
        for &p in subs.keys() {
            let slot = &self.slots[p as usize];
            if slot.quarantined || slot.maintainer.is_none() {
                return Err(ShardError::Unavailable { partition: p });
            }
        }
        // Id-space capacity: an insert that would grow a partition's
        // store past the packed-id local field is rejected typed up
        // front (the 24-bit ceiling used to overflow silently into the
        // partition bits).
        for (&p, (sub, _)) in &subs {
            if sub.inserts.is_empty() {
                continue;
            }
            let Some(m) = self.slots[p as usize].maintainer.as_ref() else {
                continue; // unreachable: availability checked above
            };
            let store = m.store();
            let free = store.slots() - store.len();
            if crate::local_capacity_exceeded(
                store.slots(),
                free,
                sub.deletes.len(),
                sub.inserts.len(),
            ) {
                return Err(ShardError::Capacity {
                    partition: p,
                    limit: crate::MAX_LOCAL,
                });
            }
        }
        // Backpressure: all target queues must have room for all new
        // entries, or the submission sheds whole.
        let mut extra: BTreeMap<u32, usize> = BTreeMap::new();
        for &p in subs.keys() {
            *extra.entry(self.scfg.shard_of(p)).or_default() += 1;
        }
        for (&shard, &add) in &extra {
            if self.queues[shard as usize].len() + add > self.scfg.queue_capacity {
                return Err(ShardError::QueueFull {
                    shard,
                    capacity: self.scfg.queue_capacity,
                });
            }
        }

        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.pending.insert(
            ticket,
            PendingTicket {
                ids: vec![PointId(u32::MAX); batch.inserts.len()],
                error: None,
            },
        );
        for (partition, (sub, insert_positions)) in subs {
            self.queues[self.scfg.shard_of(partition) as usize].push_back(QueueEntry {
                ticket,
                partition,
                sub,
                insert_positions,
            });
        }
        Ok(ticket)
    }

    /// Applies one queue entry to its partition and records the outcome
    /// on the pending ticket.
    fn apply_entry(
        slot: &mut PartitionSlot<S, C>,
        entry: QueueEntry,
        pending: &mut BTreeMap<u64, PendingTicket>,
    ) {
        let ticket = pending
            .get_mut(&entry.ticket)
            .expect("queued entry without a pending ticket");
        let Some(maintainer) = slot.maintainer.as_mut() else {
            // Crashed between submit and drain.
            ticket.error.get_or_insert(ShardError::Unavailable {
                partition: entry.partition,
            });
            return;
        };
        match maintainer.apply(&entry.sub, &mut slot.rng, &mut slot.search) {
            Ok(locals) => {
                for (&pos, &local) in entry.insert_positions.iter().zip(&locals) {
                    ticket.ids[pos as usize] = GlobalId {
                        partition: entry.partition,
                        local,
                    }
                    .client_id();
                }
            }
            Err(source) => {
                ticket.error.get_or_insert(ShardError::Rejected {
                    partition: entry.partition,
                    source,
                });
            }
        }
    }

    /// Drains every shard queue serially (shard 0 first) and returns the
    /// completed tickets in submission order.
    pub fn drain(&mut self) -> Vec<TicketResult> {
        for queue in &mut self.queues {
            while let Some(entry) = queue.pop_front() {
                Self::apply_entry(
                    &mut self.slots[entry.partition as usize],
                    entry,
                    &mut self.pending,
                );
            }
        }
        self.take_completed()
    }

    fn take_completed(&mut self) -> Vec<TicketResult> {
        std::mem::take(&mut self.pending)
            .into_iter()
            .map(|(ticket, p)| {
                let result = match p.error {
                    Some(e) => Err(e),
                    None => Ok(p.ids),
                };
                (ticket, result)
            })
            .collect()
    }

    /// Submits one batch and drains immediately — the synchronous
    /// convenience path. Returns the client ids of the batch's inserts,
    /// in batch order.
    ///
    /// # Errors
    /// As [`ShardRouter::submit`] and the per-partition
    /// [`ShardError::Rejected`] / [`ShardError::Unavailable`] outcomes
    /// of the drain.
    pub fn apply(&mut self, batch: &Batch) -> Result<Vec<PointId>, ShardError> {
        let ticket = self.submit(batch)?;
        let mut results = self.drain();
        let at = results
            .iter()
            .position(|(t, _)| *t == ticket)
            .expect("drained ticket must be present");
        results.swap_remove(at).1
    }

    /// Supervisor poll: reads every partition's health, advances the
    /// quarantine state machine, attempts heals on quarantined
    /// partitions, and returns the per-partition statuses.
    ///
    /// Transitions journal an [`EventKind::Quarantine`] event through
    /// the partition's tagged handle.
    pub fn poll_health(&mut self) -> Vec<PartitionStatus> {
        let (quarantine_after, heal_after) = (self.scfg.quarantine_after, self.scfg.heal_after);
        self.slots
            .iter_mut()
            .map(|slot| {
                let Some(maintainer) = slot.maintainer.as_mut() else {
                    return PartitionStatus::Offline;
                };
                // A quarantined partition gets an active heal attempt;
                // a serving one is only observed.
                let health = if slot.quarantined {
                    maintainer.sync()
                } else {
                    maintainer.health()
                };
                match health {
                    Health::Degraded {
                        buffered_batches,
                        shed_batches,
                    } => {
                        slot.consec_healthy = 0;
                        slot.consec_degraded += 1;
                        if !slot.quarantined && slot.consec_degraded >= quarantine_after {
                            slot.quarantined = true;
                            slot.obs.emit(EventKind::Quarantine { entered: true }, 0);
                        }
                        if slot.quarantined {
                            PartitionStatus::Quarantined
                        } else {
                            PartitionStatus::Degraded {
                                buffered_batches,
                                shed_batches,
                            }
                        }
                    }
                    Health::Healthy => {
                        slot.consec_degraded = 0;
                        if slot.quarantined {
                            slot.consec_healthy += 1;
                            if slot.consec_healthy >= heal_after {
                                slot.quarantined = false;
                                slot.consec_healthy = 0;
                                slot.obs.emit(EventKind::Quarantine { entered: false }, 0);
                                PartitionStatus::Healthy
                            } else {
                                PartitionStatus::Quarantined
                            }
                        } else {
                            PartitionStatus::Healthy
                        }
                    }
                }
            })
            .collect()
    }

    /// Current status of one partition without advancing the supervisor.
    ///
    /// # Panics
    /// Panics if `partition` is out of range.
    #[must_use]
    pub fn status(&self, partition: u32) -> PartitionStatus {
        let slot = &self.slots[partition as usize];
        match slot.maintainer.as_ref() {
            None => PartitionStatus::Offline,
            Some(_) if slot.quarantined => PartitionStatus::Quarantined,
            Some(m) => match m.health() {
                Health::Healthy => PartitionStatus::Healthy,
                Health::Degraded {
                    buffered_batches,
                    shed_batches,
                } => PartitionStatus::Degraded {
                    buffered_batches,
                    shed_batches,
                },
            },
        }
    }

    /// Flushes every online partition's buffered WAL records and returns
    /// the resulting healths (partition order; offline partitions are
    /// skipped).
    pub fn sync_all(&mut self) -> Vec<Health> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.maintainer.as_mut().map(DurableMaintainer::sync))
            .collect()
    }

    /// Turns structural change tracking on or off on every *online*
    /// partition (see [`DurableMaintainer::set_change_tracking`]). The
    /// output channel of delta-clustering consumers; never journaled,
    /// never persisted — a partition restarted through
    /// [`ShardRouter::restart_partition`] comes back with tracking off,
    /// which a delta consumer must treat as "everything changed".
    pub fn set_change_tracking(&mut self, on: bool) {
        for slot in &mut self.slots {
            if let Some(m) = slot.maintainer.as_mut() {
                m.set_change_tracking(on);
            }
        }
    }

    /// Simulates a partition crash: drops its in-memory state and hands
    /// back the durable media (sink and checkpoint store) for
    /// [`ShardRouter::restart_partition`]. Returns `None` if the
    /// partition is already offline. Queued work for the partition stays
    /// queued; it fails typed at the next drain and the submission can
    /// be retried after restart.
    ///
    /// # Panics
    /// Panics if `partition` is out of range.
    pub fn kill_partition(&mut self, partition: u32) -> Option<(S, C)> {
        let slot = &mut self.slots[partition as usize];
        let maintainer = slot.maintainer.take()?;
        slot.quarantined = false;
        slot.consec_degraded = 0;
        slot.consec_healthy = 0;
        let (_store, _bubbles, sink, checkpoints) = maintainer.into_parts();
        Some((sink, checkpoints))
    }

    /// Restarts a crashed partition through the ordinary recovery path:
    /// the newest usable checkpoint in `checkpoints` plus the WAL tail
    /// in `wal_bytes` rebuild the exact durable state, and the partition
    /// resumes a fresh WAL epoch on `sink`. Sibling partitions are
    /// untouched throughout.
    ///
    /// # Errors
    /// [`ShardError::Recovery`] when recovery or resume fails; the
    /// partition stays offline.
    ///
    /// # Panics
    /// Panics if `partition` is out of range or is still online.
    pub fn restart_partition(
        &mut self,
        partition: u32,
        wal_bytes: &[u8],
        sink: S,
        checkpoints: C,
    ) -> Result<RestartReport, ShardError> {
        let slot = &mut self.slots[partition as usize];
        assert!(
            slot.maintainer.is_none(),
            "partition {partition} is still online"
        );
        let recovered = recover_with_obs(wal_bytes, &checkpoints, &slot.obs)
            .map_err(|source| ShardError::Recovery { partition, source })?;
        let report = RestartReport {
            replayed: recovered.replayed,
            batches_durable: recovered.batches_durable,
            torn_tail: recovered.torn_tail,
            checkpoint_seq: recovered.checkpoint_seq,
        };
        let maintainer = DurableMaintainer::resume(recovered, self.dcfg.clone(), sink, checkpoints)
            .map_err(|source| ShardError::Recovery { partition, source })?;
        slot.maintainer = Some(maintainer);
        Ok(report)
    }

    /// One clustering pass over the union of every partition's bubbles
    /// (partition-major merge — a pure function of partition contents,
    /// independent of the shard grouping). Quarantined partitions still
    /// serve their bubbles; an offline partition fails the pass typed.
    ///
    /// # Errors
    /// [`ShardError::Unavailable`] naming the first offline partition.
    ///
    /// # Panics
    /// Panics if `min_pts == 0`.
    pub fn cluster(
        &self,
        eps: f64,
        min_pts: usize,
        par: Parallelism,
    ) -> Result<(Vec<MergedRef>, BubbleOrdering), ShardError> {
        let mut domains: Vec<&[Bubble]> = Vec::with_capacity(self.slots.len());
        for (p, slot) in self.slots.iter().enumerate() {
            let maintainer = slot.maintainer.as_ref().ok_or(ShardError::Unavailable {
                partition: p as u32,
            })?;
            domains.push(maintainer.bubbles().bubbles());
        }
        Ok(optics_merged(&domains, eps, min_pts, par))
    }
}

impl<S: DurableSink + Send, C: CheckpointStore + Send> ShardRouter<S, C> {
    /// [`ShardRouter::drain`] with the shard loops fanned out over
    /// worker threads (shard `s` on worker `s % threads`). Each shard's
    /// FIFO and each partition's state are owned by exactly one worker,
    /// so the outputs are bit-identical to the serial drain — the mode
    /// only changes wall-clock time, exactly like `Parallelism`
    /// elsewhere.
    pub fn drain_with(&mut self, par: Parallelism) -> Vec<TicketResult> {
        let threads = par.effective_threads().min(self.queues.len().max(1));
        if threads <= 1 {
            return self.drain();
        }

        // Carve the slot vector into per-shard contiguous slices.
        let shards = self.scfg.shards;
        let bounds: Vec<usize> = (0..shards)
            .map(|s| {
                // First partition owned by shard `s`: smallest p with
                // p*shards/partitions == s  ⇒  ceil(s*partitions/shards).
                (u64::from(s) * u64::from(self.scfg.partitions)).div_ceil(u64::from(shards))
                    as usize
            })
            .chain(std::iter::once(self.scfg.partitions as usize))
            .collect();
        let queues = std::mem::take(&mut self.queues);
        let mut work: Vec<ShardWork<'_, S, C>> = Vec::with_capacity(shards as usize);
        let mut rest: &mut [PartitionSlot<S, C>] = &mut self.slots;
        let mut consumed = 0usize;
        for (s, queue) in queues.into_iter().enumerate() {
            let end = bounds[s + 1];
            let (own, tail) = rest.split_at_mut(end - consumed);
            consumed = end;
            rest = tail;
            work.push((bounds[s], queue, own));
        }

        // Outcomes per shard, merged deterministically afterwards.
        type Outcome = (u64, u32, Vec<u32>, Result<Vec<PointId>, ShardError>);
        let mut buckets: Vec<Vec<(usize, Vec<Outcome>)>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            let mut lanes: Vec<Vec<ShardWork<'_, S, C>>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (s, item) in work.into_iter().enumerate() {
                lanes[s % threads].push(item);
            }
            for (lane_at, lane) in lanes.into_iter().enumerate() {
                handles.push(scope.spawn(move || {
                    let mut out: Vec<(usize, Vec<Outcome>)> = Vec::new();
                    for (start, mut queue, slots) in lane {
                        let mut shard_out: Vec<Outcome> = Vec::new();
                        while let Some(entry) = queue.pop_front() {
                            let slot = &mut slots[entry.partition as usize - start];
                            let result = match slot.maintainer.as_mut() {
                                None => Err(ShardError::Unavailable {
                                    partition: entry.partition,
                                }),
                                Some(m) => m
                                    .apply(&entry.sub, &mut slot.rng, &mut slot.search)
                                    .map_err(|source| ShardError::Rejected {
                                        partition: entry.partition,
                                        source,
                                    }),
                            };
                            shard_out.push((
                                entry.ticket,
                                entry.partition,
                                entry.insert_positions,
                                result,
                            ));
                        }
                        out.push((start, shard_out));
                    }
                    (lane_at, out)
                }));
            }
            let mut buckets: Vec<Vec<(usize, Vec<Outcome>)>> =
                (0..threads).map(|_| Vec::new()).collect();
            for handle in handles {
                let (lane_at, out) = handle.join().expect("drain worker panicked");
                buckets[lane_at] = out;
            }
            buckets
        });

        // Merge in (shard, FIFO) order — the serial drain's order.
        let mut merged: Vec<(usize, Vec<Outcome>)> = buckets.drain(..).flatten().collect();
        merged.sort_by_key(|(start, _)| *start);
        for (_, outcomes) in merged {
            for (ticket, partition, insert_positions, result) in outcomes {
                let pending = self
                    .pending
                    .get_mut(&ticket)
                    .expect("drained entry without a pending ticket");
                match result {
                    Ok(locals) => {
                        for (&pos, &local) in insert_positions.iter().zip(&locals) {
                            pending.ids[pos as usize] = GlobalId { partition, local }.client_id();
                        }
                    }
                    Err(e) => {
                        pending.error.get_or_insert(e);
                    }
                }
            }
        }
        self.queues = (0..shards).map(|_| VecDeque::new()).collect();
        self.take_completed()
    }
}
