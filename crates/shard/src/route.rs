//! Deterministic point-space partitioning.
//!
//! Every point routes to a partition by hashing its exact coordinate
//! bit patterns — FNV-1a over each `f64`'s IEEE-754 little-endian
//! bytes, reduced modulo the partition count. The hash sees *bits*, not
//! values, so routing is a pure function of the point and the partition
//! count: no floating-point comparison, no RNG, no dependence on shard
//! or thread count. That is the foundation of the shard-count
//! bit-identity guarantee — regrouping partitions into a different
//! number of shards can never move a point between maintainers.
//!
//! Ids crossing the service boundary are [`GlobalId`]s: a partition
//! index plus the id the partition's own store assigned. They pack into
//! the ordinary [`PointId`] client handle with the partition in the
//! high [`PARTITION_BITS`] bits, so single-partition deployments keep
//! client ids numerically identical to the unsharded maintainer's.

use idb_store::PointId;

/// Bits of a packed client id reserved for the partition index.
pub const PARTITION_BITS: u32 = 8;
/// Bits of a packed client id carrying the partition-local id.
pub const LOCAL_BITS: u32 = 32 - PARTITION_BITS;
/// Upper bound on the partition count (the packed-id partition field).
pub const MAX_PARTITIONS: u32 = 1 << PARTITION_BITS;
/// Upper bound on *store slots* per partition (the packed-id local
/// field): a partition whose point store would have to grow past
/// 2^24 slots can no longer pack its local ids into a client id, so
/// the router rejects such inserts up front with
/// [`ShardError::Capacity`](crate::ShardError::Capacity) instead of
/// handing out ids that alias the partition bits. Note the limit is on
/// slots (live points + free slots awaiting reuse), not on live points:
/// the store hands out the lowest free slot first, so slot count only
/// grows when a batch inserts more than it deletes.
pub const MAX_LOCAL: u32 = 1 << LOCAL_BITS;

/// Whether applying `deletes` then `inserts` to a partition store with
/// `slots` total slots (of which `free` await reuse) would force the
/// slot count past [`MAX_LOCAL`]. Deletes free their slots before
/// inserts claim any, so a batch only grows the store by what its
/// inserts cannot recycle.
#[must_use]
pub fn local_capacity_exceeded(slots: usize, free: usize, deletes: usize, inserts: usize) -> bool {
    let grown = slots + inserts.saturating_sub(free + deletes);
    grown > MAX_LOCAL as usize
}

/// FNV-1a over a byte stream (the 64-bit variant).
#[must_use]
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The partition owning `point` under a `partitions`-way split.
///
/// Negative zero is normalized to `+0.0` before hashing: `-0.0` and
/// `0.0` compare equal everywhere else in the system (distance, seeds,
/// snapshots round-trip both bit patterns faithfully), so two points
/// that no query can tell apart must never land in different
/// partitions. Compatibility note: this changes the routing of any
/// point containing a `-0.0` coordinate relative to pre-fix builds —
/// snapshots and WALs themselves are unaffected (they store exact bit
/// patterns and replay within their own partition), but a router
/// *re-created* from raw points that previously routed `-0.0` under its
/// raw bit pattern will place those points in the `+0.0` partition.
///
/// # Panics
/// Panics if `partitions` is zero or exceeds [`MAX_PARTITIONS`].
#[must_use]
pub fn route_point(point: &[f64], partitions: u32) -> u32 {
    assert!(
        (1..=MAX_PARTITIONS).contains(&partitions),
        "partitions must be in 1..={MAX_PARTITIONS}"
    );
    let h = fnv1a(point.iter().flat_map(|&x| {
        let x = if x == 0.0 { 0.0 } else { x }; // -0.0 routes as +0.0
        x.to_bits().to_le_bytes()
    }));
    (h % u64::from(partitions)) as u32
}

/// The maintenance-RNG seed for `partition` of a router seeded with
/// `seed`.
///
/// Partition 0 keeps the base seed itself — a one-partition router draws
/// exactly the round-seed stream the unsharded maintainer would — and
/// later partitions decorrelate through a splitmix64-style mix. The
/// derivation depends only on the partition index, never on the shard
/// grouping.
#[must_use]
pub fn partition_round_seed(seed: u64, partition: u32) -> u64 {
    if partition == 0 {
        return seed;
    }
    let mut z = seed ^ u64::from(partition).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A service-wide point identity: the owning partition plus the id that
/// partition's own [`PointStore`](idb_store::PointStore) assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId {
    /// The owning partition.
    pub partition: u32,
    /// The id within that partition's store.
    pub local: PointId,
}

impl GlobalId {
    /// Packs into the [`PointId`] handed to clients: partition in the
    /// high [`PARTITION_BITS`] bits, local id below. Partition 0 ids are
    /// numerically identical to their local ids, so a one-partition
    /// router hands out exactly the unsharded maintainer's ids.
    ///
    /// # Panics
    /// Panics if the partition or local id overflows its field.
    #[must_use]
    pub fn client_id(self) -> PointId {
        assert!(self.partition < MAX_PARTITIONS, "partition field overflow");
        assert!(self.local.0 < MAX_LOCAL, "local id field overflow");
        PointId((self.partition << LOCAL_BITS) | self.local.0)
    }

    /// Unpacks a client id; `None` when the partition field names a
    /// partition that does not exist under `partitions`.
    #[must_use]
    pub fn from_client(id: PointId, partitions: u32) -> Option<GlobalId> {
        let partition = id.0 >> LOCAL_BITS;
        (partition < partitions).then_some(GlobalId {
            partition,
            local: PointId(id.0 & (MAX_LOCAL - 1)),
        })
    }

    /// The 64-bit form used in point-level reachability plots:
    /// `partition` in the high word, `local` in the low word.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        (u64::from(self.partition) << 32) | u64::from(self.local.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_bit_exact() {
        let p = [1.5, -2.25, 0.0];
        let a = route_point(&p, 8);
        assert_eq!(a, route_point(&p, 8));
        assert!(a < 8);
        assert_eq!(route_point(&p, 1), 0);
    }

    #[test]
    fn negative_zero_routes_with_positive_zero() {
        // -0.0 == 0.0, and no query can distinguish them — so they must
        // never route apart, in any position, under any partition count.
        for parts in [2, 8, 251] {
            assert_eq!(
                route_point(&[0.0; 4], parts),
                route_point(&[-0.0; 4], parts)
            );
            assert_eq!(
                route_point(&[1.5, -0.0, 3.25], parts),
                route_point(&[1.5, 0.0, 3.25], parts)
            );
        }
        // Normalization touches only the zero bit pattern: denormals and
        // ordinary negatives keep routing by their exact bits.
        assert_eq!(
            route_point(&[-1.5, f64::MIN_POSITIVE / 2.0], 7),
            route_point(&[-1.5, f64::MIN_POSITIVE / 2.0], 7)
        );
    }

    #[test]
    fn local_capacity_boundary() {
        let max = MAX_LOCAL as usize;
        // Exactly at the ceiling: fine. One past: rejected.
        assert!(!local_capacity_exceeded(max - 1, 0, 0, 1));
        assert!(local_capacity_exceeded(max, 0, 0, 1));
        assert!(!local_capacity_exceeded(max, 0, 0, 0));
        // Free slots and same-batch deletes are recycled before growth.
        assert!(!local_capacity_exceeded(max, 5, 0, 5));
        assert!(local_capacity_exceeded(max, 5, 0, 6));
        assert!(!local_capacity_exceeded(max, 0, 3, 3));
        assert!(local_capacity_exceeded(max, 0, 3, 4));
    }

    #[test]
    fn routing_spreads_points() {
        let parts = 8u32;
        let mut counts = vec![0usize; parts as usize];
        for i in 0..4000 {
            let x = f64::from(i) * 0.37;
            let y = f64::from(i % 83) * 1.91;
            counts[route_point(&[x, y], parts) as usize] += 1;
        }
        for (p, &c) in counts.iter().enumerate() {
            assert!(c > 200, "partition {p} got only {c} of 4000 points");
        }
    }

    #[test]
    fn partition_zero_keeps_the_base_seed() {
        assert_eq!(partition_round_seed(99, 0), 99);
        assert_ne!(partition_round_seed(99, 1), 99);
        assert_ne!(partition_round_seed(99, 1), partition_round_seed(99, 2));
    }

    #[test]
    fn client_ids_round_trip_and_partition_zero_is_transparent() {
        let g = GlobalId {
            partition: 3,
            local: PointId(77),
        };
        let packed = g.client_id();
        assert_eq!(GlobalId::from_client(packed, 4), Some(g));
        assert_eq!(GlobalId::from_client(packed, 3), None);

        let zero = GlobalId {
            partition: 0,
            local: PointId(12345),
        };
        assert_eq!(zero.client_id(), PointId(12345));
        assert_eq!(g.as_u64(), (3u64 << 32) | 77);
    }

    #[test]
    #[should_panic(expected = "partitions must be in")]
    fn zero_partitions_is_rejected() {
        let _ = route_point(&[1.0], 0);
    }
}
