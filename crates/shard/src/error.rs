//! Typed service-layer failures.
//!
//! The router never drops work silently: every shed, rejection or
//! offline partition comes back as a [`ShardError`] naming the exact
//! shard or partition involved, so callers can retry, re-route or
//! surface the failure.

use idb_core::{RecoveryError, UpdateError};
use idb_store::PointId;
use std::fmt;

/// Why the shard router refused or failed an operation.
#[derive(Debug)]
pub enum ShardError {
    /// A shard's bounded queue is full: the submission was shed in its
    /// entirety (no partition saw any part of it). Apply backpressure —
    /// drain and retry.
    QueueFull {
        /// The saturated shard.
        shard: u32,
        /// Its queue capacity, in sub-batch entries.
        capacity: usize,
    },
    /// The batch touches a partition that is quarantined or offline;
    /// siblings keep serving, but this submission was shed whole.
    Unavailable {
        /// The unavailable partition.
        partition: u32,
    },
    /// A delete names a client id whose partition field does not exist
    /// under the router's configuration.
    UnknownId {
        /// The offending client id.
        id: PointId,
    },
    /// The batch's inserts would grow a partition's store past the
    /// packed-id local field ([`MAX_LOCAL`](crate::MAX_LOCAL) slots):
    /// the ids could no longer be packed without aliasing the partition
    /// bits, so the submission is shed whole instead of silently
    /// truncating ids. Re-route to more partitions or delete first.
    Capacity {
        /// The partition at its slot ceiling.
        partition: u32,
        /// The ceiling itself (`MAX_LOCAL`).
        limit: u32,
    },
    /// A partition's maintainer rejected its sub-batch with a typed
    /// validation error. That partition is untouched; sibling partitions
    /// of the same submission may have applied theirs (atomicity is
    /// per-partition).
    Rejected {
        /// The rejecting partition.
        partition: u32,
        /// The maintainer's validation error.
        source: UpdateError,
    },
    /// A partition restart failed inside the recovery path.
    Recovery {
        /// The partition being restarted.
        partition: u32,
        /// The recovery failure.
        source: RecoveryError,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull { shard, capacity } => {
                write!(
                    f,
                    "shard {shard} queue full (capacity {capacity}): submission shed"
                )
            }
            Self::Unavailable { partition } => {
                write!(f, "partition {partition} is quarantined or offline")
            }
            Self::UnknownId { id } => write!(f, "client id {} names no partition", id.0),
            Self::Capacity { partition, limit } => {
                write!(
                    f,
                    "partition {partition} is at its {limit}-slot id ceiling: submission shed"
                )
            }
            Self::Rejected { partition, source } => {
                write!(f, "partition {partition} rejected the batch: {source}")
            }
            Self::Recovery { partition, source } => {
                write!(f, "partition {partition} restart failed: {source}")
            }
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Rejected { source, .. } => Some(source),
            Self::Recovery { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_failing_domain() {
        let e = ShardError::QueueFull {
            shard: 2,
            capacity: 8,
        };
        assert!(e.to_string().contains("shard 2"));
        let e = ShardError::Unavailable { partition: 5 };
        assert!(e.to_string().contains("partition 5"));
        let e = ShardError::UnknownId { id: PointId(7) };
        assert!(e.to_string().contains('7'));
    }
}
