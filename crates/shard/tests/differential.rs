//! Differential suites for the sharded service layer.
//!
//! Two bit-identity contracts, each proven by byte-level comparison of
//! complete state snapshots:
//!
//! 1. **Transparency** — a one-partition router is the unsharded
//!    [`DurableMaintainer`] verbatim: same client ids, same summary
//!    bytes, same WAL bytes, same cluster ordering, batch for batch.
//! 2. **Shard-count invariance** — over a fixed partition count, every
//!    shard count in {1, 2, 4, 8} (serial or parallel drain) produces
//!    identical per-partition states, client ids and merged cluster
//!    orderings on dynamic multi-stream scenarios, with fault-injected
//!    batches rejected identically along the way.

use idb_clustering::optics_bubbles;
use idb_core::{
    DurabilityConfig, DurableMaintainer, IncrementalBubbles, MaintainerConfig, MemCheckpoints,
};
use idb_geometry::{Parallelism, SearchStats};
use idb_obs::Obs;
use idb_shard::{ShardConfig, ShardError, ShardRouter};
use idb_store::{Batch, MemSink, PointId, PointStore};
use idb_synth::{MultiStreamEngine, ScenarioEngine, ScenarioKind, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 3;
const SCENARIO_SEED: u64 = 777;
const MAINT_SEED: u64 = 42;

/// Serializes the complete observable state of one partition.
fn fingerprint(store: &PointStore, bubbles: &IncrementalBubbles) -> Vec<u8> {
    let mut bytes = Vec::new();
    store.write_snapshot(&mut bytes).expect("vec write");
    bubbles.write_snapshot(&mut bytes).expect("vec write");
    bytes
}

/// A clustering ordering reduced to comparable bits.
fn ordering_bits(order: &[usize], reachability: &[f64]) -> (Vec<usize>, Vec<u64>) {
    (
        order.to_vec(),
        reachability.iter().map(|r| r.to_bits()).collect(),
    )
}

#[test]
fn one_partition_router_is_the_plain_maintainer_verbatim() {
    let mconfig = MaintainerConfig::new(12);
    let dcfg = DurabilityConfig::default();
    let spec = ScenarioSpec::named(ScenarioKind::Random, DIM, 600, 0.10);

    // Plain run: store + maintainer driven directly.
    let mut engine_a = ScenarioEngine::new(spec.clone());
    let mut srng_a = StdRng::seed_from_u64(SCENARIO_SEED);
    let initial_a = engine_a.populate_batch(&mut srng_a);
    let mut store = PointStore::new(DIM);
    let ids_a: Vec<PointId> = initial_a
        .inserts
        .iter()
        .map(|(p, l)| store.insert(p, *l))
        .collect();
    engine_a.confirm(&ids_a);
    let mut mrng = StdRng::seed_from_u64(MAINT_SEED);
    let mut search = SearchStats::new();
    let bubbles = IncrementalBubbles::build(&store, mconfig.clone(), &mut mrng, &mut search);
    let mut plain = DurableMaintainer::adopt(
        store,
        bubbles,
        dcfg.clone(),
        MemSink::new(),
        MemCheckpoints::new(),
    )
    .expect("adopt");

    // Router run: identical scenario stream, one partition.
    let mut engine_b = ScenarioEngine::new(spec);
    let mut srng_b = StdRng::seed_from_u64(SCENARIO_SEED);
    let initial_b = engine_b.populate_batch(&mut srng_b);
    let (mut router, ids_b) = ShardRouter::create(
        DIM,
        &initial_b,
        &mconfig,
        ShardConfig::new(1),
        dcfg,
        MAINT_SEED,
        &Obs::disabled(),
        |_| (MemSink::new(), MemCheckpoints::new()),
    )
    .expect("create");
    assert_eq!(ids_a, ids_b, "initial client ids must be transparent");
    engine_b.confirm(&ids_b);

    for round in 0..12 {
        let batch_a = engine_a.plan(&mut srng_a);
        let got_a = plain
            .apply(&batch_a, &mut mrng, &mut search)
            .expect("plain apply");
        engine_a.confirm(&got_a);

        let batch_b = engine_b.plan(&mut srng_b);
        assert_eq!(batch_a, batch_b, "round {round}: scenario streams diverged");
        let got_b = router.apply(&batch_b).expect("router apply");
        engine_b.confirm(&got_b);

        assert_eq!(got_a, got_b, "round {round}: client ids diverged");
        assert_eq!(
            fingerprint(plain.store(), plain.bubbles()),
            fingerprint(
                router.maintainer(0).unwrap().store(),
                router.maintainer(0).unwrap().bubbles()
            ),
            "round {round}: state bytes diverged"
        );
    }

    // The durable artifacts are byte-identical too.
    assert_eq!(
        plain.wal_sink_mut().bytes(),
        router.maintainer_mut(0).unwrap().wal_sink_mut().bytes(),
        "WAL bytes diverged"
    );

    // And clustering through the merge path equals flat clustering.
    let flat = optics_bubbles(plain.bubbles().bubbles(), 25.0, 5);
    let (_, merged) = router
        .cluster(25.0, 5, Parallelism::Serial)
        .expect("cluster");
    assert_eq!(
        ordering_bits(&flat.order, &flat.reachability),
        ordering_bits(&merged.order, &merged.reachability),
    );
}

/// Drives one full multi-stream run at a given shard count and returns
/// every comparable artifact.
struct RunArtifacts {
    partition_states: Vec<Vec<u8>>,
    all_ids: Vec<PointId>,
    ordering: (Vec<usize>, Vec<u64>),
    fault_errors: Vec<String>,
}

fn run_multi_stream(partitions: u32, shards: u32, drain: Parallelism) -> RunArtifacts {
    let mconfig = MaintainerConfig::new(8);
    let scfg = ShardConfig::new(partitions).with_shards(shards);
    let mut engine = MultiStreamEngine::named(
        &[
            ScenarioKind::Random,
            ScenarioKind::Appear,
            ScenarioKind::Disappear,
        ],
        DIM,
        500,
        0.12,
        SCENARIO_SEED,
    );

    // One insert-only bootstrap batch: the streams' initial populations
    // concatenated in stream order.
    let stream_batches = engine.populate_batches();
    let mut initial = Batch::default();
    let mut spans = Vec::new();
    for (stream, batch) in &stream_batches {
        let start = initial.inserts.len();
        initial.inserts.extend(batch.inserts.iter().cloned());
        spans.push((*stream, start, initial.inserts.len()));
    }
    let (mut router, ids) = ShardRouter::create(
        DIM,
        &initial,
        &mconfig,
        scfg,
        DurabilityConfig::default(),
        MAINT_SEED,
        &Obs::disabled(),
        |_| (MemSink::new(), MemCheckpoints::new()),
    )
    .expect("create");
    let mut all_ids = ids.clone();
    for &(stream, start, end) in &spans {
        engine.confirm(stream, &ids[start..end]);
    }

    // Interleaved dynamic updates, with malformed batches injected every
    // few rounds — each typed rejection must be identical across runs and
    // must leave no trace in any partition. (Single-fault batches: with
    // per-partition atomicity, only an all-faulty batch is guaranteed to
    // leave every partition untouched.)
    let mut fault_errors = Vec::new();
    for round in 0..18 {
        if round % 6 == 5 {
            let bad = if round % 12 == 5 {
                // A NaN insert: routed, rejected by its partition's
                // validator as a typed UpdateError.
                Batch {
                    deletes: Vec::new(),
                    inserts: vec![(vec![f64::NAN; DIM], None)],
                }
            } else {
                // A delete whose partition field names no partition:
                // shed at the routing boundary before any queue.
                Batch {
                    deletes: vec![PointId(u32::MAX)],
                    inserts: Vec::new(),
                }
            };
            let before: Vec<Vec<u8>> = (0..partitions)
                .map(|p| {
                    let m = router.maintainer(p).unwrap();
                    fingerprint(m.store(), m.bubbles())
                })
                .collect();
            let err = router
                .apply(&bad)
                .expect_err("faulty batch must be rejected");
            assert!(matches!(
                err,
                ShardError::Rejected { .. } | ShardError::UnknownId { .. }
            ));
            fault_errors.push(err.to_string());
            for (p, prior) in before.iter().enumerate() {
                let m = router.maintainer(p as u32).unwrap();
                assert_eq!(
                    *prior,
                    fingerprint(m.store(), m.bubbles()),
                    "round {round}: rejected batch touched partition {p}"
                );
            }
            continue;
        }
        let (stream, batch) = engine.plan_next().expect("live stream");
        let ticket = router.submit(&batch).expect("submit");
        let mut results = router.drain_with(drain);
        assert_eq!(results.len(), 1);
        let (got_ticket, result) = results.pop().unwrap();
        assert_eq!(got_ticket, ticket);
        let got = result.expect("apply");
        engine.confirm(stream, &got);
        all_ids.extend_from_slice(&got);
    }

    let partition_states = (0..partitions)
        .map(|p| {
            let m = router.maintainer(p).unwrap();
            fingerprint(m.store(), m.bubbles())
        })
        .collect();
    let (_, ordering) = router.cluster(25.0, 5, drain).expect("cluster");
    RunArtifacts {
        partition_states,
        all_ids,
        ordering: ordering_bits(&ordering.order, &ordering.reachability),
        fault_errors,
    }
}

#[test]
fn shard_count_is_a_pure_wall_clock_knob() {
    let reference = run_multi_stream(8, 1, Parallelism::Serial);
    assert!(
        !reference.fault_errors.is_empty(),
        "the run must exercise fault-injected batches"
    );
    for shards in [2u32, 4, 8] {
        let run = run_multi_stream(8, shards, Parallelism::Serial);
        assert_eq!(
            reference.partition_states, run.partition_states,
            "{shards} shards: partition state bytes diverged"
        );
        assert_eq!(
            reference.all_ids, run.all_ids,
            "{shards} shards: ids diverged"
        );
        assert_eq!(
            reference.ordering, run.ordering,
            "{shards} shards: cluster ordering diverged"
        );
        assert_eq!(
            reference.fault_errors, run.fault_errors,
            "{shards} shards: fault rejections diverged"
        );
    }
}

#[test]
fn parallel_drain_is_bit_identical_to_serial() {
    let serial = run_multi_stream(8, 4, Parallelism::Serial);
    let threaded = run_multi_stream(8, 4, Parallelism::Threads(4));
    assert_eq!(serial.partition_states, threaded.partition_states);
    assert_eq!(serial.all_ids, threaded.all_ids);
    assert_eq!(serial.ordering, threaded.ordering);
    assert_eq!(serial.fault_errors, threaded.fault_errors);
}

#[test]
fn partition_count_is_the_logical_contract_not_the_shard_count() {
    // Sanity check of the design statement: changing V *does* change
    // ownership (states differ), while the suites above prove changing N
    // never does.
    let v4 = run_multi_stream(4, 1, Parallelism::Serial);
    let v8 = run_multi_stream(8, 1, Parallelism::Serial);
    assert_ne!(v4.partition_states.len(), v8.partition_states.len());
    assert_eq!(v4.all_ids.len(), v8.all_ids.len(), "same update stream");
}
