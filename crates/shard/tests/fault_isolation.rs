//! Fault-isolation suites for the sharded service layer.
//!
//! The contract under test: a fault in one partition — a dying WAL sink,
//! a crash — never leaks outside it. Siblings keep serving, the
//! supervisor quarantines and heals the sick partition, a crashed one
//! restarts through ordinary recovery, and once the dust settles the
//! system state is **bit-identical** to a run where the fault never
//! happened.

use idb_core::{DurabilityConfig, MaintainerConfig, MemCheckpoints, UpdateError};
use idb_geometry::Parallelism;
use idb_obs::{check_journal_sharded, Event, EventKind, Obs, RingRecorder};
use idb_shard::{route_point, GlobalId, PartitionStatus, ShardConfig, ShardError, ShardRouter};
use idb_store::segment::{MemSegments, SegmentedSink};
use idb_store::{Batch, MemSink, PointId, StorageBudget, StorageError};
use idb_synth::FaultSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const DIM: usize = 3;
const PARTITIONS: u32 = 4;
const TARGET: u32 = 1;

fn random_point<R: Rng + ?Sized>(rng: &mut R) -> Vec<f64> {
    (0..DIM).map(|_| rng.gen_range(0.0..100.0)).collect()
}

/// A point guaranteed to route — or not — to `target`.
fn point_routing<R: Rng + ?Sized>(rng: &mut R, target: u32, want: bool) -> Vec<f64> {
    loop {
        let p = random_point(rng);
        if (route_point(&p, PARTITIONS) == target) == want {
            return p;
        }
    }
}

fn initial_batch<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Batch {
    Batch {
        deletes: Vec::new(),
        inserts: (0..n).map(|_| (random_point(rng), Some(0))).collect(),
    }
}

/// A mixed update: fresh inserts plus deletes taken from the pool's
/// cursor (each id is consumed at *construction* time, so a shed batch
/// can be re-submitted later without double-deleting).
fn mixed_batch<R: Rng + ?Sized>(
    rng: &mut R,
    live: &[PointId],
    cursor: &mut usize,
    inserts: usize,
    deletes: usize,
) -> Batch {
    let deletes: Vec<PointId> = live[*cursor..*cursor + deletes].to_vec();
    *cursor += deletes.len();
    Batch {
        deletes,
        inserts: (0..inserts).map(|_| (random_point(rng), Some(1))).collect(),
    }
}

/// Serialized state of every partition, in partition order.
fn all_fingerprints<S, C>(router: &ShardRouter<S, C>) -> Vec<Vec<u8>>
where
    S: idb_store::DurableSink,
    C: idb_core::CheckpointStore,
{
    (0..router.config().partitions)
        .map(|p| {
            let m = router.maintainer(p).expect("partition online");
            let mut bytes = Vec::new();
            m.store().write_snapshot(&mut bytes).expect("vec write");
            m.bubbles().write_snapshot(&mut bytes).expect("vec write");
            bytes
        })
        .collect()
}

struct SinkFaultRun {
    fingerprints: Vec<Vec<u8>>,
    wal_bytes: Vec<Vec<u8>>,
    order_bits: (Vec<usize>, Vec<u64>),
    events: Vec<Event>,
}

/// The full sink-fault choreography. With `fault` off, the same batches
/// apply in the same effective order with no faults and no supervision —
/// the bit-identity reference.
fn sink_fault_run(fault: bool) -> SinkFaultRun {
    let ring = Arc::new(RingRecorder::new());
    let obs = Obs::with_recorder(ring.clone());
    let scfg = ShardConfig::new(PARTITIONS)
        .with_shards(2)
        .with_supervision(2, 2);
    let mut brng = StdRng::seed_from_u64(99);
    let (mut router, mut live) = ShardRouter::create(
        DIM,
        &initial_batch(&mut brng, 600),
        &MaintainerConfig::new(10),
        scfg,
        DurabilityConfig::default(),
        4242,
        &obs,
        |_| (FaultSink::new(), MemCheckpoints::new()),
    )
    .expect("create");
    let mut cursor = 0usize;

    // Two ordinary rounds.
    for _ in 0..2 {
        let batch = mixed_batch(&mut brng, &live, &mut cursor, 20, 5);
        live.extend(router.apply(&batch).expect("apply"));
    }

    // The target partition's sink dies.
    if fault {
        let sink = router
            .maintainer_mut(TARGET)
            .expect("online")
            .wal_sink_mut();
        sink.fail_appends = 1000;
        sink.fail_syncs = 1000;
    }

    // The next round still *applies* (in memory) but leaves the target
    // degraded; siblings are untouched.
    let b3 = mixed_batch(&mut brng, &live, &mut cursor, 20, 5);
    live.extend(router.apply(&b3).expect("apply"));
    if fault {
        assert!(matches!(
            router.status(TARGET),
            PartitionStatus::Degraded { buffered_batches, .. } if buffered_batches > 0
        ));
        // Two degraded polls quarantine the target; every sibling stays
        // healthy through both.
        for (poll, expect) in [
            (
                1,
                PartitionStatus::Degraded {
                    buffered_batches: 1,
                    shed_batches: 0,
                },
            ),
            (2, PartitionStatus::Quarantined),
        ] {
            let statuses = router.poll_health();
            assert_eq!(statuses[TARGET as usize], expect, "poll {poll}");
            for (p, s) in statuses.iter().enumerate() {
                if p != TARGET as usize {
                    assert_eq!(*s, PartitionStatus::Healthy, "poll {poll}, sibling {p}");
                }
            }
        }
    }

    // Two rounds that touch the quarantined partition: shed whole with a
    // typed error, buffered client-side.
    let b4 = mixed_batch(&mut brng, &live, &mut cursor, 20, 5);
    let b5 = mixed_batch(&mut brng, &live, &mut cursor, 20, 5);
    if fault {
        for b in [&b4, &b5] {
            match router.submit(b) {
                Err(ShardError::Unavailable { partition }) => assert_eq!(partition, TARGET),
                other => panic!("expected Unavailable, got {other:?}"),
            }
        }
    }

    // A sibling-only round serves while the target is quarantined.
    let sibling_batch = Batch {
        deletes: Vec::new(),
        inserts: (0..12)
            .map(|_| (point_routing(&mut brng, TARGET, false), Some(2)))
            .collect(),
    };
    live.extend(router.apply(&sibling_batch).expect("siblings must serve"));

    // The sink heals; two healthy polls release the quarantine.
    if fault {
        router
            .maintainer_mut(TARGET)
            .expect("online")
            .wal_sink_mut()
            .heal();
        let statuses = router.poll_health();
        assert_eq!(statuses[TARGET as usize], PartitionStatus::Quarantined);
        let statuses = router.poll_health();
        assert_eq!(statuses[TARGET as usize], PartitionStatus::Healthy);
    }

    // The buffered rounds land, in order, then one more ordinary round.
    live.extend(router.apply(&b4).expect("apply after heal"));
    live.extend(router.apply(&b5).expect("apply after heal"));
    let b6 = mixed_batch(&mut brng, &live, &mut cursor, 20, 5);
    live.extend(router.apply(&b6).expect("apply"));

    router.sync_all();
    let fingerprints = all_fingerprints(&router);
    let wal_bytes = (0..PARTITIONS)
        .map(|p| {
            router
                .maintainer_mut(p)
                .unwrap()
                .wal_sink_mut()
                .bytes()
                .to_vec()
        })
        .collect();
    let (_, ordering) = router
        .cluster(25.0, 5, Parallelism::Serial)
        .expect("cluster");
    SinkFaultRun {
        fingerprints,
        wal_bytes,
        order_bits: (
            ordering.order.clone(),
            ordering.reachability.iter().map(|r| r.to_bits()).collect(),
        ),
        events: ring.events(),
    }
}

#[test]
fn sink_fault_quarantines_heals_and_reconverges_bit_identically() {
    let faulted = sink_fault_run(true);
    let clean = sink_fault_run(false);
    assert_eq!(
        faulted.fingerprints, clean.fingerprints,
        "post-heal state must equal the never-faulted run"
    );
    assert_eq!(
        faulted.wal_bytes, clean.wal_bytes,
        "post-heal WAL bytes must equal the never-faulted run"
    );
    assert_eq!(faulted.order_bits, clean.order_bits);

    // The journal tells the story, demultiplexed per partition: the
    // quarantine entry/exit and every sink fault carry the target's tag
    // and no one else's.
    let quarantines: Vec<&Event> = faulted
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Quarantine { .. }))
        .collect();
    assert_eq!(quarantines.len(), 2, "one entry, one exit");
    assert!(matches!(
        quarantines[0].kind,
        EventKind::Quarantine { entered: true }
    ));
    assert!(matches!(
        quarantines[1].kind,
        EventKind::Quarantine { entered: false }
    ));
    for e in &quarantines {
        assert_eq!(e.shard, Some(TARGET));
    }
    for e in &faulted.events {
        if matches!(e.kind, EventKind::SinkFault { .. }) {
            assert_eq!(
                e.shard,
                Some(TARGET),
                "sink faults must carry the target tag"
            );
        }
    }
    check_journal_sharded(&faulted.events).expect("sharded journal invariants");

    // The clean run saw no quarantine and no faults at all.
    assert!(!clean.events.iter().any(|e| matches!(
        e.kind,
        EventKind::Quarantine { .. } | EventKind::SinkFault { .. }
    )));
}

/// The crash choreography. With `crash` off, the same batches apply in
/// the same effective order (the doomed round is still *constructed*, to
/// keep the RNG aligned, but never applied — in the crash run it is shed
/// whole).
fn crash_run(crash: bool) -> Vec<Vec<u8>> {
    let mut brng = StdRng::seed_from_u64(321);
    let (mut router, mut live) = ShardRouter::create(
        DIM,
        &initial_batch(&mut brng, 600),
        &MaintainerConfig::new(10),
        ShardConfig::new(PARTITIONS).with_shards(2),
        DurabilityConfig::default(),
        4242,
        &Obs::disabled(),
        |_| (MemSink::new(), MemCheckpoints::new()),
    )
    .expect("create");
    let mut cursor = 0usize;

    for _ in 0..3 {
        let batch = mixed_batch(&mut brng, &live, &mut cursor, 20, 5);
        live.extend(router.apply(&batch).expect("apply"));
    }
    router.sync_all();
    let pre_kill = all_fingerprints(&router);

    let doomed = mixed_batch(&mut brng, &live, &mut cursor, 20, 5);
    if crash {
        let (sink, checkpoints) = router.kill_partition(TARGET).expect("was online");
        assert_eq!(router.status(TARGET), PartitionStatus::Offline);
        assert!(router.kill_partition(TARGET).is_none(), "already offline");

        // Work touching the dead partition fails typed; so does a
        // clustering pass over the incomplete system.
        match router.submit(&doomed) {
            Err(ShardError::Unavailable { partition }) => assert_eq!(partition, TARGET),
            other => panic!("expected Unavailable, got {other:?}"),
        }
        assert!(matches!(
            router.cluster(25.0, 5, Parallelism::Serial),
            Err(ShardError::Unavailable { partition }) if partition == TARGET
        ));

        // Siblings keep serving while the partition is down.
        let sibling_batch = Batch {
            deletes: Vec::new(),
            inserts: (0..12)
                .map(|_| (point_routing(&mut brng, TARGET, false), Some(2)))
                .collect(),
        };
        live.extend(router.apply(&sibling_batch).expect("siblings must serve"));

        // Restart through ordinary recovery: the WAL the sink holds plus
        // the checkpoints rebuild the exact pre-crash state.
        let wal = sink.bytes().to_vec();
        let report = router
            .restart_partition(TARGET, &wal, sink, checkpoints)
            .expect("restart");
        assert!(!report.torn_tail, "the sink was synced before the kill");
        assert_eq!(
            all_fingerprints(&router)[TARGET as usize],
            pre_kill[TARGET as usize],
            "recovery must rebuild the exact pre-crash partition"
        );
    } else {
        // Reference: the doomed round simply never happens; the sibling
        // round does.
        let sibling_batch = Batch {
            deletes: Vec::new(),
            inserts: (0..12)
                .map(|_| (point_routing(&mut brng, TARGET, false), Some(2)))
                .collect(),
        };
        live.extend(router.apply(&sibling_batch).expect("apply"));
    }

    // Normal service resumes across every partition.
    let after = mixed_batch(&mut brng, &live, &mut cursor, 20, 5);
    live.extend(router.apply(&after).expect("apply"));
    router
        .cluster(25.0, 5, Parallelism::Serial)
        .expect("cluster");
    router.sync_all();
    all_fingerprints(&router)
}

#[test]
fn crashed_partition_restarts_without_touching_siblings() {
    assert_eq!(
        crash_run(true),
        crash_run(false),
        "post-restart state must equal the never-crashed run"
    );
}

#[test]
fn queued_work_for_a_crashed_partition_fails_typed() {
    let mut brng = StdRng::seed_from_u64(7);
    let (mut router, _ids) = ShardRouter::create(
        DIM,
        &initial_batch(&mut brng, 400),
        &MaintainerConfig::new(10),
        ShardConfig::new(2).with_shards(2),
        DurabilityConfig::default(),
        1,
        &Obs::disabled(),
        |_| (MemSink::new(), MemCheckpoints::new()),
    )
    .expect("create");

    // A batch routed (partly) to partition 1, queued but not drained.
    let batch = Batch {
        deletes: Vec::new(),
        inserts: vec![
            (point_routing(&mut brng, 1, true), None),
            (point_routing(&mut brng, 1, false), None),
        ],
    };
    let ticket = router.submit(&batch).expect("submit");
    let _ = router.kill_partition(1).expect("was online");
    let results = router.drain();
    let (got, result) = &results[0];
    assert_eq!(*got, ticket);
    assert!(
        matches!(result, Err(ShardError::Unavailable { partition: 1 })),
        "queued work for the dead partition must fail typed, got {result:?}"
    );
}

#[test]
fn saturated_queue_sheds_whole_and_recovers_after_drain() {
    let mut brng = StdRng::seed_from_u64(11);
    let (mut router, _ids) = ShardRouter::create(
        DIM,
        &initial_batch(&mut brng, 400),
        &MaintainerConfig::new(10),
        ShardConfig::new(2).with_shards(2).with_queue_capacity(2),
        DurabilityConfig::default(),
        1,
        &Obs::disabled(),
        |_| (MemSink::new(), MemCheckpoints::new()),
    )
    .expect("create");

    let to_zero = |rng: &mut StdRng| Batch {
        deletes: Vec::new(),
        inserts: vec![(point_routing(rng, 0, true), None)],
    };
    let t1 = router.submit(&to_zero(&mut brng)).expect("submit 1");
    let t2 = router.submit(&to_zero(&mut brng)).expect("submit 2");
    let third = to_zero(&mut brng);
    match router.submit(&third) {
        Err(ShardError::QueueFull { shard, capacity }) => {
            assert_eq!(shard, 0);
            assert_eq!(capacity, 2);
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // The sibling shard's queue is unaffected by the saturation.
    let t3 = router
        .submit(&Batch {
            deletes: Vec::new(),
            inserts: vec![(point_routing(&mut brng, 1, true), None)],
        })
        .expect("sibling shard must accept");

    // Draining frees the queue; every accepted ticket resolves and the
    // shed batch goes through on retry.
    let results = router.drain();
    let tickets: Vec<u64> = results.iter().map(|(t, _)| *t).collect();
    assert_eq!(tickets, vec![t1, t2, t3]);
    for (_, r) in &results {
        assert!(r.is_ok());
    }
    router.apply(&third).expect("retry after drain");
}

#[test]
fn unknown_delete_ids_are_rejected_at_the_routing_boundary() {
    let mut brng = StdRng::seed_from_u64(13);
    let (mut router, ids) = ShardRouter::create(
        DIM,
        &initial_batch(&mut brng, 400),
        &MaintainerConfig::new(10),
        ShardConfig::new(2),
        DurabilityConfig::default(),
        1,
        &Obs::disabled(),
        |_| (MemSink::new(), MemCheckpoints::new()),
    )
    .expect("create");

    // A client id whose partition field names partition 200: shed before
    // any queue sees it.
    let bogus = GlobalId {
        partition: 200,
        local: PointId(3),
    }
    .client_id();
    let batch = Batch {
        deletes: vec![ids[0], bogus],
        inserts: Vec::new(),
    };
    match router.submit(&batch) {
        Err(ShardError::UnknownId { id }) => assert_eq!(id, bogus),
        other => panic!("expected UnknownId, got {other:?}"),
    }
    // The valid half of the shed batch is still live and deletable.
    router
        .apply(&Batch {
            deletes: vec![ids[0]],
            inserts: Vec::new(),
        })
        .expect("valid delete");
}

/// One partition exhausts its disk budget; its submissions shed with a
/// typed [`StorageError::BudgetExceeded`] and exact rollback, while every
/// sibling keeps serving Healthy throughout.
///
/// Each partition writes a segmented WAL whose segment budget is larger
/// than the disk budget, so the active segment can never seal and
/// compaction cannot reclaim a byte: the bounded-degradation ladder
/// (compact, then checkpoint, then shed) is forced all the way down on
/// the flooded partition only.
#[test]
fn disk_budget_exhaustion_is_partition_local() {
    let obs = Obs::default();
    const BUDGET: u64 = 64 * 1024;
    let scfg = ShardConfig::new(PARTITIONS)
        .with_shards(2)
        .with_disk_budget(StorageBudget::bytes(BUDGET));
    let mut brng = StdRng::seed_from_u64(907);
    let (mut router, _live) = ShardRouter::create(
        DIM,
        &initial_batch(&mut brng, 600),
        &MaintainerConfig::new(10),
        scfg,
        DurabilityConfig::default(),
        907,
        &obs,
        // Segment budget 1 MiB > disk budget: rotation never fires, so the
        // live footprint is exactly the unreclaimable active segment.
        |_| {
            (
                SegmentedSink::fresh(MemSegments::new(), 1 << 20).expect("fresh chain"),
                MemCheckpoints::new(),
            )
        },
    )
    .expect("create");

    // Flood only the target partition until its live WAL crosses the
    // budget and the maintainer sheds.
    let mut sheds = 0u64;
    for round in 0..200 {
        let flood = Batch {
            deletes: Vec::new(),
            inserts: (0..200)
                .map(|_| (point_routing(&mut brng, TARGET, true), Some(3)))
                .collect(),
        };
        let before = all_fingerprints(&router);
        match router.apply(&flood) {
            Ok(_) => {
                let live = router
                    .maintainer(TARGET)
                    .expect("online")
                    .live_wal_bytes()
                    .expect("segmented sink reports live bytes");
                assert!(
                    live <= BUDGET + 64 * 1024,
                    "round {round}: accepted batch left live={live} far over budget"
                );
            }
            Err(ShardError::Rejected { partition, source }) => {
                assert_eq!(partition, TARGET, "only the flooded partition sheds");
                match source {
                    UpdateError::Storage(StorageError::BudgetExceeded { live_bytes, budget }) => {
                        assert_eq!(budget, BUDGET);
                        assert!(live_bytes > budget);
                    }
                    other => panic!("expected BudgetExceeded, got {other:?}"),
                }
                // Shedding is a pure rejection: no partition moved.
                assert_eq!(
                    all_fingerprints(&router),
                    before,
                    "shed batch must roll back exactly"
                );
                sheds += 1;
                if sheds == 2 {
                    break;
                }
            }
            Err(other) => panic!("unexpected shard error: {other:?}"),
        }
    }
    assert_eq!(sheds, 2, "flood never breached the disk budget");

    // The flooded partition reports Degraded with its shed count; every
    // sibling is Healthy.
    match router.status(TARGET) {
        PartitionStatus::Degraded { shed_batches, .. } => assert_eq!(shed_batches, 2),
        other => panic!("expected Degraded target, got {other:?}"),
    }
    for p in 0..PARTITIONS {
        if p != TARGET {
            assert_eq!(
                router.status(p),
                PartitionStatus::Healthy,
                "sibling {p} must stay healthy"
            );
            let live = router
                .maintainer(p)
                .expect("online")
                .live_wal_bytes()
                .expect("live bytes");
            assert!(live <= BUDGET, "sibling {p} is nowhere near its budget");
        }
    }

    // Siblings keep serving: a sibling-only round lands while the target
    // is over budget.
    let sibling_batch = Batch {
        deletes: Vec::new(),
        inserts: (0..20)
            .map(|_| (point_routing(&mut brng, TARGET, false), Some(4)))
            .collect(),
    };
    router.apply(&sibling_batch).expect("siblings must serve");
    for p in 0..PARTITIONS {
        if p != TARGET {
            assert_eq!(router.status(p), PartitionStatus::Healthy);
        }
    }
}
