//! The `IDB_SHARDS` environment knob.
//!
//! One test function drives every case sequentially — the process
//! environment is global, so the cases must not run as separate
//! (parallel) tests.

use idb_shard::{shards_from_env, shards_from_env_strict, ShardConfig, SHARDS_ENV};

#[test]
fn idb_shards_defaults_clamps_and_rejects() {
    let saved = std::env::var_os(SHARDS_ENV);

    // Unset: no opinion — configs default to one shard.
    std::env::remove_var(SHARDS_ENV);
    assert_eq!(shards_from_env(), None);
    assert_eq!(shards_from_env_strict().unwrap(), None);
    assert_eq!(ShardConfig::new(8).shards, 1);

    // A valid value flows into new configs, clamped to the partition
    // count.
    std::env::set_var(SHARDS_ENV, "4");
    assert_eq!(shards_from_env(), Some(4));
    assert_eq!(ShardConfig::new(8).shards, 4);
    assert_eq!(ShardConfig::new(2).shards, 2, "clamped to partitions");

    // Whitespace is tolerated, like IDB_PARALLELISM.
    std::env::set_var(SHARDS_ENV, "  6  ");
    assert_eq!(shards_from_env(), Some(6));

    // Invalid values: the strict reader returns a typed error naming the
    // variable and the offending value; the lenient reader falls back to
    // unset (warning once on stderr).
    for bad in ["0", "-3", "many", "1.5", "257", ""] {
        std::env::set_var(SHARDS_ENV, bad);
        let err = shards_from_env_strict().expect_err(bad);
        assert_eq!(err.var, SHARDS_ENV);
        assert_eq!(err.value, bad);
        assert_eq!(shards_from_env(), None, "lenient fallback for {bad:?}");
        assert_eq!(ShardConfig::new(8).shards, 1, "config fallback for {bad:?}");
    }

    // The in-range boundary values parse.
    std::env::set_var(SHARDS_ENV, "1");
    assert_eq!(shards_from_env(), Some(1));
    std::env::set_var(SHARDS_ENV, "256");
    assert_eq!(shards_from_env(), Some(256));

    // An explicit with_shards always wins over the environment.
    std::env::set_var(SHARDS_ENV, "2");
    assert_eq!(ShardConfig::new(8).with_shards(5).shards, 5);

    match saved {
        Some(v) => std::env::set_var(SHARDS_ENV, v),
        None => std::env::remove_var(SHARDS_ENV),
    }
}
