//! Static Gaussian-mixture datasets with ground-truth labels.
//!
//! A [`MixtureModel`] describes the standing data distribution: a list of
//! isotropic Gaussian clusters plus a uniform-noise fraction over a bounding
//! hypercube. It can populate a fresh [`PointStore`] and draw individual
//! points — the scenario engine uses the latter to generate insertions that
//! follow the current distribution.

use crate::gauss::{gaussian_point, uniform_point};
use idb_store::{Label, PointStore};
use rand::Rng;

/// One isotropic Gaussian cluster.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    /// Cluster center.
    pub mean: Vec<f64>,
    /// Per-axis standard deviation.
    pub sigma: f64,
    /// Relative weight among clusters (need not sum to 1; normalized on use).
    pub weight: f64,
}

impl ClusterModel {
    /// Convenience constructor with weight 1.
    #[must_use]
    pub fn new(mean: Vec<f64>, sigma: f64) -> Self {
        Self {
            mean,
            sigma,
            weight: 1.0,
        }
    }

    /// Draws one point from this cluster.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        gaussian_point(rng, &self.mean, self.sigma)
    }
}

/// A Gaussian mixture plus uniform background noise.
///
/// # Examples
/// ```
/// use idb_synth::{ClusterModel, MixtureModel};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let model = MixtureModel::new(
///     2,
///     vec![ClusterModel::new(vec![10.0, 10.0], 1.0)],
///     0.0,
///     (0.0, 20.0),
/// );
/// let mut rng = StdRng::seed_from_u64(1);
/// let store = model.populate(500, &mut rng);
/// assert_eq!(store.len(), 500);
/// assert!(store.iter().all(|(_, _, label)| label == Some(0)));
/// ```
#[derive(Debug, Clone)]
pub struct MixtureModel {
    /// Dimensionality of all points.
    pub dim: usize,
    /// The clusters; labels are their indices.
    pub clusters: Vec<ClusterModel>,
    /// Fraction of generated points that are uniform noise (label `None`).
    pub noise_fraction: f64,
    /// Noise bounding hypercube `[lo, hi]^dim`.
    pub bounds: (f64, f64),
}

impl MixtureModel {
    /// Creates a mixture over `[lo, hi]^dim` with the given clusters.
    ///
    /// # Panics
    /// Panics if `dim == 0`, a cluster has the wrong dimensionality,
    /// `noise_fraction` is outside `[0, 1]`, or `lo >= hi`.
    #[must_use]
    pub fn new(
        dim: usize,
        clusters: Vec<ClusterModel>,
        noise_fraction: f64,
        bounds: (f64, f64),
    ) -> Self {
        assert!(dim > 0, "MixtureModel requires dim > 0");
        assert!(
            (0.0..=1.0).contains(&noise_fraction),
            "noise_fraction must be in [0, 1]"
        );
        assert!(bounds.0 < bounds.1, "invalid bounds");
        for c in &clusters {
            assert_eq!(c.mean.len(), dim, "cluster dimensionality mismatch");
            assert!(c.sigma > 0.0, "cluster sigma must be positive");
            assert!(c.weight > 0.0, "cluster weight must be positive");
        }
        Self {
            dim,
            clusters,
            noise_fraction,
            bounds,
        }
    }

    /// Draws one labeled point: noise with probability `noise_fraction`,
    /// otherwise from a weight-proportional cluster.
    ///
    /// Returns `(coordinates, label)`; a mixture with no clusters always
    /// produces noise.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (Vec<f64>, Label) {
        if self.clusters.is_empty() || rng.gen::<f64>() < self.noise_fraction {
            (
                uniform_point(rng, self.dim, self.bounds.0, self.bounds.1),
                None,
            )
        } else {
            let idx = self.pick_cluster(rng);
            (self.clusters[idx].sample(rng), Some(idx as u32))
        }
    }

    /// Weight-proportional cluster index.
    fn pick_cluster<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total: f64 = self.clusters.iter().map(|c| c.weight).sum();
        let mut t = rng.gen::<f64>() * total;
        for (i, c) in self.clusters.iter().enumerate() {
            t -= c.weight;
            if t <= 0.0 {
                return i;
            }
        }
        self.clusters.len() - 1
    }

    /// Populates a fresh store with `n` labeled points from the mixture.
    pub fn populate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> PointStore {
        let mut store = PointStore::with_capacity(self.dim, n);
        for _ in 0..n {
            let (p, label) = self.sample(rng);
            store.insert(&p, label);
        }
        store
    }

    /// Lays out `k` well-separated cluster centers on a diagonal-offset grid
    /// inside the bounds — a deterministic placement used by the named
    /// scenario constructors so runs are comparable across seeds.
    #[must_use]
    pub fn grid_means(dim: usize, k: usize, bounds: (f64, f64)) -> Vec<Vec<f64>> {
        assert!(dim > 0 && k > 0);
        let (lo, hi) = bounds;
        let span = hi - lo;
        // Place centers along the main diagonal with alternating offsets on
        // the second axis (when present) so 2-d layouts are not collinear.
        (0..k)
            .map(|i| {
                let t = (i as f64 + 1.0) / (k as f64 + 1.0);
                let mut m = vec![lo + t * span; dim];
                if dim > 1 && i % 2 == 1 {
                    m[1] = lo + (1.0 - t) * span;
                }
                m
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cluster_model() -> MixtureModel {
        MixtureModel::new(
            2,
            vec![
                ClusterModel::new(vec![20.0, 20.0], 2.0),
                ClusterModel::new(vec![80.0, 80.0], 2.0),
            ],
            0.1,
            (0.0, 100.0),
        )
    }

    #[test]
    fn populate_produces_requested_count_and_labels() {
        let m = two_cluster_model();
        let mut rng = StdRng::seed_from_u64(11);
        let store = m.populate(5000, &mut rng);
        assert_eq!(store.len(), 5000);
        let mut counts = [0usize; 3]; // cluster0, cluster1, noise
        for (_, p, label) in store.iter() {
            assert_eq!(p.len(), 2);
            match label {
                Some(0) => counts[0] += 1,
                Some(1) => counts[1] += 1,
                None => counts[2] += 1,
                other => panic!("unexpected label {other:?}"),
            }
        }
        // ~10% noise, remainder split evenly.
        assert!(counts[2] > 350 && counts[2] < 650, "{counts:?}");
        assert!(counts[0] > 1800 && counts[0] < 2700, "{counts:?}");
        assert!(counts[1] > 1800 && counts[1] < 2700, "{counts:?}");
    }

    #[test]
    fn cluster_points_are_near_their_mean() {
        let m = two_cluster_model();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            let (p, label) = m.sample(&mut rng);
            if let Some(l) = label {
                let mean = &m.clusters[l as usize].mean;
                let d = idb_geometry::dist(&p, mean);
                // 6 sigma in 2-d is astronomically unlikely.
                assert!(d < 6.0 * 2.0 * 2.0f64.sqrt(), "point {p:?} label {l}");
            }
        }
    }

    #[test]
    fn weights_bias_cluster_choice() {
        let mut m = two_cluster_model();
        m.noise_fraction = 0.0;
        m.clusters[0].weight = 9.0;
        m.clusters[1].weight = 1.0;
        let mut rng = StdRng::seed_from_u64(8);
        let mut zero = 0;
        for _ in 0..10_000 {
            if m.sample(&mut rng).1 == Some(0) {
                zero += 1;
            }
        }
        assert!(zero > 8_700 && zero < 9_300, "zero={zero}");
    }

    #[test]
    fn empty_mixture_yields_noise_only() {
        let m = MixtureModel::new(3, Vec::new(), 0.0, (0.0, 1.0));
        let mut rng = StdRng::seed_from_u64(4);
        let (p, label) = m.sample(&mut rng);
        assert_eq!(p.len(), 3);
        assert!(label.is_none());
    }

    #[test]
    fn grid_means_are_separated_and_in_bounds() {
        for dim in [2usize, 5, 10] {
            let means = MixtureModel::grid_means(dim, 5, (0.0, 100.0));
            assert_eq!(means.len(), 5);
            for m in &means {
                assert_eq!(m.len(), dim);
                for &x in m {
                    assert!((0.0..=100.0).contains(&x));
                }
            }
            for i in 0..means.len() {
                for j in i + 1..means.len() {
                    assert!(
                        idb_geometry::dist(&means[i], &means[j]) > 10.0,
                        "centers {i} and {j} too close in dim {dim}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "noise_fraction")]
    fn invalid_noise_fraction_panics() {
        let _ = MixtureModel::new(2, Vec::new(), 1.5, (0.0, 1.0));
    }
}
