//! Loading and saving point databases as CSV.
//!
//! The paper evaluates on synthetic data, but a downstream user adopts
//! this library for their own tables. This module reads plain numeric CSV
//! (one point per row, optionally with a trailing integer label column —
//! the word `noise` marks unlabeled rows) into a [`PointStore`], and
//! writes stores back out, round-trip-safe. The Figure 8 snapshot dumps in
//! `results/` use the same format.

use idb_store::{Label, PointStore};
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// A CSV parse failure with its 1-based line number.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A cell failed to parse as a number or label.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A coordinate parsed to NaN or an infinity — values the maintainer
    /// rejects, so the loader refuses them at the boundary.
    NonFinite {
        /// 1-based line number.
        line: usize,
        /// 1-based column number of the offending cell.
        column: usize,
        /// The non-finite value as parsed.
        value: f64,
    },
    /// A row's coordinate count disagrees with the first data row's.
    Ragged {
        /// 1-based line number.
        line: usize,
        /// Coordinates per row established by the first data row.
        expected: usize,
        /// Coordinates found on this row.
        found: usize,
    },
    /// The input contained no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "csv i/o error: {e}"),
            Self::Parse { line, message } => write!(f, "csv line {line}: {message}"),
            Self::NonFinite {
                line,
                column,
                value,
            } => write!(
                f,
                "csv line {line}: non-finite coordinate {value} in column {column}"
            ),
            Self::Ragged {
                line,
                expected,
                found,
            } => write!(
                f,
                "csv line {line}: expected {expected} coordinates, found {found}"
            ),
            Self::Empty => write!(f, "csv input contained no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Parses a point database from CSV rows.
///
/// Every row holds `dim` numeric coordinates; when `has_labels` is true, a
/// final column carries the ground-truth label: a non-negative integer or
/// the literal `noise`. Blank lines are skipped. The dimensionality is
/// inferred from the first data row.
///
/// # Errors
/// [`CsvError::NonFinite`] when a coordinate parses to NaN or ±∞ (the
/// maintainer rejects such points, so the loader refuses them up front),
/// [`CsvError::Ragged`] when a row's coordinate count disagrees with the
/// first row's, [`CsvError::Parse`] for unparseable cells,
/// [`CsvError::Empty`] when no data rows exist, and [`CsvError::Io`] for
/// reader failures.
pub fn parse_csv<R: BufRead>(reader: R, has_labels: bool) -> Result<PointStore, CsvError> {
    let mut store: Option<PointStore> = None;
    let mut coords: Vec<f64> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut cells: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let label: Label = if has_labels {
            let cell = cells.pop().ok_or_else(|| CsvError::Parse {
                line: line_no,
                message: "missing label column".into(),
            })?;
            if cell.eq_ignore_ascii_case("noise") {
                None
            } else {
                Some(cell.parse::<u32>().map_err(|e| CsvError::Parse {
                    line: line_no,
                    message: format!("bad label {cell:?}: {e}"),
                })?)
            }
        } else {
            None
        };
        coords.clear();
        for (col, cell) in cells.iter().enumerate() {
            let x = cell.parse::<f64>().map_err(|e| CsvError::Parse {
                line: line_no,
                message: format!("bad coordinate {cell:?}: {e}"),
            })?;
            if !x.is_finite() {
                return Err(CsvError::NonFinite {
                    line: line_no,
                    column: col + 1,
                    value: x,
                });
            }
            coords.push(x);
        }
        let store = store.get_or_insert_with(|| PointStore::new(coords.len().max(1)));
        if coords.len() != store.dim() {
            return Err(CsvError::Ragged {
                line: line_no,
                expected: store.dim(),
                found: coords.len(),
            });
        }
        store.insert(&coords, label);
    }
    store.ok_or(CsvError::Empty)
}

/// Loads a point database from a CSV file.
pub fn load_csv(path: &Path, has_labels: bool) -> Result<PointStore, CsvError> {
    let file = std::fs::File::open(path)?;
    parse_csv(io::BufReader::new(file), has_labels)
}

/// Writes all live points as CSV rows (coordinates, then the label column:
/// the integer label or `noise`).
pub fn write_csv<W: Write>(store: &PointStore, mut writer: W) -> io::Result<()> {
    for (_, p, label) in store.iter() {
        let mut row = String::with_capacity(p.len() * 12);
        for (i, x) in p.iter().enumerate() {
            if i > 0 {
                row.push(',');
            }
            row.push_str(&format!("{x}"));
        }
        row.push(',');
        match label {
            Some(l) => row.push_str(&l.to_string()),
            None => row.push_str("noise"),
        }
        row.push('\n');
        writer.write_all(row.as_bytes())?;
    }
    Ok(())
}

/// Saves a point database as a CSV file, creating parent directories.
pub fn save_csv(store: &PointStore, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    write_csv(store, io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_labeled_rows() {
        let data = "1.0, 2.0, 0\n3.5,4.5,1\n9.0, 9.0, noise\n";
        let store = parse_csv(data.as_bytes(), true).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.dim(), 2);
        let rows: Vec<_> = store.iter().map(|(_, p, l)| (p.to_vec(), l)).collect();
        assert_eq!(rows[0], (vec![1.0, 2.0], Some(0)));
        assert_eq!(rows[1], (vec![3.5, 4.5], Some(1)));
        assert_eq!(rows[2], (vec![9.0, 9.0], None));
    }

    #[test]
    fn parse_unlabeled_rows() {
        let data = "1,2,3\n4,5,6\n";
        let store = parse_csv(data.as_bytes(), false).unwrap();
        assert_eq!(store.dim(), 3);
        assert_eq!(store.len(), 2);
        assert!(store.iter().all(|(_, _, l)| l.is_none()));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let data = "\n1,2,0\n\n3,4,1\n\n";
        let store = parse_csv(data.as_bytes(), true).unwrap();
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn ragged_row_reports_line_and_arity() {
        let data = "1,2,0\n1,2,3,0\n";
        match parse_csv(data.as_bytes(), true) {
            Err(CsvError::Ragged {
                line,
                expected,
                found,
            }) => {
                assert_eq!(line, 2);
                assert_eq!(expected, 2);
                assert_eq!(found, 3);
            }
            other => panic!("expected ragged-row error, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_coordinates_are_rejected() {
        for cell in ["NaN", "inf", "-inf", "infinity"] {
            let data = format!("1,{cell},0\n");
            match parse_csv(data.as_bytes(), true) {
                Err(CsvError::NonFinite { line, column, .. }) => {
                    assert_eq!(line, 1, "{cell}");
                    assert_eq!(column, 2, "{cell}");
                }
                other => panic!("expected non-finite error for {cell}, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_number_reports_line_and_cell() {
        let data = "1,abc,0\n";
        match parse_csv(data.as_bytes(), true) {
            Err(CsvError::Parse { line, message }) => {
                assert_eq!(line, 1);
                assert!(message.contains("abc"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(
            parse_csv("".as_bytes(), true),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn round_trip_preserves_everything() {
        let data = "1.5,-2.25,0\n0.125,3,7\n-9,4.75,noise\n";
        let store = parse_csv(data.as_bytes(), true).unwrap();
        let mut out = Vec::new();
        write_csv(&store, &mut out).unwrap();
        let reparsed = parse_csv(out.as_slice(), true).unwrap();
        assert_eq!(reparsed.len(), store.len());
        let a: Vec<_> = store.iter().map(|(_, p, l)| (p.to_vec(), l)).collect();
        let b: Vec<_> = reparsed.iter().map(|(_, p, l)| (p.to_vec(), l)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("idb_synth_io_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("points.csv");
        let data = "5,6,2\n7,8,noise\n";
        let store = parse_csv(data.as_bytes(), true).unwrap();
        save_csv(&store, &path).unwrap();
        let loaded = load_csv(&path, true).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.dim(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
