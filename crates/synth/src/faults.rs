//! Fault generators for robustness testing.
//!
//! The fault-injection harness (in `idb-core`'s test suite) drives the
//! maintainer with deliberately malformed inputs and damaged snapshot
//! bytes, asserting that every failure surfaces as a typed error — never a
//! panic — and that rejected batches leave no trace. This module houses
//! the generators so other crates (and future harnesses) share one
//! vocabulary of faults.

use idb_obs::{EventKind, Obs, SinkOp};
use idb_store::segment::{MemSegmentSink, MemSegments, SegmentId, SegmentMedium};
use idb_store::tier::{ColdMedium, ColdRewriter, MemCold};
use idb_store::{Batch, DurableSink, PointId, PointStore, StorageError};
use rand::Rng;
use std::io;
use std::sync::{Arc, Mutex};

/// The kinds of invalid update batch the validating entry point must
/// reject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchFault {
    /// An insert carrying a NaN coordinate.
    NanInsert,
    /// An insert carrying an infinite coordinate.
    InfiniteInsert,
    /// An insert with too few coordinates.
    ShortInsert,
    /// An insert with too many coordinates.
    LongInsert,
    /// A delete naming an id that was never live.
    StaleDelete,
    /// The same live id deleted twice in one batch.
    DuplicateDelete,
}

/// Every batch fault, for exhaustive sweeps.
pub const ALL_BATCH_FAULTS: [BatchFault; 6] = [
    BatchFault::NanInsert,
    BatchFault::InfiniteInsert,
    BatchFault::ShortInsert,
    BatchFault::LongInsert,
    BatchFault::StaleDelete,
    BatchFault::DuplicateDelete,
];

/// Builds an otherwise-plausible batch (a few valid inserts and deletes)
/// carrying exactly one instance of `fault`, targeted at the current store
/// contents.
///
/// # Panics
/// Panics if the store is empty (the delete-based faults need a live id)
/// or zero-dimensional.
pub fn faulty_batch<R: Rng + ?Sized>(store: &PointStore, fault: BatchFault, rng: &mut R) -> Batch {
    assert!(
        !store.is_empty(),
        "faulty batches are built against live data"
    );
    let dim = store.dim();
    let valid_point =
        |rng: &mut R| -> Vec<f64> { (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect() };
    let mut inserts = vec![(valid_point(rng), Some(1u32))];
    let mut deletes: Vec<PointId> = store.sample_distinct(1, rng);
    match fault {
        BatchFault::NanInsert => {
            let mut p = valid_point(rng);
            p[rng.gen_range(0..dim)] = f64::NAN;
            inserts.push((p, None));
        }
        BatchFault::InfiniteInsert => {
            let mut p = valid_point(rng);
            p[rng.gen_range(0..dim)] = if rng.gen_bool(0.5) {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
            inserts.push((p, None));
        }
        BatchFault::ShortInsert => {
            let mut p = valid_point(rng);
            p.pop();
            inserts.push((p, None));
        }
        BatchFault::LongInsert => {
            let mut p = valid_point(rng);
            p.push(0.0);
            inserts.push((p, None));
        }
        BatchFault::StaleDelete => {
            // A slot number beyond anything the store ever handed out.
            deletes.push(PointId(store.slots() as u32 + 7));
        }
        BatchFault::DuplicateDelete => {
            deletes.push(deletes[0]);
        }
    }
    Batch { inserts, deletes }
}

/// A fault-injecting [`DurableSink`] for the crash-consistency harness.
///
/// Wraps an in-memory byte buffer and simulates the failure modes a real
/// disk exposes to the WAL writer:
///
/// * **short writes** — with a `write_cap`, an append persists only the
///   first `cap` bytes of the request and then fails, exactly like a
///   process killed mid-`write(2)`;
/// * **transient append/fsync errors** — the next `fail_appends` /
///   `fail_syncs` calls return an error without touching the buffer,
///   driving the maintainer's retry and degradation paths;
/// * **disk exhaustion** — with `enospc_after`, appends persist only up
///   to that total byte position and then fail with
///   [`io::ErrorKind::StorageFull`], exactly like `write(2)` returning
///   `ENOSPC` after a partial write to the end of the device;
/// * **kills at arbitrary byte positions** — tests slice [`FaultSink::bytes`]
///   at any crash point and hand the prefix to recovery.
#[derive(Debug, Clone, Default)]
pub struct FaultSink {
    data: Vec<u8>,
    /// When set, the next append persists at most this many bytes, then
    /// fails (cleared after firing).
    pub write_cap: Option<usize>,
    /// Number of upcoming `append` calls that fail outright.
    pub fail_appends: usize,
    /// Number of upcoming `sync` calls that fail.
    pub fail_syncs: usize,
    /// When set, total capacity in bytes: appends that would grow the
    /// buffer past it write up to the boundary, then fail with
    /// [`io::ErrorKind::StorageFull`] — until [`FaultSink::heal`] "frees
    /// space". Unlike `write_cap` this does not clear after firing.
    pub enospc_after: Option<u64>,
    /// Journal sink; every injected failure emits a `sink_fault` event so
    /// suites can correlate degradation with the fault that caused it.
    obs: Obs,
}

impl FaultSink {
    /// A healthy, empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything durably appended so far — what a post-crash recovery
    /// would find on disk.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Clears every pending fault (including the `enospc_after` capacity
    /// limit — "space was freed").
    pub fn heal(&mut self) {
        self.write_cap = None;
        self.fail_appends = 0;
        self.fail_syncs = 0;
        self.enospc_after = None;
    }

    /// Installs the observability handle injected faults are journaled
    /// through.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }
}

impl DurableSink for FaultSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.fail_appends > 0 {
            self.fail_appends -= 1;
            self.obs
                .emit(EventKind::SinkFault { op: SinkOp::Append }, 0);
            return Err(io::Error::other("injected append failure"));
        }
        if let Some(cap) = self.write_cap.take() {
            self.data.extend_from_slice(&bytes[..cap.min(bytes.len())]);
            self.obs
                .emit(EventKind::SinkFault { op: SinkOp::Append }, 0);
            return Err(io::Error::other("injected short write"));
        }
        if let Some(cap) = self.enospc_after {
            let room =
                usize::try_from(cap.saturating_sub(self.data.len() as u64)).unwrap_or(usize::MAX);
            if bytes.len() > room {
                self.data.extend_from_slice(&bytes[..room]);
                self.obs
                    .emit(EventKind::SinkFault { op: SinkOp::Append }, 0);
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected ENOSPC",
                ));
            }
        }
        self.data.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.fail_syncs > 0 {
            self.fail_syncs -= 1;
            self.obs.emit(EventKind::SinkFault { op: SinkOp::Sync }, 0);
            return Err(io::Error::other("injected fsync failure"));
        }
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        idb_store::segment::truncate_in_memory(&mut self.data, len)
    }
}

/// Shared fault plan of a [`FaultSegments`] medium.
#[derive(Debug, Default)]
struct SegmentPlan {
    fail_creates: usize,
    enospc_after: Option<u64>,
}

/// A fault-injecting [`SegmentMedium`] for the segmented-WAL crash and
/// disk-exhaustion suites. Wraps a [`MemSegments`] store (clone-shared, so
/// tests snapshot/restore/corrupt exactly as with the plain medium) and
/// adds two injectable failure modes:
///
/// * **rotation crashes** — the next `fail_creates` segment creations
///   fail, so a `roll` dies between sealing the old segment and stamping
///   the new one's header;
/// * **device exhaustion** — with `enospc_after`, any append that would
///   push the medium's **total** bytes past the cap writes up to the
///   boundary and fails with [`io::ErrorKind::StorageFull`], until
///   [`FaultSegments::heal`] lifts the cap.
#[derive(Debug, Clone, Default)]
pub struct FaultSegments {
    inner: MemSegments,
    plan: Arc<Mutex<SegmentPlan>>,
}

impl FaultSegments {
    /// A healthy, empty medium.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The wrapped in-memory medium (snapshot/restore/corrupt handles).
    #[must_use]
    pub fn inner(&self) -> &MemSegments {
        &self.inner
    }

    /// Arms the next `n` segment creations to fail.
    pub fn fail_creates(&self, n: usize) {
        self.plan.lock().expect("fault plan poisoned").fail_creates = n;
    }

    /// Caps the device at `cap` total bytes across all segments.
    pub fn set_enospc_after(&self, cap: u64) {
        self.plan.lock().expect("fault plan poisoned").enospc_after = Some(cap);
    }

    /// Clears every pending fault ("space was freed, the disk recovered").
    pub fn heal(&self) {
        let mut plan = self.plan.lock().expect("fault plan poisoned");
        plan.fail_creates = 0;
        plan.enospc_after = None;
    }
}

/// The append sink of one [`FaultSegments`] segment: a [`MemSegmentSink`]
/// that honours the shared device-capacity plan.
#[derive(Debug)]
pub struct FaultSegmentSink {
    inner: MemSegmentSink,
    medium: MemSegments,
    plan: Arc<Mutex<SegmentPlan>>,
}

impl DurableSink for FaultSegmentSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let cap = self.plan.lock().expect("fault plan poisoned").enospc_after;
        if let Some(cap) = cap {
            let used = self.medium.total_bytes();
            let room = usize::try_from(cap.saturating_sub(used)).unwrap_or(usize::MAX);
            if bytes.len() > room {
                self.inner.append(&bytes[..room])?;
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected ENOSPC",
                ));
            }
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)
    }
}

impl SegmentMedium for FaultSegments {
    type Sink = FaultSegmentSink;

    fn create(&mut self, id: SegmentId) -> io::Result<Self::Sink> {
        {
            let mut plan = self.plan.lock().expect("fault plan poisoned");
            if plan.fail_creates > 0 {
                plan.fail_creates -= 1;
                return Err(io::Error::other("injected segment-create failure"));
            }
        }
        let inner = self.inner.create(id)?;
        Ok(FaultSegmentSink {
            inner,
            medium: self.inner.clone(),
            plan: Arc::clone(&self.plan),
        })
    }

    fn read(&self, id: SegmentId) -> io::Result<Vec<u8>> {
        self.inner.read(id)
    }

    fn list(&self) -> io::Result<Vec<SegmentId>> {
        self.inner.list()
    }

    fn remove(&mut self, id: SegmentId) -> io::Result<u64> {
        self.inner.remove(id)
    }
}

/// Shared fault plan of a [`FaultCold`] medium.
#[derive(Debug, Default)]
struct ColdPlan {
    read_outage: bool,
    write_outage: bool,
}

/// A fault-injecting [`ColdMedium`] for the tiered-store suites: wraps a
/// [`MemCold`] and simulates read/write outages (a detached volume, a
/// failing disk) that persist until [`FaultCold::heal`] — driving the
/// maintainer's typed degrade-and-recover ladder for the cold tier, like
/// [`FaultSegments`] does for the WAL.
#[derive(Debug, Clone, Default)]
pub struct FaultCold {
    inner: MemCold,
    plan: Arc<Mutex<ColdPlan>>,
}

impl FaultCold {
    /// A healthy, empty cold medium.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The wrapped in-memory medium (content inspection in tests).
    #[must_use]
    pub fn inner(&self) -> &MemCold {
        &self.inner
    }

    /// Starts/stops failing every cold read.
    pub fn set_read_outage(&self, on: bool) {
        self.plan.lock().expect("cold plan poisoned").read_outage = on;
    }

    /// Starts/stops failing every cold write (including rewrites).
    pub fn set_write_outage(&self, on: bool) {
        self.plan.lock().expect("cold plan poisoned").write_outage = on;
    }

    /// Clears every pending fault ("the volume came back").
    pub fn heal(&self) {
        let mut plan = self.plan.lock().expect("cold plan poisoned");
        plan.read_outage = false;
        plan.write_outage = false;
    }
}

impl ColdMedium for FaultCold {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        if self.plan.lock().expect("cold plan poisoned").read_outage {
            return Err(StorageError::ColdIo {
                op: "read",
                detail: "injected cold read outage".into(),
            });
        }
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        if self.plan.lock().expect("cold plan poisoned").write_outage {
            return Err(StorageError::ColdIo {
                op: "write",
                detail: "injected cold write outage".into(),
            });
        }
        self.inner.write_at(offset, data)
    }

    fn start_rewrite(&self) -> Result<Box<dyn ColdRewriter + '_>, StorageError> {
        if self.plan.lock().expect("cold plan poisoned").write_outage {
            return Err(StorageError::ColdIo {
                op: "rewrite",
                detail: "injected cold write outage".into(),
            });
        }
        self.inner.start_rewrite()
    }

    fn boxed_clone(&self) -> Box<dyn ColdMedium> {
        Box::new(self.clone())
    }
}

/// Flips one bit of `bytes` in place. `offset` is taken modulo the length,
/// `bit` modulo 8, so exhaustive sweeps can iterate plain counters.
///
/// # Panics
/// Panics if `bytes` is empty.
pub fn flip_bit(bytes: &mut [u8], offset: usize, bit: u32) {
    assert!(!bytes.is_empty(), "cannot flip a bit of an empty buffer");
    let i = offset % bytes.len();
    bytes[i] ^= 1u8 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_store() -> PointStore {
        let mut s = PointStore::new(2);
        for i in 0..20 {
            s.insert(&[i as f64, -(i as f64)], Some(0));
        }
        s
    }

    #[test]
    fn every_fault_kind_builds_a_batch() {
        let store = small_store();
        let mut rng = StdRng::seed_from_u64(1);
        for fault in ALL_BATCH_FAULTS {
            let batch = faulty_batch(&store, fault, &mut rng);
            assert!(
                !batch.inserts.is_empty() || !batch.deletes.is_empty(),
                "{fault:?}"
            );
        }
    }

    #[test]
    fn stale_delete_is_not_live() {
        let store = small_store();
        let mut rng = StdRng::seed_from_u64(2);
        let batch = faulty_batch(&store, BatchFault::StaleDelete, &mut rng);
        assert!(batch.deletes.iter().any(|&id| !store.contains(id)));
    }

    #[test]
    fn fault_sink_injects_and_heals() {
        let mut sink = FaultSink::new();
        sink.append(b"hello").unwrap();
        sink.fail_appends = 1;
        assert!(sink.append(b" world").is_err());
        assert_eq!(sink.bytes(), b"hello", "failed append leaves no bytes");
        sink.write_cap = Some(2);
        assert!(sink.append(b" world").is_err());
        assert_eq!(sink.bytes(), b"hello w", "short write persists a prefix");
        sink.fail_syncs = 1;
        assert!(sink.sync().is_err());
        sink.heal();
        sink.truncate(5).unwrap();
        sink.append(b" world").unwrap();
        sink.sync().unwrap();
        assert_eq!(sink.bytes(), b"hello world");
    }

    #[test]
    fn flip_bit_round_trips() {
        let mut buf = vec![0u8; 8];
        flip_bit(&mut buf, 3, 5);
        assert_eq!(buf[3], 1 << 5);
        flip_bit(&mut buf, 3, 5);
        assert!(buf.iter().all(|&b| b == 0));
        // Offsets wrap instead of panicking.
        flip_bit(&mut buf, 8, 9);
        assert_eq!(buf[0], 1 << 1);
    }
}
