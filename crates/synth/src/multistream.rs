//! Multi-stream workload generation: several independent scenario
//! engines, each with its own derived RNG, interleaved into one
//! deterministic sequence of `(stream, batch)` updates.
//!
//! A sharded service is fed by many concurrent clients; this module
//! models them. Each stream is a full [`ScenarioEngine`] — its own
//! cluster dynamics, its own ground truth — drawing from an RNG derived
//! from a base seed and the stream index, so the interleaved sequence is
//! a pure function of `(specs, seed)`: the same workload replays
//! bit-identically no matter how many shards (or threads) consume it.
//!
//! Streams take turns round-robin. The per-stream derivation keeps
//! stream 0 of a single-stream engine on exactly the base seed's
//! stream, so a one-stream [`MultiStreamEngine`] reproduces the plain
//! [`ScenarioEngine`] workload.

use crate::scenario::{ScenarioEngine, ScenarioKind, ScenarioSpec};
use idb_store::{Batch, PointId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG seed for stream `stream` of a workload seeded with `seed`.
///
/// Stream 0 keeps the base seed itself (a single-stream engine is
/// bit-identical to driving a [`ScenarioEngine`] with `seed`); later
/// streams decorrelate through a splitmix64-style mix.
#[must_use]
pub fn stream_seed(seed: u64, stream: u32) -> u64 {
    if stream == 0 {
        return seed;
    }
    let mut z = seed ^ (u64::from(stream)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One stream: its scenario state and its private RNG.
#[derive(Debug, Clone)]
struct Stream {
    engine: ScenarioEngine,
    rng: StdRng,
}

/// Several interleaved scenario streams over one logical database.
///
/// Drive it like a [`ScenarioEngine`], but with a stream index woven
/// through: [`MultiStreamEngine::populate_batches`] yields each
/// stream's initial population, then [`MultiStreamEngine::plan_next`] /
/// [`MultiStreamEngine::confirm`] cycle round-robin through the
/// streams.
#[derive(Debug, Clone)]
pub struct MultiStreamEngine {
    streams: Vec<Stream>,
    cursor: usize,
}

impl MultiStreamEngine {
    /// An engine over the given per-stream specs; stream `i` draws from
    /// [`stream_seed`]`(seed, i)`.
    ///
    /// # Panics
    /// Panics if `specs` is empty or holds more than `u32::MAX` entries.
    #[must_use]
    pub fn new(specs: Vec<ScenarioSpec>, seed: u64) -> Self {
        assert!(!specs.is_empty(), "at least one stream is required");
        assert!(u32::try_from(specs.len()).is_ok(), "too many streams");
        let streams = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| Stream {
                engine: ScenarioEngine::new(spec),
                rng: StdRng::seed_from_u64(stream_seed(seed, i as u32)),
            })
            .collect();
        Self { streams, cursor: 0 }
    }

    /// An engine running one named scenario per stream, all with the same
    /// dimensionality, per-stream initial size and update fraction.
    ///
    /// # Panics
    /// Panics if `kinds` is empty.
    #[must_use]
    pub fn named(
        kinds: &[ScenarioKind],
        dim: usize,
        initial_size_per_stream: usize,
        update_fraction: f64,
        seed: u64,
    ) -> Self {
        let specs = kinds
            .iter()
            .map(|&k| ScenarioSpec::named(k, dim, initial_size_per_stream, update_fraction))
            .collect();
        Self::new(specs, seed)
    }

    /// Number of streams.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The stream index [`Self::plan_next`] will draw from next.
    #[must_use]
    pub fn next_stream(&self) -> u32 {
        self.cursor as u32
    }

    /// Total live points across all streams' ground truths.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.streams.iter().map(|s| s.engine.live_count()).sum()
    }

    /// A stream's scenario engine (ground-truth queries).
    ///
    /// # Panics
    /// Panics if `stream` is out of range.
    #[must_use]
    pub fn engine(&self, stream: u32) -> &ScenarioEngine {
        &self.streams[stream as usize].engine
    }

    /// Each stream's initial population as an insert-only batch, in
    /// stream order. Apply each and register the assigned ids with
    /// [`Self::confirm`] (in the same order) before planning updates.
    pub fn populate_batches(&mut self) -> Vec<(u32, Batch)> {
        let mut out = Vec::with_capacity(self.streams.len());
        for (i, s) in self.streams.iter_mut().enumerate() {
            let batch = s.engine.populate_batch(&mut s.rng);
            out.push((i as u32, batch));
        }
        out
    }

    /// Plans the next batch from the round-robin cursor's stream and
    /// advances the cursor. Streams whose databases have emptied are
    /// skipped; returns `None` when every stream is empty.
    ///
    /// # Panics
    /// Panics if a previous planned batch has not been confirmed.
    pub fn plan_next(&mut self) -> Option<(u32, Batch)> {
        for _ in 0..self.streams.len() {
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % self.streams.len();
            let s = &mut self.streams[i];
            if s.engine.live_count() == 0 {
                continue;
            }
            let batch = s.engine.plan(&mut s.rng);
            return Some((i as u32, batch));
        }
        None
    }

    /// Registers the ids assigned to the insertions of `stream`'s last
    /// planned (or population) batch.
    ///
    /// # Panics
    /// Panics if `stream` is out of range, has no batch awaiting
    /// confirmation, or the id count differs from the planned insertions.
    pub fn confirm(&mut self, stream: u32, inserted: &[PointId]) {
        self.streams[stream as usize].engine.confirm(inserted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idb_store::PointStore;

    #[test]
    fn stream_zero_keeps_the_base_seed() {
        assert_eq!(stream_seed(42, 0), 42);
        assert_ne!(stream_seed(42, 1), 42);
        assert_ne!(stream_seed(42, 1), stream_seed(42, 2));
        assert_ne!(stream_seed(42, 1), stream_seed(43, 1));
    }

    #[test]
    fn single_stream_engine_matches_the_plain_engine() {
        let dim = 2;
        let mut multi = MultiStreamEngine::named(&[ScenarioKind::Random], dim, 300, 0.05, 7);
        let mut plain_rng = StdRng::seed_from_u64(7);
        let mut plain =
            ScenarioEngine::new(ScenarioSpec::named(ScenarioKind::Random, dim, 300, 0.05));
        let mut plain_store = plain.populate(&mut plain_rng);

        let mut store = PointStore::new(dim);
        for (stream, batch) in multi.populate_batches() {
            let ids = store.apply(&batch);
            multi.confirm(stream, &ids);
        }
        assert_eq!(store.len(), plain_store.len());

        for _ in 0..5 {
            let (stream, batch) = multi.plan_next().unwrap();
            assert_eq!(stream, 0);
            let ids = store.apply(&batch);
            multi.confirm(stream, &ids);
            let (plain_batch, _) = plain.step_plain(&mut plain_store, &mut plain_rng);
            assert_eq!(batch, plain_batch);
        }
    }

    #[test]
    fn streams_interleave_round_robin_and_track_truth() {
        let kinds = [
            ScenarioKind::Random,
            ScenarioKind::GradMove,
            ScenarioKind::Disappear,
        ];
        let mut multi = MultiStreamEngine::named(&kinds, 2, 200, 0.05, 11);
        let mut stores: Vec<PointStore> = (0..multi.stream_count())
            .map(|_| PointStore::new(2))
            .collect();
        for (stream, batch) in multi.populate_batches() {
            let ids = stores[stream as usize].apply(&batch);
            multi.confirm(stream, &ids);
        }
        let mut seen = Vec::new();
        for _ in 0..6 {
            let (stream, batch) = multi.plan_next().unwrap();
            seen.push(stream);
            let ids = stores[stream as usize].apply(&batch);
            multi.confirm(stream, &ids);
        }
        assert_eq!(seen, vec![0, 1, 2, 0, 1, 2]);
        let total: usize = stores.iter().map(PointStore::len).sum();
        assert_eq!(multi.live_count(), total);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let build = || MultiStreamEngine::named(&[ScenarioKind::Random; 2], 2, 150, 0.05, 3);
        let (mut a, mut b) = (build(), build());
        let pa = a.populate_batches();
        let pb = b.populate_batches();
        assert_eq!(pa, pb);
        for ((sa, ba), (sb, bb)) in pa.iter().zip(&pb) {
            assert_eq!(sa, sb);
            assert_eq!(ba, bb);
        }
    }
}
