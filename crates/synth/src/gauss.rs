//! Standard-normal sampling via the Box–Muller transform.
//!
//! The only non-uniform distribution the workloads need is the isotropic
//! Gaussian, so rather than pulling in `rand_distr` we implement the
//! polar-free Box–Muller transform directly (see DESIGN.md, Dependencies).

use rand::Rng;
use std::f64::consts::TAU;

/// Draws one standard-normal (`N(0, 1)`) variate.
///
/// Uses the basic Box–Muller transform; the logarithm argument is clamped
/// away from zero so the result is always finite.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

/// Draws a point from an isotropic Gaussian with the given `mean` and
/// per-axis standard deviation `sigma`.
pub fn gaussian_point<R: Rng + ?Sized>(rng: &mut R, mean: &[f64], sigma: f64) -> Vec<f64> {
    mean.iter()
        .map(|&m| m + sigma * standard_normal(rng))
        .collect()
}

/// Draws a point uniformly from the hypercube `[lo, hi]^dim`.
pub fn uniform_point<R: Rng + ?Sized>(rng: &mut R, dim: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..dim).map(|_| rng.gen_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            assert!(x.is_finite());
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn gaussian_point_centered_on_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean = [10.0, -20.0, 5.0];
        let n = 50_000;
        let mut acc = [0.0f64; 3];
        for _ in 0..n {
            let p = gaussian_point(&mut rng, &mean, 2.0);
            for (a, x) in acc.iter_mut().zip(&p) {
                *a += x;
            }
        }
        for (a, m) in acc.iter().zip(&mean) {
            assert!((a / n as f64 - m).abs() < 0.1);
        }
    }

    #[test]
    fn uniform_point_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let p = uniform_point(&mut rng, 4, -5.0, 7.0);
            assert_eq!(p.len(), 4);
            for x in p {
                assert!((-5.0..7.0).contains(&x));
            }
        }
    }

    #[test]
    fn tails_behave_roughly_normal() {
        // ~4.6% of draws should fall beyond |x| > 2.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let beyond = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count();
        let frac = beyond as f64 / n as f64;
        assert!((0.035..0.055).contains(&frac), "tail fraction {frac}");
    }
}
