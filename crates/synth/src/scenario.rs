//! Dynamic update scenarios (paper, Section 5).
//!
//! A [`ScenarioEngine`] owns the evolving ground truth of a dynamic
//! database: which live points belong to which generating cluster, which
//! clusters are currently appearing, disappearing or moving, and how large
//! each update batch should be. Each call to [`ScenarioEngine::plan`]
//! produces one [`Batch`] in which (as in the paper) an equal number of
//! points is deleted and inserted — `update_fraction` of the current
//! database size each.
//!
//! The engine deliberately does **not** apply batches itself: the
//! experiments interleave batch application with the incremental
//! maintainer's bookkeeping. The contract is plan → apply (by whoever owns
//! the store) → [`ScenarioEngine::confirm`] with the ids assigned to the
//! insertions. [`ScenarioEngine::step_plain`] bundles the three for callers
//! without a maintainer.

use crate::dataset::ClusterModel;
use crate::gauss::{gaussian_point, uniform_point};
use idb_store::{Batch, Label, PointId, PointStore};
use rand::Rng;

/// How one cluster behaves over the lifetime of a scenario.
#[derive(Debug, Clone)]
pub enum Dynamics {
    /// Present from the start; only participates in random churn.
    Static,
    /// Starts empty and grows through insertions from `at_batch` on, until
    /// it holds `target` points.
    Appear {
        /// First batch index (0-based) at which the cluster receives points.
        at_batch: usize,
        /// Number of points the cluster grows to.
        target: usize,
    },
    /// Present from the start; drained by deletions from `at_batch` on.
    Disappear {
        /// First batch index (0-based) at which the cluster loses points.
        at_batch: usize,
    },
    /// Present from the start; its mean shifts by `velocity` every batch,
    /// with paired deletions (at the old location) and insertions (at the
    /// new one).
    Move {
        /// Per-batch displacement of the cluster mean.
        velocity: Vec<f64>,
    },
    /// Present from the start; its standard deviation multiplies by
    /// `factor` every batch (paired delete/insert churn re-draws members
    /// at the current spread). Models the *changing point densities over
    /// time* that the paper notes parameter-bound incremental algorithms
    /// (IncrementalDBSCAN) cannot follow.
    Densify {
        /// Per-batch multiplier on the cluster sigma (< 1 condenses,
        /// > 1 diffuses).
        factor: f64,
    },
}

/// One cluster of a scenario: its generative model plus its dynamics.
#[derive(Debug, Clone)]
pub struct ScenarioCluster {
    /// Generative model; `model.mean` is the *initial* mean.
    pub model: ClusterModel,
    /// How the cluster evolves.
    pub dynamics: Dynamics,
}

/// Full description of a dynamic-database scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Dimensionality of all points.
    pub dim: usize,
    /// Number of points in the initial database.
    pub initial_size: usize,
    /// Fraction of points that are uniform noise, both initially and among
    /// churn insertions.
    pub noise_fraction: f64,
    /// Fraction of the current database deleted *and* inserted per batch
    /// (the paper's N % = M %).
    pub update_fraction: f64,
    /// Noise bounding hypercube.
    pub bounds: (f64, f64),
    /// The clusters.
    pub clusters: Vec<ScenarioCluster>,
    /// At most this fraction of each batch's insertion budget feeds
    /// currently-appearing clusters (the rest follows the standing mixture).
    pub appear_share: f64,
}

/// The six named scenarios evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Random churn from the standing distribution.
    Random,
    /// A new cluster appears inside the populated region.
    Appear,
    /// A new cluster appears in a region with no previous points at all.
    ExtremeAppear,
    /// An old cluster disappears.
    Disappear,
    /// One cluster gradually moves across space.
    GradMove,
    /// Appear + disappear + move + random churn combined (Figure 8).
    Complex,
    /// Two clusters drift toward each other until they fuse — an extension
    /// beyond the paper's six dynamics (its "complex dynamics" future
    /// work).
    Merge,
    /// One apparent cluster drifts apart into two — the inverse extension.
    SplitDrift,
    /// One cluster's density changes over time (its sigma shrinks batch by
    /// batch) — another extension beyond the paper's six dynamics.
    Densify,
}

impl ScenarioKind {
    /// Lower-case name used in tables, e.g. `"extappear"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Random => "random",
            Self::Appear => "appear",
            Self::ExtremeAppear => "extappear",
            Self::Disappear => "disappear",
            Self::GradMove => "gradmove",
            Self::Complex => "complex",
            Self::Merge => "merge",
            Self::SplitDrift => "splitdrift",
            Self::Densify => "densify",
        }
    }

    /// The paper's six kinds, in the order Table 1 lists them.
    #[must_use]
    pub fn all() -> [ScenarioKind; 6] {
        [
            Self::Random,
            Self::Appear,
            Self::Disappear,
            Self::ExtremeAppear,
            Self::GradMove,
            Self::Complex,
        ]
    }

    /// The paper's six kinds plus the merge/split-drift/densify
    /// extensions.
    #[must_use]
    pub fn extended() -> [ScenarioKind; 9] {
        [
            Self::Random,
            Self::Appear,
            Self::Disappear,
            Self::ExtremeAppear,
            Self::GradMove,
            Self::Complex,
            Self::Merge,
            Self::SplitDrift,
            Self::Densify,
        ]
    }
}

/// Default cluster standard deviation for the named scenarios.
const SIGMA: f64 = 2.5;
/// Default bounds of the populated region for the named scenarios.
const BOUNDS: (f64, f64) = (0.0, 100.0);
/// Default noise fraction for the named scenarios.
const NOISE: f64 = 0.05;

impl ScenarioSpec {
    /// Builds the named scenario of the paper for the given dimensionality,
    /// initial database size and per-batch update fraction.
    ///
    /// Cluster layouts follow the paper's qualitative descriptions: static
    /// clusters sit on a diagonal grid, appearing clusters grow in an
    /// anti-diagonal corner (inside the noise region for [`ScenarioKind::Appear`],
    /// strictly outside all previous data for [`ScenarioKind::ExtremeAppear`]),
    /// a disappearing cluster is drained from batch 1 on, and a moving
    /// cluster translates by 3 % of the span per batch.
    #[must_use]
    pub fn named(
        kind: ScenarioKind,
        dim: usize,
        initial_size: usize,
        update_fraction: f64,
    ) -> Self {
        assert!(dim > 0, "scenario requires dim > 0");
        let (lo, hi) = BOUNDS;
        let span = hi - lo;
        // A mean at pattern (a, b, a, b, ...) of the span.
        let corner = |a: f64, b: f64| -> Vec<f64> {
            (0..dim)
                .map(|ax| lo + span * if ax % 2 == 0 { a } else { b })
                .collect()
        };
        let diag = |t: f64| -> Vec<f64> { vec![lo + span * t; dim] };
        let stat = |mean: Vec<f64>| ScenarioCluster {
            model: ClusterModel::new(mean, SIGMA),
            dynamics: Dynamics::Static,
        };

        let clusters = match kind {
            ScenarioKind::Random => vec![
                stat(diag(0.2)),
                stat(diag(0.5)),
                stat(diag(0.8)),
                stat(corner(0.8, 0.2)),
            ],
            ScenarioKind::Appear => vec![
                stat(diag(0.25)),
                stat(diag(0.5)),
                stat(diag(0.75)),
                ScenarioCluster {
                    model: ClusterModel::new(corner(0.9, 0.1), SIGMA),
                    dynamics: Dynamics::Appear {
                        at_batch: 0,
                        target: initial_size / 5,
                    },
                },
            ],
            ScenarioKind::ExtremeAppear => vec![
                stat(diag(0.25)),
                stat(diag(0.5)),
                stat(diag(0.75)),
                ScenarioCluster {
                    // Strictly outside the noise hypercube: no previous
                    // points, not even noise (paper's "extreme appear").
                    model: ClusterModel::new(vec![hi + 0.3 * span; dim], SIGMA),
                    dynamics: Dynamics::Appear {
                        at_batch: 0,
                        target: initial_size / 5,
                    },
                },
            ],
            ScenarioKind::Disappear => vec![
                stat(diag(0.2)),
                ScenarioCluster {
                    model: ClusterModel::new(diag(0.5), SIGMA),
                    dynamics: Dynamics::Disappear { at_batch: 0 },
                },
                stat(diag(0.8)),
                stat(corner(0.8, 0.2)),
            ],
            ScenarioKind::GradMove => vec![
                stat(diag(0.3)),
                stat(diag(0.7)),
                ScenarioCluster {
                    model: ClusterModel::new(corner(0.85, 0.15), SIGMA),
                    dynamics: Dynamics::Move {
                        velocity: {
                            let mut v = vec![0.0; dim];
                            // Drift along the second axis (or the first in 1-d).
                            v[1 % dim] = 0.03 * span;
                            v
                        },
                    },
                },
            ],
            ScenarioKind::Complex => vec![
                stat(diag(0.3)),
                stat(diag(0.6)),
                ScenarioCluster {
                    model: ClusterModel::new(corner(0.15, 0.85), SIGMA),
                    dynamics: Dynamics::Disappear { at_batch: 0 },
                },
                ScenarioCluster {
                    model: ClusterModel::new(corner(0.85, 0.15), SIGMA),
                    dynamics: Dynamics::Move {
                        velocity: {
                            let mut v = vec![0.0; dim];
                            v[1 % dim] = 0.03 * span;
                            v
                        },
                    },
                },
                ScenarioCluster {
                    model: ClusterModel::new(diag(0.9), SIGMA),
                    dynamics: Dynamics::Appear {
                        at_batch: 0,
                        target: initial_size / 6,
                    },
                },
            ],
            ScenarioKind::Merge => {
                // Two clusters approach a meeting point at diag(0.5) by
                // 2 % of the span per batch each.
                let towards = |from: f64| {
                    let mut v = vec![0.0; dim];
                    let dir = if from < 0.5 { 1.0 } else { -1.0 };
                    for x in v.iter_mut() {
                        *x = dir * 0.02 * span;
                    }
                    v
                };
                vec![
                    stat(corner(0.8, 0.2)),
                    ScenarioCluster {
                        model: ClusterModel::new(diag(0.2), SIGMA),
                        dynamics: Dynamics::Move {
                            velocity: towards(0.2),
                        },
                    },
                    ScenarioCluster {
                        model: ClusterModel::new(diag(0.8), SIGMA),
                        dynamics: Dynamics::Move {
                            velocity: towards(0.8),
                        },
                    },
                ]
            }
            ScenarioKind::SplitDrift => {
                // Two co-located clusters (one apparent cluster) drift
                // apart along the diagonal.
                let away = |dir: f64| {
                    let mut v = vec![0.0; dim];
                    for x in v.iter_mut() {
                        *x = dir * 0.02 * span;
                    }
                    v
                };
                vec![
                    stat(corner(0.8, 0.2)),
                    ScenarioCluster {
                        model: ClusterModel::new(diag(0.5), SIGMA),
                        dynamics: Dynamics::Move {
                            velocity: away(-1.0),
                        },
                    },
                    ScenarioCluster {
                        model: ClusterModel::new(diag(0.5), SIGMA),
                        dynamics: Dynamics::Move {
                            velocity: away(1.0),
                        },
                    },
                ]
            }
            ScenarioKind::Densify => vec![
                stat(diag(0.2)),
                stat(diag(0.8)),
                ScenarioCluster {
                    // Starts diffuse and condenses by 10 % per batch.
                    model: ClusterModel::new(corner(0.8, 0.2), SIGMA * 3.0),
                    dynamics: Dynamics::Densify { factor: 0.9 },
                },
            ],
        };

        Self {
            dim,
            initial_size,
            noise_fraction: NOISE,
            update_fraction,
            bounds: BOUNDS,
            clusters,
            appear_share: 0.8,
        }
    }
}

/// The evolving state of a scenario: per-cluster member lists, current
/// (possibly moved) means, and the batch counter.
#[derive(Debug, Clone)]
pub struct ScenarioEngine {
    spec: ScenarioSpec,
    batch_index: usize,
    cur_means: Vec<Vec<f64>>,
    /// Current sigma per cluster (densify dynamics mutate it).
    cur_sigmas: Vec<f64>,
    /// Live member ids per cluster (index == label).
    members: Vec<Vec<PointId>>,
    /// Live noise point ids.
    noise: Vec<PointId>,
    total_live: usize,
    /// Labels of the last planned-but-unconfirmed insertions.
    awaiting: Option<Vec<Label>>,
}

impl ScenarioEngine {
    /// Creates an engine for the given spec. Call
    /// [`ScenarioEngine::populate`] next to build the initial database.
    #[must_use]
    pub fn new(spec: ScenarioSpec) -> Self {
        let cur_means = spec.clusters.iter().map(|c| c.model.mean.clone()).collect();
        let cur_sigmas = spec.clusters.iter().map(|c| c.model.sigma).collect();
        let k = spec.clusters.len();
        Self {
            spec,
            batch_index: 0,
            cur_means,
            cur_sigmas,
            members: vec![Vec::new(); k],
            noise: Vec::new(),
            total_live: 0,
            awaiting: None,
        }
    }

    /// The scenario specification.
    #[must_use]
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Index of the next batch [`Self::plan`] will produce.
    #[must_use]
    pub fn batch_index(&self) -> usize {
        self.batch_index
    }

    /// Number of live points the engine believes exist.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.total_live
    }

    /// Current member count of cluster `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn cluster_size(&self, c: usize) -> usize {
        self.members[c].len()
    }

    /// Current (possibly drifted) mean of cluster `c`.
    #[must_use]
    pub fn current_mean(&self, c: usize) -> &[f64] {
        &self.cur_means[c]
    }

    /// Current (possibly densified) sigma of cluster `c`.
    #[must_use]
    pub fn current_sigma(&self, c: usize) -> f64 {
        self.cur_sigmas[c]
    }

    /// Builds and returns the initial database, registering every point's
    /// ground truth internally.
    ///
    /// Clusters with [`Dynamics::Appear`] start empty; all others share the
    /// non-noise budget in proportion to their model weights.
    pub fn populate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> PointStore {
        let batch = self.populate_batch(rng);
        let mut store = PointStore::with_capacity(self.spec.dim, batch.inserts.len());
        let inserted = store.apply(&batch);
        self.confirm(&inserted);
        store
    }

    /// The initial database as an insert-only batch, for flows that apply
    /// updates through a service layer (e.g. a shard router) instead of
    /// into a local store. Draws the same random points in the same order
    /// as [`Self::populate`]; register the assigned ids with
    /// [`Self::confirm`] afterwards.
    ///
    /// # Panics
    /// Panics if the engine already holds live points.
    pub fn populate_batch<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Batch {
        assert_eq!(self.total_live, 0, "populate must be called once, first");
        assert!(self.awaiting.is_none(), "a planned batch is unconfirmed");
        let n = self.spec.initial_size;
        let n_noise = (n as f64 * self.spec.noise_fraction).round() as usize;
        let n_clustered = n - n_noise;
        let mut inserts: Vec<(Vec<f64>, Label)> = Vec::with_capacity(n);

        let initial: Vec<usize> = self
            .spec
            .clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| !matches!(c.dynamics, Dynamics::Appear { .. }))
            .map(|(i, _)| i)
            .collect();
        let weight_total: f64 = initial
            .iter()
            .map(|&i| self.spec.clusters[i].model.weight)
            .sum();

        let mut produced = 0usize;
        for (pos, &ci) in initial.iter().enumerate() {
            let share = if pos + 1 == initial.len() {
                n_clustered - produced
            } else {
                (n_clustered as f64 * self.spec.clusters[ci].model.weight / weight_total).round()
                    as usize
            };
            for _ in 0..share {
                let p =
                    gaussian_point(rng, &self.cur_means[ci], self.spec.clusters[ci].model.sigma);
                inserts.push((p, Some(ci as u32)));
            }
            produced += share;
        }
        for _ in 0..n_noise {
            let p = uniform_point(rng, self.spec.dim, self.spec.bounds.0, self.spec.bounds.1);
            inserts.push((p, None));
        }
        self.awaiting = Some(inserts.iter().map(|(_, label)| *label).collect());
        Batch {
            deletes: Vec::new(),
            inserts,
        }
    }

    /// `true` when cluster `c`'s dynamics are active at batch `b`.
    fn appear_active(&self, c: usize, b: usize) -> bool {
        matches!(self.spec.clusters[c].dynamics, Dynamics::Appear { at_batch, target }
            if b >= at_batch && self.members[c].len() < target)
    }

    fn disappear_active(&self, c: usize, b: usize) -> bool {
        matches!(self.spec.clusters[c].dynamics, Dynamics::Disappear { at_batch }
            if b >= at_batch && !self.members[c].is_empty())
    }

    /// Plans the next batch: `update_fraction` of the live points deleted,
    /// the same number inserted, allocated according to each cluster's
    /// dynamics. The engine's ground truth is updated for the deletions
    /// immediately; the insertions are registered by [`Self::confirm`].
    ///
    /// # Panics
    /// Panics if the previous planned batch has not been confirmed, or the
    /// database is empty.
    pub fn plan<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Batch {
        assert!(
            self.awaiting.is_none(),
            "previous batch must be confirmed before planning the next"
        );
        assert!(
            self.total_live > 0,
            "cannot plan updates on an empty database"
        );
        let b = self.batch_index;
        let budget = ((self.total_live as f64 * self.spec.update_fraction).round() as usize).max(1);

        let mut deletes: Vec<PointId> = Vec::with_capacity(budget);
        // (cluster, count) pairs of deletions taken from moving clusters, to
        // be re-inserted at the shifted mean.
        let mut moved: Vec<(usize, usize)> = Vec::new();

        // 1. Drain disappearing clusters first.
        for c in 0..self.spec.clusters.len() {
            if deletes.len() >= budget || !self.disappear_active(c, b) {
                continue;
            }
            let take = (budget - deletes.len()).min(self.members[c].len());
            for _ in 0..take {
                let idx = rng.gen_range(0..self.members[c].len());
                deletes.push(self.members[c].swap_remove(idx));
            }
        }

        // 2. Moving and densifying clusters: proportional share of the
        //    budget, re-inserted below at the updated mean/sigma.
        for c in 0..self.spec.clusters.len() {
            if deletes.len() >= budget {
                break;
            }
            let (is_reshaping, velocity, factor) = match self.spec.clusters[c].dynamics {
                Dynamics::Move { ref velocity } => (true, Some(velocity.clone()), None),
                Dynamics::Densify { factor } => (true, None, Some(factor)),
                _ => (false, None, None),
            };
            if !is_reshaping {
                continue;
            }
            let share = (budget as f64 * self.members[c].len() as f64 / self.total_live as f64)
                .round() as usize;
            let take = share.min(budget - deletes.len()).min(self.members[c].len());
            for _ in 0..take {
                let idx = rng.gen_range(0..self.members[c].len());
                deletes.push(self.members[c].swap_remove(idx));
            }
            if take > 0 {
                moved.push((c, take));
            }
            // The cluster evolves every batch regardless of quota.
            if let Some(v) = velocity {
                for (m, vx) in self.cur_means[c].iter_mut().zip(&v) {
                    *m += vx;
                }
            }
            if let Some(f) = factor {
                self.cur_sigmas[c] *= f;
            }
        }

        // 3. Random churn over everything still alive.
        while deletes.len() < budget {
            let Some(id) = self.take_uniform(rng) else {
                break;
            };
            deletes.push(id);
        }

        // Insertions: same count as deletions.
        let ins_budget = deletes.len();
        let mut inserts: Vec<(Vec<f64>, Label)> = Vec::with_capacity(ins_budget);

        // a. Moving/densifying clusters get their deleted points back at
        //    the updated mean and spread.
        for &(c, count) in &moved {
            let sigma = self.cur_sigmas[c];
            for _ in 0..count.min(ins_budget - inserts.len()) {
                let p = gaussian_point(rng, &self.cur_means[c], sigma);
                inserts.push((p, Some(c as u32)));
            }
        }

        // b. Appearing clusters: up to `appear_share` of the batch, split
        //    evenly among the active ones, capped at each one's deficit.
        let active_appear: Vec<usize> = (0..self.spec.clusters.len())
            .filter(|&c| self.appear_active(c, b))
            .collect();
        if !active_appear.is_empty() {
            let pool = ((ins_budget as f64 * self.spec.appear_share) as usize)
                .min(ins_budget - inserts.len());
            let per = pool / active_appear.len().max(1);
            for &c in &active_appear {
                let Dynamics::Appear { target, .. } = self.spec.clusters[c].dynamics else {
                    unreachable!("appear_active implies Appear dynamics");
                };
                let deficit = target.saturating_sub(self.members[c].len());
                let take = per.min(deficit).min(ins_budget - inserts.len());
                let sigma = self.cur_sigmas[c];
                for _ in 0..take {
                    let p = gaussian_point(rng, &self.cur_means[c], sigma);
                    inserts.push((p, Some(c as u32)));
                }
            }
        }

        // c. Remainder follows the standing mixture (static + moving
        //    clusters at current means, plus noise).
        let standing: Vec<usize> = (0..self.spec.clusters.len())
            .filter(|&c| match self.spec.clusters[c].dynamics {
                Dynamics::Static | Dynamics::Move { .. } | Dynamics::Densify { .. } => true,
                Dynamics::Appear { at_batch, target } => {
                    b >= at_batch && self.members[c].len() >= target
                }
                Dynamics::Disappear { at_batch } => b < at_batch,
            })
            .collect();
        let weight_total: f64 = standing
            .iter()
            .map(|&c| self.spec.clusters[c].model.weight)
            .sum();
        while inserts.len() < ins_budget {
            if standing.is_empty() || rng.gen::<f64>() < self.spec.noise_fraction {
                let p = uniform_point(rng, self.spec.dim, self.spec.bounds.0, self.spec.bounds.1);
                inserts.push((p, None));
            } else {
                let mut t = rng.gen::<f64>() * weight_total;
                let mut chosen = standing[standing.len() - 1];
                for &c in &standing {
                    t -= self.spec.clusters[c].model.weight;
                    if t <= 0.0 {
                        chosen = c;
                        break;
                    }
                }
                let p = gaussian_point(rng, &self.cur_means[chosen], self.cur_sigmas[chosen]);
                inserts.push((p, Some(chosen as u32)));
            }
        }

        self.awaiting = Some(inserts.iter().map(|(_, l)| *l).collect());
        self.total_live -= deletes.len();
        self.batch_index += 1;
        Batch { deletes, inserts }
    }

    /// Removes one live id uniformly across all clusters and noise.
    fn take_uniform<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<PointId> {
        let total: usize = self.members.iter().map(Vec::len).sum::<usize>() + self.noise.len();
        if total == 0 {
            return None;
        }
        let mut r = rng.gen_range(0..total);
        for list in self
            .members
            .iter_mut()
            .chain(std::iter::once(&mut self.noise))
        {
            if r < list.len() {
                let idx = rng.gen_range(0..list.len());
                return Some(list.swap_remove(idx));
            }
            r -= list.len();
        }
        None
    }

    /// Registers the ids assigned to the insertions of the last planned
    /// batch (in the batch's insertion order).
    ///
    /// # Panics
    /// Panics if no batch is awaiting confirmation or the id count differs
    /// from the planned insertion count.
    pub fn confirm(&mut self, inserted: &[PointId]) {
        let labels = self
            .awaiting
            .take()
            .expect("confirm called without a planned batch");
        assert_eq!(
            labels.len(),
            inserted.len(),
            "confirmed id count must match planned insertions"
        );
        for (&id, label) in inserted.iter().zip(&labels) {
            match label {
                Some(c) => self.members[*c as usize].push(id),
                None => self.noise.push(id),
            }
        }
        self.total_live += inserted.len();
    }

    /// Plans the next batch, applies it directly to `store`, confirms it,
    /// and returns the batch plus the ids of the inserted points — the
    /// convenience path for flows without an incremental maintainer (e.g.
    /// the complete-rebuild baseline).
    pub fn step_plain<R: Rng + ?Sized>(
        &mut self,
        store: &mut PointStore,
        rng: &mut R,
    ) -> (Batch, Vec<PointId>) {
        let batch = self.plan(rng);
        let inserted = store.apply(&batch);
        self.confirm(&inserted);
        (batch, inserted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(kind: ScenarioKind, n: usize) -> (ScenarioEngine, PointStore, StdRng) {
        let mut rng = StdRng::seed_from_u64(1234);
        let spec = ScenarioSpec::named(kind, 2, n, 0.05);
        let mut eng = ScenarioEngine::new(spec);
        let store = eng.populate(&mut rng);
        (eng, store, rng)
    }

    /// The engine's ground truth matches the store exactly after any number
    /// of plan/apply/confirm rounds.
    fn check_consistency(eng: &ScenarioEngine, store: &PointStore) {
        assert_eq!(eng.live_count(), store.len());
        for (c, list) in eng.members.iter().enumerate() {
            for &id in list {
                assert!(store.contains(id));
                assert_eq!(store.label(id), Some(c as u32));
            }
        }
        for &id in &eng.noise {
            assert!(store.contains(id));
            assert_eq!(store.label(id), None);
        }
        let tracked: usize = eng.members.iter().map(Vec::len).sum::<usize>() + eng.noise.len();
        assert_eq!(tracked, store.len());
    }

    #[test]
    fn populate_matches_spec_size_and_labels() {
        let (eng, store, _) = engine(ScenarioKind::Random, 2000);
        assert_eq!(store.len(), 2000);
        check_consistency(&eng, &store);
        // ~5% noise.
        let noise = store.iter().filter(|(_, _, l)| l.is_none()).count();
        assert!((60..140).contains(&noise), "noise count {noise}");
    }

    #[test]
    fn appear_cluster_starts_empty_and_grows() {
        let (mut eng, mut store, mut rng) = engine(ScenarioKind::Appear, 2000);
        let appear_idx = 3;
        assert_eq!(eng.cluster_size(appear_idx), 0);
        for _ in 0..20 {
            eng.step_plain(&mut store, &mut rng);
        }
        check_consistency(&eng, &store);
        assert!(
            eng.cluster_size(appear_idx) > 100,
            "appear cluster grew to {}",
            eng.cluster_size(appear_idx)
        );
        // Target is initial_size/5 = 400; must not overshoot.
        assert!(eng.cluster_size(appear_idx) <= 400);
    }

    #[test]
    fn disappear_cluster_is_drained() {
        let (mut eng, mut store, mut rng) = engine(ScenarioKind::Disappear, 2000);
        let dying = 1;
        let before = eng.cluster_size(dying);
        assert!(before > 300);
        for _ in 0..10 {
            eng.step_plain(&mut store, &mut rng);
        }
        check_consistency(&eng, &store);
        assert_eq!(eng.cluster_size(dying), 0, "cluster fully drained");
        // Database size stays constant (equal inserts and deletes).
        assert_eq!(store.len(), 2000);
    }

    #[test]
    fn gradmove_mean_drifts() {
        let (mut eng, mut store, mut rng) = engine(ScenarioKind::GradMove, 2000);
        let mover = 2;
        let start = eng.current_mean(mover).to_vec();
        for _ in 0..10 {
            eng.step_plain(&mut store, &mut rng);
        }
        check_consistency(&eng, &store);
        let end = eng.current_mean(mover);
        let shift = idb_geometry::dist(&start, end);
        assert!(
            (shift - 30.0).abs() < 1e-9,
            "drift over 10 batches = {shift}"
        );
        // The cluster's population is preserved while it moves.
        assert!(eng.cluster_size(mover) > 300);
    }

    #[test]
    fn batches_are_balanced_and_sized() {
        let (mut eng, mut store, mut rng) = engine(ScenarioKind::Complex, 4000);
        for _ in 0..8 {
            let before = store.len();
            let (batch, inserted) = eng.step_plain(&mut store, &mut rng);
            assert_eq!(batch.deletes.len(), batch.inserts.len());
            assert_eq!(inserted.len(), batch.inserts.len());
            let expect = (before as f64 * 0.05).round() as usize;
            assert!(
                (batch.deletes.len() as i64 - expect as i64).abs() <= 1,
                "batch size {} vs expected {expect}",
                batch.deletes.len()
            );
            assert_eq!(store.len(), before);
        }
        check_consistency(&eng, &store);
    }

    #[test]
    fn extreme_appear_region_initially_empty() {
        let (eng, store, _) = engine(ScenarioKind::ExtremeAppear, 3000);
        let target_mean = &eng.spec().clusters[3].model.mean;
        for (_, p, _) in store.iter() {
            assert!(
                idb_geometry::dist(p, target_mean) > 20.0,
                "no initial point near the extreme-appear region"
            );
        }
    }

    #[test]
    fn extreme_appear_fills_new_region() {
        let (mut eng, mut store, mut rng) = engine(ScenarioKind::ExtremeAppear, 3000);
        for _ in 0..25 {
            eng.step_plain(&mut store, &mut rng);
        }
        let target_mean = eng.current_mean(3).to_vec();
        let near = store
            .iter()
            .filter(|(_, p, _)| idb_geometry::dist(p, &target_mean) < 10.0)
            .count();
        assert!(near > 100, "points materialized in the new region: {near}");
    }

    #[test]
    #[should_panic(expected = "must be confirmed")]
    fn double_plan_without_confirm_panics() {
        let (mut eng, _store, mut rng) = engine(ScenarioKind::Random, 500);
        let _ = eng.plan(&mut rng);
        let _ = eng.plan(&mut rng);
    }

    #[test]
    #[should_panic(expected = "id count")]
    fn confirm_with_wrong_count_panics() {
        let (mut eng, _store, mut rng) = engine(ScenarioKind::Random, 500);
        let _ = eng.plan(&mut rng);
        eng.confirm(&[]);
    }

    #[test]
    fn all_kinds_run_ten_batches() {
        for kind in ScenarioKind::all() {
            let (mut eng, mut store, mut rng) = engine(kind, 1500);
            for _ in 0..10 {
                eng.step_plain(&mut store, &mut rng);
            }
            check_consistency(&eng, &store);
            assert_eq!(store.len(), 1500, "{kind:?} preserves database size");
        }
    }

    #[test]
    fn merging_clusters_converge() {
        let (mut eng, mut store, mut rng) = engine(ScenarioKind::Merge, 2000);
        let d0 = idb_geometry::dist(eng.current_mean(1), eng.current_mean(2));
        for _ in 0..10 {
            eng.step_plain(&mut store, &mut rng);
        }
        check_consistency(&eng, &store);
        let d1 = idb_geometry::dist(eng.current_mean(1), eng.current_mean(2));
        assert!(d1 < d0 * 0.6, "means converged: {d0:.1} -> {d1:.1}");
        // Both clusters keep their populations while moving.
        assert!(eng.cluster_size(1) > 300 && eng.cluster_size(2) > 300);
    }

    #[test]
    fn splitting_clusters_diverge() {
        let (mut eng, mut store, mut rng) = engine(ScenarioKind::SplitDrift, 2000);
        let d0 = idb_geometry::dist(eng.current_mean(1), eng.current_mean(2));
        assert!(d0 < 1e-9, "initially co-located");
        for _ in 0..10 {
            eng.step_plain(&mut store, &mut rng);
        }
        check_consistency(&eng, &store);
        let d1 = idb_geometry::dist(eng.current_mean(1), eng.current_mean(2));
        assert!(d1 > 20.0, "means diverged to {d1:.1}");
    }

    #[test]
    fn densify_shrinks_sigma_and_spread() {
        let (mut eng, mut store, mut rng) = engine(ScenarioKind::Densify, 3000);
        let dense = 2;
        let sigma0 = eng.current_sigma(dense);
        assert!((sigma0 - 7.5).abs() < 1e-9, "starts diffuse at 3x SIGMA");
        let spread = |eng: &ScenarioEngine, store: &PointStore, c: usize| -> f64 {
            let mean = eng.current_mean(c).to_vec();
            let members = &eng.members[c];
            members
                .iter()
                .map(|&id| idb_geometry::dist(store.point(id), &mean))
                .sum::<f64>()
                / members.len() as f64
        };
        let spread0 = spread(&eng, &store, dense);
        for _ in 0..15 {
            eng.step_plain(&mut store, &mut rng);
        }
        check_consistency(&eng, &store);
        let sigma1 = eng.current_sigma(dense);
        assert!((sigma1 - sigma0 * 0.9f64.powi(15)).abs() < 1e-9);
        let spread1 = spread(&eng, &store, dense);
        assert!(
            spread1 < spread0 * 0.8,
            "member spread condensed: {spread0:.2} -> {spread1:.2}"
        );
        // Population is preserved while density changes.
        assert!(eng.cluster_size(dense) > 500);
    }

    #[test]
    fn extended_kinds_run_ten_batches() {
        for kind in ScenarioKind::extended() {
            let (mut eng, mut store, mut rng) = engine(kind, 1200);
            for _ in 0..10 {
                eng.step_plain(&mut store, &mut rng);
            }
            check_consistency(&eng, &store);
            assert_eq!(store.len(), 1200, "{kind:?} preserves database size");
        }
    }

    #[test]
    fn complex_has_all_dynamics() {
        let spec = ScenarioSpec::named(ScenarioKind::Complex, 5, 1000, 0.02);
        let mut kinds = (false, false, false, false);
        for c in &spec.clusters {
            match c.dynamics {
                Dynamics::Static => kinds.0 = true,
                Dynamics::Appear { .. } => kinds.1 = true,
                Dynamics::Disappear { .. } => kinds.2 = true,
                Dynamics::Move { .. } => kinds.3 = true,
                Dynamics::Densify { .. } => {}
            }
        }
        assert_eq!(kinds, (true, true, true, true));
    }
}
