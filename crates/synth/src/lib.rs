//! Synthetic workloads for the incremental data bubbles evaluation.
//!
//! The paper evaluates on synthetic databases of 50,000–110,000 points in
//! 2, 5, 10 and 20 dimensions, populated from Gaussian clusters plus uniform
//! noise, and subjected to six kinds of dynamics (Section 5):
//!
//! * **random** — points inserted and deleted at random from the standing
//!   distribution;
//! * **appear** — a new cluster grows over time inside the populated region;
//! * **extreme appear** — a new cluster grows in a region that previously
//!   contained no points at all, not even noise;
//! * **disappear** — an existing cluster is deleted away over time;
//! * **gradmove** — one cluster drifts across space via paired
//!   deletions/insertions;
//! * **complex** — all of the above at once (Figure 8).
//!
//! [`dataset`] builds the static initial databases; [`scenario`] turns a
//! [`scenario::ScenarioSpec`] into a [`scenario::ScenarioEngine`] that emits
//! [`idb_store::Batch`]es with maintained ground-truth labels, so the
//! evaluation crate can compute F-scores at any point in the run.
//!
//! All randomness flows through caller-provided [`rand::Rng`]s; experiments
//! seed them explicitly, making every reported number reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod faults;
pub mod gauss;
pub mod io;
pub mod multistream;
pub mod scenario;

pub use dataset::{ClusterModel, MixtureModel};
pub use faults::{
    faulty_batch, flip_bit, BatchFault, FaultCold, FaultSegmentSink, FaultSegments, FaultSink,
    ALL_BATCH_FAULTS,
};
pub use io::{load_csv, save_csv, CsvError};
pub use multistream::{stream_seed, MultiStreamEngine};
pub use scenario::{Dynamics, ScenarioEngine, ScenarioKind, ScenarioSpec};
