//! The clustering F-measure (Larsen & Aone; the paper's reference \[13\]).
//!
//! For a ground-truth class `i` and an extracted cluster `j`, with overlap
//! `n_ij`, precision is `p = n_ij / |j|` and recall is `r = n_ij / |i|`;
//! `F(i, j) = 2pr / (p + r)`. The overall score weights each class by its
//! share of the labeled points and takes the best-matching cluster:
//!
//! `F = Σ_i (|i| / N_labeled) · max_j F(i, j)`
//!
//! Noise points (label `None`) are not a class — a generator's uniform
//! background is not something a clustering should be rewarded or punished
//! for reconstructing — but they *do* count toward cluster sizes, so a
//! cluster that lumps noise together with a class pays for it in precision.

use idb_store::{PointId, PointStore};
use std::collections::HashMap;

/// Result of an F-measure evaluation.
#[derive(Debug, Clone)]
pub struct FScore {
    /// The class-size weighted overall score in `[0, 1]`.
    pub overall: f64,
    /// Per-class best `F(i, j)`, keyed by ground-truth label.
    pub per_class: Vec<(u32, f64)>,
    /// Number of labeled points considered.
    pub labeled_points: usize,
}

/// Scores extracted clusters (lists of raw point ids) against the store's
/// ground-truth labels.
///
/// # Examples
/// ```
/// use idb_eval::fscore;
/// use idb_store::PointStore;
///
/// let mut store = PointStore::new(1);
/// let a: Vec<u64> = (0..4).map(|i| u64::from(store.insert(&[i as f64], Some(0)).0)).collect();
/// let b: Vec<u64> = (0..4).map(|i| u64::from(store.insert(&[9.0 + i as f64], Some(1)).0)).collect();
/// assert_eq!(fscore(&store, &[a.clone(), b.clone()]).overall, 1.0);
///
/// // Merging both classes into one cluster costs precision.
/// let merged: Vec<u64> = a.into_iter().chain(b).collect();
/// let f = fscore(&store, &[merged]);
/// assert!((f.overall - 2.0 / 3.0).abs() < 1e-12);
/// ```
///
/// Returns `overall == 0` when the store holds no labeled points or the
/// clustering is empty.
#[must_use]
pub fn fscore(store: &PointStore, clusters: &[Vec<u64>]) -> FScore {
    // Class sizes over the *current* database contents.
    let mut class_size: HashMap<u32, usize> = HashMap::new();
    for (_, _, label) in store.iter() {
        if let Some(l) = label {
            *class_size.entry(l).or_default() += 1;
        }
    }
    let labeled_points: usize = class_size.values().sum();
    if labeled_points == 0 || clusters.is_empty() {
        return FScore {
            overall: 0.0,
            per_class: class_size.keys().map(|&l| (l, 0.0)).collect(),
            labeled_points,
        };
    }

    // Overlap counts n_ij.
    let mut best: HashMap<u32, f64> = class_size.keys().map(|&l| (l, 0.0)).collect();
    for cluster in clusters {
        let cluster_size = cluster.len();
        if cluster_size == 0 {
            continue;
        }
        let mut overlap: HashMap<u32, usize> = HashMap::new();
        for &id in cluster {
            if let Some(l) = store.label(PointId(id as u32)) {
                *overlap.entry(l).or_default() += 1;
            }
        }
        for (l, n_ij) in overlap {
            let p = n_ij as f64 / cluster_size as f64;
            let r = n_ij as f64 / class_size[&l] as f64;
            let f = if p + r > 0.0 {
                2.0 * p * r / (p + r)
            } else {
                0.0
            };
            let e = best.get_mut(&l).expect("class seen in store");
            if f > *e {
                *e = f;
            }
        }
    }

    // Sum in sorted-label order: HashMap iteration order varies per map
    // instance, and float addition is not associative, so summing in map
    // order would make the score differ between identical-seed runs.
    let mut per_class: Vec<(u32, f64)> = best.into_iter().collect();
    per_class.sort_unstable_by_key(|&(l, _)| l);
    let overall = per_class
        .iter()
        .map(|&(l, f)| class_size[&l] as f64 / labeled_points as f64 * f)
        .sum();
    FScore {
        overall,
        per_class,
        labeled_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_two_classes() -> (PointStore, Vec<u64>, Vec<u64>) {
        let mut s = PointStore::new(1);
        let a: Vec<u64> = (0..10)
            .map(|i| u64::from(s.insert(&[i as f64], Some(0)).0))
            .collect();
        let b: Vec<u64> = (0..30)
            .map(|i| u64::from(s.insert(&[100.0 + i as f64], Some(1)).0))
            .collect();
        (s, a, b)
    }

    #[test]
    fn perfect_clustering_scores_one() {
        let (store, a, b) = store_with_two_classes();
        let f = fscore(&store, &[a, b]);
        assert!((f.overall - 1.0).abs() < 1e-12);
        assert_eq!(f.labeled_points, 40);
        assert_eq!(f.per_class.len(), 2);
        assert!(f.per_class.iter().all(|&(_, v)| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn merged_clusters_lose_precision() {
        let (store, a, b) = store_with_two_classes();
        let mut merged = a.clone();
        merged.extend_from_slice(&b);
        let f = fscore(&store, &[merged]);
        // Class 0: p = 10/40, r = 1 → F = 0.4; class 1: p = 30/40, r = 1 →
        // F = 6/7. Weighted: (10·0.4 + 30·6/7)/40.
        let expect = (10.0 * 0.4 + 30.0 * (6.0 / 7.0)) / 40.0;
        assert!((f.overall - expect).abs() < 1e-12, "{}", f.overall);
    }

    #[test]
    fn split_class_loses_recall() {
        let (store, a, b) = store_with_two_classes();
        let (b1, b2) = b.split_at(15);
        let f = fscore(&store, &[a, b1.to_vec(), b2.to_vec()]);
        // Class 1's best match has p = 1, r = 0.5 → F = 2/3.
        let expect = (10.0 * 1.0 + 30.0 * (2.0 / 3.0)) / 40.0;
        assert!((f.overall - expect).abs() < 1e-12);
    }

    #[test]
    fn noise_in_cluster_reduces_precision_only() {
        let mut s = PointStore::new(1);
        let mut cluster: Vec<u64> = (0..10)
            .map(|i| u64::from(s.insert(&[i as f64], Some(0)).0))
            .collect();
        for i in 0..10 {
            cluster.push(u64::from(s.insert(&[50.0 + i as f64], None).0));
        }
        let f = fscore(&s, &[cluster]);
        // p = 0.5, r = 1 → F = 2/3; noise is not a class.
        assert!((f.overall - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(f.labeled_points, 10);
    }

    #[test]
    fn empty_inputs() {
        let (store, _, _) = store_with_two_classes();
        assert_eq!(fscore(&store, &[]).overall, 0.0);

        let empty = PointStore::new(1);
        assert_eq!(fscore(&empty, &[vec![]]).overall, 0.0);
    }

    #[test]
    fn unclustered_class_scores_zero_for_that_class() {
        let (store, a, _) = store_with_two_classes();
        let f = fscore(&store, &[a]);
        let class1 = f.per_class.iter().find(|&&(l, _)| l == 1).unwrap().1;
        assert_eq!(class1, 0.0);
        assert!((f.overall - 10.0 / 40.0).abs() < 1e-12);
    }
}
