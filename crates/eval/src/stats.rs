//! Aggregation of repeated measurements.
//!
//! Table 1 reports every number as mean and standard deviation over ten
//! repetitions; [`Aggregate`] is that pair, computed with Welford's online
//! algorithm so very long series stay numerically stable.

/// Online mean / standard-deviation accumulator (Welford).
#[derive(Debug, Clone, Copy, Default)]
pub struct Aggregate {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Aggregate {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Aggregates an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut a = Self::new();
        for s in samples {
            a.push(s);
        }
        a
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 for fewer than two samples) — the
    /// spread of the repetitions themselves, as Table 1 reports.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_series() {
        let a = Aggregate::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let a = Aggregate::from_samples([3.5]);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.std_dev(), 0.0);
    }

    #[test]
    fn empty() {
        let a = Aggregate::new();
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.std_dev(), 0.0);
    }

    #[test]
    fn constant_series_has_zero_std() {
        let a = Aggregate::from_samples(std::iter::repeat_n(1.25, 100));
        assert!((a.mean() - 1.25).abs() < 1e-12);
        assert!(a.std_dev() < 1e-12);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Welford keeps precision where the naive sum-of-squares would
        // catastrophically cancel.
        let base = 1e9;
        let a = Aggregate::from_samples((0..1000).map(|i| base + (i % 2) as f64));
        assert!((a.mean() - (base + 0.5)).abs() < 1e-3);
        assert!((a.std_dev() - 0.5).abs() < 1e-6);
    }
}
