//! Compactness of a data summarization (Table 1's second metric).
//!
//! The paper defines compactness as "the sum of the square distances of the
//! points in the data bubble to its representative": an effective
//! (re)positioning of bubble representatives keeps every representative
//! close to the points it summarizes, so the incremental scheme's
//! compactness should not significantly exceed that of completely rebuilt
//! bubbles. We report the *per-point* value (the sum divided by N) so runs
//! over different database sizes share one scale; the normalization only
//! rescales the column.

use idb_core::IncrementalBubbles;
use idb_geometry::metric::sq_dist;
use idb_store::PointStore;

/// Average squared member-to-representative distance over the whole
/// summarization. Zero for an empty database; empty bubbles contribute
/// nothing.
#[must_use]
pub fn compactness_per_point(bubbles: &IncrementalBubbles, store: &PointStore) -> f64 {
    let mut sum = 0.0;
    let mut count = 0u64;
    let mut rep = Vec::new();
    for b in bubbles.bubbles() {
        if !b.stats().rep_into(&mut rep) {
            continue;
        }
        for &id in b.members() {
            sum += sq_dist(store.point(id), &rep);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idb_core::MaintainerConfig;
    use idb_geometry::SearchStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_store() -> PointStore {
        let mut s = PointStore::new(2);
        for x in 0..10 {
            for y in 0..10 {
                s.insert(&[x as f64, y as f64], Some(0));
            }
        }
        for x in 0..10 {
            for y in 0..10 {
                s.insert(&[x as f64 + 1000.0, y as f64], Some(1));
            }
        }
        s
    }

    #[test]
    fn compactness_is_finite_and_positive() {
        let store = grid_store();
        let mut rng = StdRng::seed_from_u64(1);
        let mut search = SearchStats::new();
        let ib = IncrementalBubbles::build(&store, MaintainerConfig::new(8), &mut rng, &mut search);
        let c = compactness_per_point(&ib, &store);
        assert!(c.is_finite());
        assert!(c > 0.0);
        // Each grid spans 10×10; squared distance to a representative is
        // bounded by the squared grid diagonal (no bubble spans both grids
        // unless all seeds landed in one grid, which this seed does not do).
        assert!(c < 2.0 * 81.0 + 2.0 * 81.0, "c = {c}");
    }

    #[test]
    fn more_bubbles_means_lower_compactness() {
        let store = grid_store();
        let mut rng1 = StdRng::seed_from_u64(2);
        let mut rng2 = StdRng::seed_from_u64(2);
        let mut s1 = SearchStats::new();
        let mut s2 = SearchStats::new();
        let coarse =
            IncrementalBubbles::build(&store, MaintainerConfig::new(4), &mut rng1, &mut s1);
        let fine = IncrementalBubbles::build(&store, MaintainerConfig::new(40), &mut rng2, &mut s2);
        assert!(
            compactness_per_point(&fine, &store) < compactness_per_point(&coarse, &store),
            "finer summarization is more compact"
        );
    }

    #[test]
    fn single_member_bubbles_have_zero_compactness() {
        let mut store = PointStore::new(1);
        store.insert(&[0.0], None);
        store.insert(&[100.0], None);
        let mut rng = StdRng::seed_from_u64(3);
        let mut search = SearchStats::new();
        let ib = IncrementalBubbles::build(&store, MaintainerConfig::new(2), &mut rng, &mut search);
        assert_eq!(compactness_per_point(&ib, &store), 0.0);
    }
}
