//! Console tables and CSV output for the experiment harness.
//!
//! Deliberately tiny: a fixed-width text renderer whose output mirrors the
//! paper's tables, plus a CSV writer for downstream plotting. No external
//! dependencies.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data row exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}", w = w);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let sep: Vec<String> = (0..cols).map(|i| "-".repeat(widths[i])).collect();
        line(&sep, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Serializes as CSV (header + rows). Commas inside cells are replaced
    /// by semicolons — the harness never produces them, this is a guard.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |c: &str| c.replace(',', ";");
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a table as a CSV file, creating parent directories.
pub fn write_csv(table: &Table, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, table.to_csv())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["dataset", "F"]);
        t.push_row(["random2d", "0.84"]);
        t.push_row(["complex20d", "0.62"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("dataset"));
        assert!(lines[1].starts_with("----------"));
        assert!(lines[2].contains("0.84"));
        // The second column starts at the same offset in every row.
        let col = lines[2].find("0.84").unwrap();
        assert_eq!(lines[3].find("0.62").unwrap(), col);
    }

    #[test]
    fn csv_round_trip_structure() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["a"]);
        t.push_row(["x,y"]);
        assert_eq!(t.to_csv(), "a\nx;y\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("idb_eval_test_csv");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = Table::new(["x"]);
        t.push_row(["1"]);
        write_csv(&t, &path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
