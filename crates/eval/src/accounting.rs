//! Distance-computation accounting (Figures 10 and 11).
//!
//! The paper measures the benefit of its two efficiency contributions in
//! distance computations, the dominant cost of data summarization:
//!
//! * **Figure 10** — the fraction of point-to-seed distance computations
//!   pruned by the triangle inequality, available directly from
//!   [`SearchStats::pruned_fraction`](idb_geometry::SearchStats).
//! * **Figure 11** — the *distance saving factor*: how many distance
//!   computations a complete rebuild **without** triangle inequalities
//!   performs for every computation the incremental scheme **with**
//!   triangle inequalities performs over the same batch.
//!
//! Only fully evaluated distances ([`SearchStats::computed`]) count toward
//! the incremental side of the factor: early-exit partial evaluations
//! ([`SearchStats::partial`]) abandon after a prefix of the dimensions and
//! are deliberately excluded, keeping the factor conservative.

use idb_geometry::SearchStats;

/// Distance computations of one complete rebuild without triangle
/// inequalities: every one of the `n` points is compared against all `s`
/// seeds.
#[must_use]
pub fn rebuild_cost(n: u64, s: u64) -> u64 {
    n * s
}

/// The Figure 11 saving factor: `rebuild_cost / incremental.computed`.
///
/// Returns `f64::INFINITY` when the incremental scheme performed no
/// distance computation at all (e.g. a deletion-only batch with no
/// maintenance).
#[must_use]
pub fn distance_saving_factor(n: u64, s: u64, incremental: SearchStats) -> f64 {
    if incremental.computed == 0 {
        f64::INFINITY
    } else {
        rebuild_cost(n, s) as f64 / incremental.computed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_cost_is_n_times_s() {
        assert_eq!(rebuild_cost(100_000, 200), 20_000_000);
        assert_eq!(rebuild_cost(0, 200), 0);
    }

    #[test]
    fn saving_factor_ratio() {
        let inc = SearchStats {
            computed: 50_000,
            pruned: 150_000,
            partial: 0,
        };
        let f = distance_saving_factor(100_000, 100, inc);
        assert!((f - 200.0).abs() < 1e-12);
    }

    #[test]
    fn partial_evaluations_do_not_shrink_the_factor() {
        // Early-exit partials abandon after a prefix of the dimensions;
        // only full computations count against the incremental scheme.
        let full_only = SearchStats {
            computed: 50_000,
            pruned: 150_000,
            partial: 0,
        };
        let with_partials = SearchStats {
            computed: 50_000,
            pruned: 100_000,
            partial: 50_000,
        };
        assert_eq!(
            distance_saving_factor(100_000, 100, full_only),
            distance_saving_factor(100_000, 100, with_partials),
        );
    }

    #[test]
    fn zero_incremental_work_is_infinite_saving() {
        let inc = SearchStats::default();
        assert!(distance_saving_factor(1000, 10, inc).is_infinite());
    }

    #[test]
    fn factor_shrinks_with_update_size() {
        // Fixed database, growing batches: the incremental side computes
        // proportionally more, the rebuild stays constant.
        let n = 100_000u64;
        let s = 100u64;
        let small = SearchStats {
            computed: 2_000 * 30,
            pruned: 0,
            partial: 0,
        };
        let large = SearchStats {
            computed: 10_000 * 30,
            pruned: 0,
            partial: 0,
        };
        assert!(distance_saving_factor(n, s, small) > distance_saving_factor(n, s, large));
    }
}
