//! Evaluation machinery for the paper's experiments.
//!
//! * [`fscore`](mod@fscore) — the F-measure of Larsen & Aone (the paper's \[13\]):
//!   per-(class, cluster) `F = 2pr/(p+r)`, aggregated as the class-size
//!   weighted maximum over clusters. This is the quality number of Table 1.
//! * [`compactness`] — the sum of squared distances of each bubble's
//!   members to its representative (Table 1's second metric), reported per
//!   point so databases of different sizes are comparable.
//! * [`ari`] — the Adjusted Rand Index, a chance-corrected whole-partition
//!   metric complementing the best-match F-measure.
//! * [`accounting`] — distance-computation bookkeeping: pruning fractions
//!   (Figure 10) and the distance saving factor of incremental maintenance
//!   vs. complete rebuild (Figure 11).
//! * [`stats`] — mean/standard-deviation aggregation over experiment
//!   repetitions.
//! * [`table`] — fixed-width console tables and CSV files for the
//!   experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod ari;
pub mod compactness;
pub mod fscore;
pub mod stats;
pub mod table;

pub use accounting::{distance_saving_factor, rebuild_cost};
pub use ari::adjusted_rand_index;
pub use compactness::compactness_per_point;
pub use fscore::{fscore, FScore};
pub use stats::Aggregate;
pub use table::{write_csv, Table};
