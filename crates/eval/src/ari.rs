//! Adjusted Rand Index — a second, chance-corrected clustering quality
//! metric complementing the F-measure.
//!
//! The F-measure rewards each class's best-matching cluster; the ARI
//! scores the *whole partition* against ground truth, corrected for
//! chance: 1.0 for identical partitions, ≈0 for random labelings,
//! negative for worse-than-random. Both are reported by the extended
//! experiment harness so quality claims don't hinge on one metric's
//! idiosyncrasies.
//!
//! ARI is defined over points present in both partitions, so noise points
//! (no ground-truth class) and unclustered points are excluded here — the
//! same convention the F-measure module documents.

use idb_store::{PointId, PointStore};
use std::collections::HashMap;

/// Number of unordered pairs in a group of `n` elements.
fn pairs(n: u64) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// `Σ pairs(count)` over a contingency map, accumulated in ascending key
/// order so the floating-point sum is deterministic.
fn sorted_pair_sum<K: Ord + Copy>(counts: &HashMap<K, u64>) -> f64 {
    let mut entries: Vec<(K, u64)> = counts.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable_by_key(|&(k, _)| k);
    entries.iter().map(|&(_, c)| pairs(c)).sum()
}

/// Adjusted Rand Index between the store's ground-truth classes and the
/// given clusters, over the points that are in both a class and a cluster.
///
/// Returns 0.0 when fewer than two such points exist (no pair to score).
#[must_use]
pub fn adjusted_rand_index(store: &PointStore, clusters: &[Vec<u64>]) -> f64 {
    // Contingency table over co-labeled points.
    let mut cont: HashMap<(u32, usize), u64> = HashMap::new();
    let mut class_totals: HashMap<u32, u64> = HashMap::new();
    let mut cluster_totals: HashMap<usize, u64> = HashMap::new();
    let mut n: u64 = 0;
    for (j, cluster) in clusters.iter().enumerate() {
        for &id in cluster {
            let pid = PointId(id as u32);
            if !store.contains(pid) {
                continue;
            }
            if let Some(class) = store.label(pid) {
                *cont.entry((class, j)).or_default() += 1;
                *class_totals.entry(class).or_default() += 1;
                *cluster_totals.entry(j).or_default() += 1;
                n += 1;
            }
        }
    }
    if n < 2 {
        return 0.0;
    }

    // Float sums must run in key order, not HashMap iteration order, or
    // the result flips last bits from run to run.
    let sum_ij: f64 = sorted_pair_sum(&cont);
    let sum_a: f64 = sorted_pair_sum(&class_totals);
    let sum_b: f64 = sorted_pair_sum(&cluster_totals);
    let total_pairs = pairs(n);
    let expected = sum_a * sum_b / total_pairs;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < f64::EPSILON {
        // Degenerate: both partitions are single groups (or equivalent);
        // identical partitions score 1 by convention.
        return if (sum_ij - expected).abs() < f64::EPSILON {
            1.0
        } else {
            0.0
        };
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled_store() -> (PointStore, Vec<u64>, Vec<u64>) {
        let mut s = PointStore::new(1);
        let a: Vec<u64> = (0..20)
            .map(|i| u64::from(s.insert(&[i as f64], Some(0)).0))
            .collect();
        let b: Vec<u64> = (0..20)
            .map(|i| u64::from(s.insert(&[100.0 + i as f64], Some(1)).0))
            .collect();
        (s, a, b)
    }

    #[test]
    fn perfect_partition_scores_one() {
        let (s, a, b) = labeled_store();
        assert!((adjusted_rand_index(&s, &[a, b]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permuted_cluster_ids_still_score_one() {
        let (s, a, b) = labeled_store();
        assert!((adjusted_rand_index(&s, &[b, a]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merged_partition_scores_below_one() {
        let (s, a, b) = labeled_store();
        let mut merged = a;
        merged.extend(b);
        let ari = adjusted_rand_index(&s, &[merged]);
        assert!(ari < 0.1, "ari = {ari}");
    }

    #[test]
    fn half_swapped_partition_scores_in_between() {
        let (s, a, b) = labeled_store();
        // Swap the first 5 elements between clusters.
        let mut c1 = a.clone();
        let mut c2 = b.clone();
        for i in 0..5 {
            std::mem::swap(&mut c1[i], &mut c2[i]);
        }
        let ari = adjusted_rand_index(&s, &[c1, c2]);
        assert!(ari > 0.2 && ari < 0.9, "ari = {ari}");
    }

    #[test]
    fn noise_points_are_ignored() {
        let mut s = PointStore::new(1);
        let a: Vec<u64> = (0..10)
            .map(|i| u64::from(s.insert(&[i as f64], Some(0)).0))
            .collect();
        let mut with_noise = a.clone();
        for i in 0..10 {
            with_noise.push(u64::from(s.insert(&[50.0 + i as f64], None).0));
        }
        // The noise in the cluster doesn't change the score: only labeled
        // points count, and they are perfectly grouped.
        assert!((adjusted_rand_index(&s, &[with_noise]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_few_points_scores_zero() {
        let mut s = PointStore::new(1);
        let id = s.insert(&[0.0], Some(0));
        assert_eq!(adjusted_rand_index(&s, &[vec![u64::from(id.0)]]), 0.0);
        assert_eq!(adjusted_rand_index(&s, &[]), 0.0);
    }

    #[test]
    fn random_partition_scores_near_zero() {
        let (s, a, b) = labeled_store();
        // Interleave ids to destroy any correlation with the classes.
        let all: Vec<u64> = a.into_iter().chain(b).collect();
        let even: Vec<u64> = all.iter().copied().step_by(2).collect();
        let odd: Vec<u64> = all.iter().copied().skip(1).step_by(2).collect();
        let ari = adjusted_rand_index(&s, &[even, odd]);
        assert!(ari.abs() < 0.15, "ari = {ari}");
    }
}
