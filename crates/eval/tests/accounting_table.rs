//! Tests for the evaluation-side bookkeeping: distance accounting over
//! merged parallel counters, and the stability of the table renderer the
//! experiment harness prints (golden outputs — downstream scripts parse
//! them).

use idb_eval::accounting::{distance_saving_factor, rebuild_cost};
use idb_eval::table::Table;
use idb_geometry::{NearestSeeds, Parallelism, SearchStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// accounting: counter merging
// ---------------------------------------------------------------------------

/// Merging per-worker counters is plain u64 addition, so any chunking of
/// the same work must sum to the same totals — and feed the same Figure 11
/// saving factor.
#[test]
fn merged_counters_sum_like_one_counter() {
    let mut rng = StdRng::seed_from_u64(0xACC0);
    for _ in 0..200 {
        // Arbitrary per-worker shares of a search.
        let workers = rng.gen_range(1..=8);
        let shares: Vec<SearchStats> = (0..workers)
            .map(|_| SearchStats {
                computed: rng.gen_range(0..10_000),
                pruned: rng.gen_range(0..10_000),
                partial: rng.gen_range(0..10_000),
            })
            .collect();
        let mut merged = SearchStats::new();
        for s in &shares {
            merged += *s;
        }
        assert_eq!(
            merged.computed,
            shares.iter().map(|s| s.computed).sum::<u64>()
        );
        assert_eq!(merged.pruned, shares.iter().map(|s| s.pruned).sum::<u64>());
        assert_eq!(
            merged.partial,
            shares.iter().map(|s| s.partial).sum::<u64>()
        );
        // The saving factor only sees the merged totals; chunking must not
        // be observable through it.
        let n = rng.gen_range(1..1_000_000u64);
        let s = rng.gen_range(1..1_000u64);
        let direct = distance_saving_factor(n, s, merged);
        if merged.computed > 0 {
            assert_eq!(direct, rebuild_cost(n, s) as f64 / merged.computed as f64);
        } else {
            assert!(direct.is_infinite());
        }
    }
}

/// End to end: counters produced by the *actual* parallel batch assignment
/// (per-worker counters merged in chunk order) yield the same accounting
/// as a serial run, for every thread count.
#[test]
fn parallel_assignment_counters_yield_identical_accounting() {
    let mut rng = StdRng::seed_from_u64(0xACC1);
    for _ in 0..50 {
        let dim = rng.gen_range(1..=4);
        let mut seeds = NearestSeeds::new(dim);
        for _ in 0..rng.gen_range(2..=20) {
            let s: Vec<f64> = (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
            seeds.push(&s);
        }
        let queries: Vec<f64> = (0..rng.gen_range(1usize..=50) * dim)
            .map(|_| rng.gen_range(-12.0..12.0))
            .collect();
        let mut serial = SearchStats::new();
        seeds.nearest_batch_pruned(&queries, None, Parallelism::Serial, &mut serial);
        let n = 100_000u64;
        let s = seeds.len() as u64;
        let serial_factor = distance_saving_factor(n, s, serial);
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(4),
            Parallelism::Threads(8),
        ] {
            let mut stats = SearchStats::new();
            seeds.nearest_batch_pruned(&queries, None, par, &mut stats);
            assert_eq!(stats, serial);
            assert_eq!(distance_saving_factor(n, s, stats), serial_factor);
        }
    }
}

#[test]
fn saving_factor_against_rebuild_baseline() {
    // 2000-point batch against 100 seeds, a third pruned outright and a
    // few early-exited: the rebuild baseline recomputes everything, the
    // incremental side is charged only for full computations.
    let inc = SearchStats {
        computed: 2_000 * 60,
        pruned: 2_000 * 34,
        partial: 2_000 * 6,
    };
    let f = distance_saving_factor(100_000, 100, inc);
    assert!((f - (100_000.0 * 100.0) / (2_000.0 * 60.0)).abs() < 1e-9);
}

// ---------------------------------------------------------------------------
// table: formatting stability
// ---------------------------------------------------------------------------

/// The renderer's exact output is a contract: aligned columns, two-space
/// gutters, dashed separator, no trailing padding.
#[test]
fn render_is_stable() {
    let mut t = Table::new(["scenario", "batches", "F"]);
    t.push_row(["random", "10", "0.91"]);
    t.push_row(["disappearing", "4", "0.8"]);
    assert_eq!(
        t.render(),
        "scenario      batches  F\n\
         ------------  -------  ----\n\
         random        10       0.91\n\
         disappearing  4        0.8\n"
    );
}

/// The per-engine accounting table the assignment report prints carries
/// the full computed/pruned/partial split; its rendering is part of the
/// golden-output contract like every other table.
#[test]
fn accounting_table_renders_partial_column() {
    let stats = SearchStats {
        computed: 1_500,
        pruned: 7_900,
        partial: 600,
    };
    let mut t = Table::new(["engine", "computed", "pruned", "partial", "pruned_frac"]);
    t.push_row([
        "pruned",
        stats.computed.to_string().as_str(),
        stats.pruned.to_string().as_str(),
        stats.partial.to_string().as_str(),
        format!("{:.2}", stats.pruned_fraction()).as_str(),
    ]);
    assert_eq!(
        t.render(),
        "engine  computed  pruned  partial  pruned_frac\n\
         ------  --------  ------  -------  -----------\n\
         pruned  1500      7900    600      0.79\n"
    );
}

#[test]
fn csv_is_stable_and_escapes_commas() {
    let mut t = Table::new(["name", "value"]);
    t.push_row(["a,b", "1"]);
    t.push_row(["plain", "2"]);
    assert_eq!(t.to_csv(), "name,value\na;b,1\nplain,2\n");
}

#[test]
fn empty_table_renders_header_and_separator_only() {
    let t = Table::new(["col"]);
    assert!(t.is_empty());
    assert_eq!(t.render(), "col\n---\n");
    assert_eq!(t.to_csv(), "col\n");
}

#[test]
#[should_panic(expected = "row width mismatch")]
fn ragged_row_panics() {
    let mut t = Table::new(["a", "b"]);
    t.push_row(["only one"]);
}
