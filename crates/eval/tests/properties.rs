//! Property-based tests for the evaluation metrics.

use idb_eval::{adjusted_rand_index, fscore, Aggregate};
use idb_store::PointStore;
use proptest::prelude::*;

/// Builds a labeled store of `sizes.len()` classes and returns the id
/// lists per class.
fn labeled_store(sizes: &[usize]) -> (PointStore, Vec<Vec<u64>>) {
    let mut store = PointStore::new(1);
    let mut classes = Vec::new();
    for (c, &n) in sizes.iter().enumerate() {
        let ids: Vec<u64> = (0..n)
            .map(|i| u64::from(store.insert(&[i as f64], Some(c as u32)).0))
            .collect();
        classes.push(ids);
    }
    (store, classes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// F-score is in [0, 1]; the ground-truth partition itself scores 1.
    #[test]
    fn fscore_bounds_and_identity(sizes in prop::collection::vec(2usize..30, 1..6)) {
        let (store, classes) = labeled_store(&sizes);
        let perfect = fscore(&store, &classes);
        prop_assert!((perfect.overall - 1.0).abs() < 1e-12);
        // Any sub-partition still scores within bounds.
        let halves: Vec<Vec<u64>> = classes
            .iter()
            .flat_map(|c| {
                let mid = c.len() / 2;
                vec![c[..mid].to_vec(), c[mid..].to_vec()]
            })
            .filter(|c| !c.is_empty())
            .collect();
        let f = fscore(&store, &halves);
        prop_assert!(f.overall >= 0.0 && f.overall <= 1.0 + 1e-12);
    }

    /// F-score and ARI are invariant under permutation of cluster order.
    #[test]
    fn metrics_invariant_under_cluster_permutation(
        sizes in prop::collection::vec(2usize..20, 2..5),
        rotate in 1usize..4,
    ) {
        let (store, classes) = labeled_store(&sizes);
        let mut rotated = classes.clone();
        let by = rotate % rotated.len();
        rotated.rotate_left(by);
        // Summation order differs after rotation → compare approximately.
        prop_assert!(
            (fscore(&store, &classes).overall - fscore(&store, &rotated).overall).abs() < 1e-12
        );
        prop_assert!(
            (adjusted_rand_index(&store, &classes) - adjusted_rand_index(&store, &rotated)).abs()
                < 1e-12
        );
    }

    /// ARI never exceeds 1 and equals 1 exactly for the true partition
    /// (when it has at least two classes).
    #[test]
    fn ari_bounds(sizes in prop::collection::vec(2usize..20, 2..5)) {
        let (store, classes) = labeled_store(&sizes);
        let ari = adjusted_rand_index(&store, &classes);
        prop_assert!((ari - 1.0).abs() < 1e-12);
        // A coarsening (merge all) scores strictly less.
        let merged: Vec<u64> = classes.iter().flatten().copied().collect();
        let coarse = adjusted_rand_index(&store, &[merged]);
        prop_assert!(coarse <= 1.0);
        prop_assert!(coarse < 0.5);
    }

    /// Welford aggregate matches the naive two-pass computation.
    #[test]
    fn aggregate_matches_two_pass(samples in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        let agg = Aggregate::from_samples(samples.iter().copied());
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((agg.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((agg.std_dev() - var.sqrt()).abs() < 1e-6 * (1.0 + var.sqrt()));
    }

    /// The F-score of a clustering never improves when a cluster is split
    /// at random (best-match F per class can only stay or drop).
    #[test]
    fn splitting_never_helps_fscore(
        sizes in prop::collection::vec(4usize..30, 1..4),
        which in 0usize..4,
    ) {
        let (store, classes) = labeled_store(&sizes);
        let base = fscore(&store, &classes).overall;
        let mut split = classes.clone();
        let idx = which % split.len();
        let victim = split.remove(idx);
        let mid = victim.len() / 2;
        split.push(victim[..mid].to_vec());
        split.push(victim[mid..].to_vec());
        let f = fscore(&store, &split).overall;
        prop_assert!(f <= base + 1e-12, "split improved F: {f} > {base}");
    }
}
