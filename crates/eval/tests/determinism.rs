//! 64-seed determinism regression for the evaluation pipeline.
//!
//! The ARI once summed pair counts in `HashMap` iteration order, which
//! flips last bits between otherwise identical runs (each map instance
//! hashes with its own random state). The fix sums in sorted key order;
//! this suite pins it — and the rest of the plot → extraction → metric
//! chain — by running every stage twice per seed, across 64 seeds, and
//! demanding bit-identical `f64` results and identical cluster sets.

use idb_clustering::xi::xi_cluster_ids;
use idb_clustering::{
    cluster_tree, extract_clusters, extract_xi, optics_points, ClusterNode, ExtractParams, XiParams,
};
use idb_eval::{adjusted_rand_index, fscore};
use idb_store::PointStore;
use idb_synth::{ClusterModel, MixtureModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEEDS: u64 = 64;

fn store_for(seed: u64) -> PointStore {
    let model = MixtureModel::new(
        2,
        vec![
            ClusterModel::new(vec![20.0, 20.0], 2.5),
            ClusterModel::new(vec![55.0, 75.0], 3.0),
            ClusterModel::new(vec![80.0, 25.0], 2.0),
        ],
        0.05,
        (0.0, 100.0),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    model.populate(220, &mut rng)
}

fn tree_bits(node: &ClusterNode) -> Vec<(usize, usize, u64, usize)> {
    fn walk(n: &ClusterNode, out: &mut Vec<(usize, usize, u64, usize)>) {
        out.push((
            n.range.0,
            n.range.1,
            n.split_value.map_or(u64::MAX, f64::to_bits),
            n.children.len(),
        ));
        for c in &n.children {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    walk(node, &mut out);
    out
}

/// Everything one evaluation run produces, with floats as bits.
#[derive(Debug, PartialEq, Eq)]
struct RunBits {
    plot: Vec<(u64, u64)>,
    clusters: Vec<Vec<u64>>,
    xi: Vec<(usize, usize)>,
    tree: Vec<(usize, usize, u64, usize)>,
    ari: u64,
    ari_xi: u64,
    fscore: u64,
}

fn run_once(store: &PointStore) -> RunBits {
    let plot = optics_points(store, f64::INFINITY, 5);
    let clusters = extract_clusters(&plot, &ExtractParams::with_min_size(10));
    let xi = extract_xi(&plot, &XiParams::new(0.05, 10));
    let xi_ids = xi_cluster_ids(&plot, &xi);
    let tree = cluster_tree(&plot, &ExtractParams::with_min_size(10));
    RunBits {
        plot: plot
            .entries()
            .iter()
            .map(|e| (e.id, e.reachability.to_bits()))
            .collect(),
        clusters: clusters.clone(),
        xi: xi.iter().map(|c| (c.start, c.end)).collect(),
        tree: tree_bits(&tree),
        ari: adjusted_rand_index(store, &clusters).to_bits(),
        ari_xi: adjusted_rand_index(store, &xi_ids).to_bits(),
        fscore: fscore(store, &clusters).overall.to_bits(),
    }
}

#[test]
fn the_full_metric_chain_is_bit_deterministic_over_64_seeds() {
    for seed in 0..SEEDS {
        let store = store_for(seed);
        let first = run_once(&store);
        let second = run_once(&store);
        assert_eq!(first, second, "seed {seed}: double run diverged");
    }
}

/// The historic failure mode in isolation: many classes and clusters so
/// the contingency maps have enough entries for iteration order to
/// matter, scored repeatedly — every repetition must agree to the bit.
#[test]
fn the_ari_is_bit_stable_across_repeated_scoring() {
    for seed in 0..SEEDS {
        let mut rng_state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            // xorshift64*: cheap, deterministic, no RNG crate needed here.
            rng_state ^= rng_state >> 12;
            rng_state ^= rng_state << 25;
            rng_state ^= rng_state >> 27;
            rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut store = PointStore::new(1);
        let mut clusters: Vec<Vec<u64>> = vec![Vec::new(); 13];
        for i in 0..400u64 {
            let class = (next() % 11) as u32;
            let id = store.insert(&[i as f64], Some(class));
            clusters[(next() % 13) as usize].push(u64::from(id.0));
        }
        let reference = adjusted_rand_index(&store, &clusters).to_bits();
        for rep in 0..8 {
            let again = adjusted_rand_index(&store, &clusters).to_bits();
            assert_eq!(reference, again, "seed {seed}, repetition {rep}");
        }
    }
}
