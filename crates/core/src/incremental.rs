//! Incremental maintenance of a set of data bubbles (paper, Section 4).
//!
//! [`IncrementalBubbles`] owns the bubble population over a dynamic
//! database:
//!
//! * **Construction** ([`IncrementalBubbles::build`]): `s` seeds are drawn
//!   uniformly from the database and every point is assigned to its closest
//!   seed — by brute force, with the triangle-inequality pruning of
//!   Section 3, or through a k-d tree over the seeds, per
//!   [`MaintainerConfig::seed_search`]. The *complete rebuild* baseline of
//!   the evaluation is this same function invoked afresh.
//! * **Updates**: deleting a point maps its bubble's statistics to
//!   `(n−1, LS−p, SS−p²)`; inserting assigns the new point to the closest
//!   seed and maps that bubble to `(n+1, LS+p, SS+p²)` (Figure 3).
//!   [`IncrementalBubbles::apply_batch`] performs both for a whole
//!   [`Batch`], mutating the store alongside its own side tables.
//! * **Maintenance** ([`IncrementalBubbles::maintain`]): bubbles are
//!   classified by the configured quality measure (Definition 3); each
//!   over-filled bubble is repaired by *merging away* a donor (an
//!   under-filled bubble when available, otherwise the lowest-quality good
//!   bubble) — its points are released to their next-closest bubbles — and
//!   *splitting* the over-filled bubble between two fresh seeds drawn from
//!   its own members (Figure 6). Only the two bubbles involved are rebuilt;
//!   the rest of the population adapts in place.
//!
//! All point-to-seed distance work is charged to the caller's
//! [`SearchStats`], which is what Figures 10 and 11 measure. The dynamic
//! paths additionally thread *warm-start hints* into the pruned engines
//! (see [`MaintainerConfig::warm_start`]): an insertion starts its search
//! at the previous insertion's bubble, a merged-away donor's points start
//! at the donor's nearest surviving neighbour, and a repair sweep starts
//! each uncovered point at its prior owner. Hints tighten the pruning
//! bound early and never change any result.

use crate::bubble::Bubble;
use crate::config::{MaintainerConfig, Parallelism, SplitSeedPolicy};
use crate::error::{AuditError, AuditIssue, AuditReport, RepairReport, UpdateError};
use crate::quality::{classify, Classification};
use idb_geometry::parallel::run_chunks;
use idb_geometry::{
    dist, MatrixStats, NearestSeeds, RepairMetrics, RepairStats, SearchMetrics, SearchStats,
};
use idb_obs::{Cause, EventKind, Obs};
use idb_store::{Batch, PointId, PointStore, StorageError};
use rand::Rng;

const NONE: u32 = u32::MAX;

/// What one maintenance round did (feeds Figure 9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Bubbles classified as over-filled.
    pub over_filled: usize,
    /// Bubbles classified as under-filled.
    pub under_filled: usize,
    /// Merge/split operations executed.
    pub splits: usize,
    /// Bubbles rebuilt (re-seeded): two per split.
    pub rebuilt_bubbles: usize,
    /// Splits whose donor had to be recruited from the good class because
    /// no under-filled bubble was available.
    pub donors_from_good: usize,
    /// Points released from donors and reassigned to neighbours.
    pub released_points: u64,
    /// Points redistributed between the two halves of splits.
    pub reassigned_points: u64,
}

/// Policy of the adaptive-count extension: keep the average number of
/// points per bubble inside `[min_avg_points, max_avg_points]` by growing
/// or shrinking the population (the paper's Section 6 names this as future
/// work; the fixed-count scheme of Section 4 never changes the population
/// size).
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePolicy {
    /// Shrink while the average points-per-bubble is below this.
    pub min_avg_points: f64,
    /// Grow while the average points-per-bubble is above this.
    pub max_avg_points: f64,
    /// Maximum growth steps and maximum shrink steps per round.
    pub max_adjustments: usize,
}

impl AdaptivePolicy {
    /// A band around a target average: `[target/2, target*2]`, adjusting at
    /// most 16 bubbles per round.
    #[must_use]
    pub fn around(target_avg_points: f64) -> Self {
        Self {
            min_avg_points: target_avg_points / 2.0,
            max_avg_points: target_avg_points * 2.0,
            max_adjustments: 16,
        }
    }

    /// Validates the policy without panicking.
    ///
    /// # Errors
    /// [`UpdateError::InvalidPolicy`] unless
    /// `0 < min_avg_points < max_avg_points` and both bounds are finite.
    pub fn check(&self) -> Result<(), UpdateError> {
        if self.min_avg_points > 0.0
            && self.max_avg_points > self.min_avg_points
            && self.max_avg_points.is_finite()
        {
            Ok(())
        } else {
            Err(UpdateError::InvalidPolicy {
                min_avg_points: self.min_avg_points,
                max_avg_points: self.max_avg_points,
            })
        }
    }
}

/// What one adaptive maintenance round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveReport {
    /// The regular merge/split round that ran first.
    pub base: MaintenanceReport,
    /// Bubbles added by splitting heavy ones.
    pub grown: usize,
    /// Bubbles retired by releasing light ones.
    pub retired: usize,
}

/// One structural change to the bubble slot space, in application order —
/// the event stream a delta-maintained clustering layer consumes to know
/// which pairwise distances may have changed.
///
/// Only *summary statistics* changes are reported: the bubble distance,
/// core distance and virtual reachability are pure functions of a bubble's
/// sufficient statistics, so a slot whose stats are untouched keeps every
/// cached distance bit-identical. Membership *order* changes (swap-removes
/// inside a member list) are deliberately not tracked — consumers re-read
/// member lists when expanding a bubble ordering to a point plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BubbleChange {
    /// The stats of the bubble at this slot changed (insert, delete,
    /// merge-away drain, split redistribution, sabotage hooks).
    Touched(u32),
    /// A new bubble slot was appended at the end of the population.
    Pushed,
    /// The slot was removed and the former last slot moved into it
    /// (`Vec::swap_remove` semantics). The moved bubble itself is
    /// unchanged — only its index is.
    SwapRemoved(u32),
}

/// Reusable per-batch working memory for the dynamic paths (DESIGN.md §15).
///
/// Every buffer is logically empty between operations — only the backing
/// capacity persists, so after the first few batches of a steady-state
/// stream the hot paths (batch application, merge-away drains, splits)
/// allocate nothing. Purely an optimization: the scratch never carries
/// state across calls, is excluded from snapshots, and a `Default` (empty)
/// scratch yields bit-identical results.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Flat coordinate staging for batched nearest-seed queries.
    flat: Vec<f64>,
    /// Warm-start hint per query (one repeated seed for drain batches).
    hints: Vec<u32>,
    /// `(bubble, distance)` results of a batched nearest-seed search.
    targets: Vec<(u32, f64)>,
    /// Single-point coordinate staging (the delete path).
    coords: Vec<f64>,
    /// Per-member half choice of a split redistribution.
    halves: Vec<bool>,
}

/// A maintained population of data bubbles over a [`PointStore`].
#[derive(Debug, Clone)]
pub struct IncrementalBubbles {
    dim: usize,
    config: MaintainerConfig,
    seeds: NearestSeeds,
    bubbles: Vec<Bubble>,
    /// slot -> owning bubble index, `NONE` when unassigned.
    assign: Vec<u32>,
    /// slot -> position inside the owning bubble's member vector.
    member_pos: Vec<u32>,
    total_points: u64,
    /// Bubble that received the most recent insertion — the warm-start
    /// hint for the next one (update streams are typically spatially
    /// correlated). `NONE` until the first insertion; purely an
    /// accounting optimization, never affects results.
    last_insert: u32,
    /// Journal + metrics sinks. Structural events are emitted only from
    /// the single thread driving the maintainer, so the recorded stream is
    /// deterministic under any [`Parallelism`]. Disabled by default.
    obs: Obs,
    /// Whether structural changes are being recorded for
    /// [`Self::take_changes`]. Off by default.
    track_changes: bool,
    /// The recorded change log; `None` while invalidated (an untrackable
    /// operation — invariant repair — happened since the last drain).
    changes: Option<Vec<BubbleChange>>,
    /// Whether a second, independently drained change log is being
    /// recorded for [`Self::take_ckpt_changes`] — the incremental-
    /// checkpoint dirty tracker. Off by default.
    ckpt_track: bool,
    /// The checkpoint-side change log; same invalidation contract as
    /// `changes`, drained on its own schedule.
    ckpt_changes: Option<Vec<BubbleChange>>,
    /// Reusable working memory for the dynamic paths. Never semantic.
    scratch: Scratch,
}

impl IncrementalBubbles {
    /// Builds a fresh bubble population over the current store contents:
    /// random seed selection followed by the assignment of every live point
    /// (step 1 and 2 of the construction algorithm in Section 3).
    ///
    /// The assignment scan — the dominant O(N·s·d) cost — runs under
    /// `config.parallelism`: points are chunked across scoped worker
    /// threads, each with its own instrumented distance counter, all
    /// sharing the read-only seed–seed matrix; the per-chunk counters are
    /// merged into `search` afterwards. Every mode yields a bit-identical
    /// maintainer and identical counts for the same RNG seed (seed
    /// selection is the only RNG consumer and happens up front).
    ///
    /// # Panics
    /// Panics if the store holds fewer points than `config.num_bubbles`.
    pub fn build<R: Rng + ?Sized>(
        store: &PointStore,
        config: MaintainerConfig,
        rng: &mut R,
        search: &mut SearchStats,
    ) -> Self {
        assert!(
            store.len() >= config.num_bubbles,
            "database smaller than the requested number of bubbles"
        );
        // A full build touches every payload anyway; require them resident
        // and keep the hot path free of per-point fetch fallibility.
        // (Tiered flows build first, then call `enable_tier`.)
        assert!(
            store.all_resident(),
            "build requires a fully resident store; enable the cold tier after building"
        );
        let obs = Obs::from_env();
        let timer = obs.start();
        let dim = store.dim();
        let seed_ids = store.sample_distinct(config.num_bubbles, rng);
        let mut seeds = NearestSeeds::new(dim);
        let mut bubbles = Vec::with_capacity(config.num_bubbles);
        for id in &seed_ids {
            let p = store.point(*id);
            seeds.push(p);
            bubbles.push(Bubble::new(p.to_vec()));
        }
        let mut this = Self {
            dim,
            config,
            seeds,
            bubbles,
            assign: vec![NONE; store.slots()],
            member_pos: vec![NONE; store.slots()],
            total_points: 0,
            last_insert: NONE,
            obs,
            track_changes: false,
            changes: None,
            ckpt_track: false,
            ckpt_changes: None,
            scratch: Scratch::default(),
        };
        let mut ids = Vec::with_capacity(store.len());
        let mut flat = Vec::with_capacity(store.len() * dim);
        for (id, p, _) in store.iter() {
            ids.push(id);
            flat.extend_from_slice(p);
        }
        // A fresh build has no assignment history to warm-start from.
        let before = *search;
        let targets = this.batch_targets(&flat, None, None, search);
        for (&id, &(b, _)) in ids.iter().zip(&targets) {
            this.attach(id, b as usize, store.point(id));
            this.total_points += 1;
        }
        this.observe_search(ids.len() as u64, &search.delta_since(&before), timer.us());
        // A fresh `NearestSeeds` starts with zeroed accounting, so the
        // zero snapshot attributes exactly the initial seed pushes.
        this.observe_repair(MatrixStats::default(), RepairStats::default());
        this.obs.emit(
            EventKind::Build {
                points: this.total_points,
                bubbles: this.bubbles.len() as u32,
            },
            timer.us(),
        );
        this
    }

    /// [`Self::build`] pinned to `Parallelism::Threads(threads)`,
    /// overriding `config.parallelism`. Kept as a convenience for callers
    /// that size the fan-out themselves; results are identical to the
    /// serial build for the same RNG seed.
    ///
    /// # Panics
    /// Panics if `threads == 0` or the store holds fewer points than
    /// `config.num_bubbles`.
    pub fn build_parallel<R: Rng + ?Sized>(
        store: &PointStore,
        config: MaintainerConfig,
        rng: &mut R,
        threads: usize,
        search: &mut SearchStats,
    ) -> Self {
        assert!(threads > 0, "at least one thread is required");
        Self::build(
            store,
            config.with_parallelism(Parallelism::Threads(threads)),
            rng,
            search,
        )
    }

    /// Nearest eligible seed for every point in the flat `queries` buffer,
    /// under the configured engine and parallelism. `hints` carries one
    /// warm-start seed per query ([`idb_geometry::NO_HINT`] for none) and
    /// is dropped wholesale when [`MaintainerConfig::warm_start`] is off.
    /// Counter merging keeps `search` bit-identical to a serial scan.
    fn batch_targets(
        &self,
        queries: &[f64],
        exclude: Option<usize>,
        hints: Option<&[u32]>,
        search: &mut SearchStats,
    ) -> Vec<(u32, f64)> {
        let hints = if self.config.warm_start { hints } else { None };
        self.seeds.nearest_batch(
            queries,
            exclude,
            self.config.seed_search,
            hints,
            self.config.parallelism,
            search,
        )
    }

    /// [`Self::batch_targets`] writing into a caller-owned buffer — the
    /// allocation-free variant the steady-state paths feed their scratch
    /// arena through. Results and accounting are bit-identical.
    fn batch_targets_into(
        &self,
        queries: &[f64],
        exclude: Option<usize>,
        hints: Option<&[u32]>,
        search: &mut SearchStats,
        out: &mut Vec<(u32, f64)>,
    ) {
        let hints = if self.config.warm_start { hints } else { None };
        self.seeds.nearest_batch_into(
            queries,
            exclude,
            self.config.seed_search,
            hints,
            self.config.parallelism,
            search,
            out,
        );
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &MaintainerConfig {
        &self.config
    }

    /// The observability handle events and metrics flow through.
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Replaces the observability handle ([`Obs::from_env`] is installed
    /// by [`Self::build`]; snapshot decoding starts disabled). Purely an
    /// output channel — never affects summarization results.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Turns structural change recording on or off (off by default).
    ///
    /// While on, every operation that changes a bubble slot's summary
    /// statistics or the slot space itself appends a [`BubbleChange`] to
    /// an internal log, drained by [`Self::take_changes`]. Tracking is a
    /// pure output channel: it never affects summarization results and is
    /// not persisted in snapshots. Enabling starts with an *invalid* log —
    /// the first drain returns `None`, obliging the consumer to resync
    /// against the current population before trusting subsequent logs
    /// (the consumer has no way to know what happened before enabling,
    /// e.g. across a crash/recovery boundary).
    pub fn set_change_tracking(&mut self, on: bool) {
        self.track_changes = on;
        self.changes = None;
    }

    /// `true` while structural change recording is on.
    #[must_use]
    pub fn change_tracking(&self) -> bool {
        self.track_changes
    }

    /// Drains the structural change log recorded since the previous drain
    /// (or since tracking was enabled).
    ///
    /// Returns `None` when the log is not continuously valid — tracking is
    /// off, or an untrackable operation (invariant [`Self::repair`])
    /// rewrote bubbles wholesale since the last drain. A `None` obliges
    /// the consumer to treat *every* slot as changed; it is never silently
    /// wrong. After a `None` with tracking on, recording resumes with a
    /// fresh valid log.
    pub fn take_changes(&mut self) -> Option<Vec<BubbleChange>> {
        if !self.track_changes {
            return None;
        }
        let drained = self.changes.take();
        self.changes = Some(Vec::new());
        drained
    }

    /// Turns the checkpoint-side structural change log on or off.
    ///
    /// A second, independently drained channel with exactly the contract
    /// of [`Self::set_change_tracking`] / [`Self::take_changes`]: the
    /// delta-subscription consumer and the incremental-checkpoint dirty
    /// tracker drain on different schedules, so they cannot share one log.
    /// Enabling starts with an *invalid* log (first drain returns `None`).
    pub fn set_ckpt_tracking(&mut self, on: bool) {
        self.ckpt_track = on;
        self.ckpt_changes = None;
    }

    /// Drains the checkpoint-side change log recorded since the previous
    /// drain. Same validity contract as [`Self::take_changes`]: `None`
    /// means the consumer must treat every slot as dirty.
    pub fn take_ckpt_changes(&mut self) -> Option<Vec<BubbleChange>> {
        if !self.ckpt_track {
            return None;
        }
        let drained = self.ckpt_changes.take();
        self.ckpt_changes = Some(Vec::new());
        drained
    }

    /// Appends to the change logs when tracking is on and the log is valid.
    fn record_change(&mut self, change: BubbleChange) {
        if let Some(log) = self.changes.as_mut() {
            log.push(change);
        }
        if let Some(log) = self.ckpt_changes.as_mut() {
            log.push(change);
        }
    }

    /// Marks the change logs invalid until the next drain (an operation
    /// mutated bubbles in a way the log cannot describe precisely).
    fn invalidate_changes(&mut self) {
        if self.track_changes {
            self.changes = None;
        }
        if self.ckpt_track {
            self.ckpt_changes = None;
        }
    }

    /// Folds a search-stats delta into the per-engine
    /// `assign.<engine>.*` metric family, when metrics are on.
    fn observe_search(&self, queries: u64, delta: &SearchStats, us: u64) {
        if !self.obs.metrics_on() {
            return;
        }
        SearchMetrics::register(self.obs.metrics(), self.config.seed_search.as_str())
            .observe(queries, delta, us);
    }

    /// Folds the seed-set structural accounting accumulated since the given
    /// snapshots into the `repair.<engine>.*` metric family, when metrics
    /// are on. Call sites snapshot immediately before the leaf mutations
    /// (seed pushes, replacements, removals) so nested phases never double
    /// count.
    fn observe_repair(&self, matrix_before: MatrixStats, repair_before: RepairStats) {
        if !self.obs.metrics_on() {
            return;
        }
        let matrix = self.seeds.matrix_stats().delta_since(&matrix_before);
        let repair = self.seeds.repair_stats().delta_since(&repair_before);
        if repair.ops == 0 {
            return;
        }
        RepairMetrics::register(self.obs.metrics(), self.config.seed_search.as_str())
            .observe(&matrix, &repair);
    }

    /// Dimensionality of the summarized points.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The seed set's cumulative structural-repair accounting: the
    /// pairwise-matrix write ledger and the order-cache repair ledger
    /// (DESIGN.md §15). `kernel_report` reads this after a dynamic flow to
    /// verify the incremental repair touches O(s) entries per seed change.
    #[must_use]
    pub fn seed_repair_stats(&self) -> (MatrixStats, RepairStats) {
        (self.seeds.matrix_stats(), self.seeds.repair_stats())
    }

    /// Number of bubbles (constant over the lifetime of the maintainer —
    /// the scheme maintains a fixed compression rate).
    #[must_use]
    pub fn num_bubbles(&self) -> usize {
        self.bubbles.len()
    }

    /// Number of points currently summarized.
    #[must_use]
    pub fn total_points(&self) -> u64 {
        self.total_points
    }

    /// The bubble population.
    #[must_use]
    pub fn bubbles(&self) -> &[Bubble] {
        &self.bubbles
    }

    /// One bubble.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bubble(&self, i: usize) -> &Bubble {
        &self.bubbles[i]
    }

    /// The bubble a live point is currently assigned to, if any.
    #[must_use]
    pub fn assignment(&self, id: PointId) -> Option<usize> {
        match self.assign.get(id.index()) {
            Some(&b) if b != NONE => Some(b as usize),
            _ => None,
        }
    }

    /// Classifies the current population under the configured quality
    /// measure without modifying anything.
    #[must_use]
    pub fn classify_now(&self) -> Classification {
        classify(
            self.config.quality,
            &self.bubbles,
            self.total_points,
            self.config.probability,
        )
    }

    fn ensure_slots(&mut self, slots: usize) {
        if self.assign.len() < slots {
            self.assign.resize(slots, NONE);
            self.member_pos.resize(slots, NONE);
        }
    }

    /// Finds the closest seed to `p` under the configured engine, starting
    /// the pruned search at `hint` when warm-starting is enabled.
    fn nearest(
        &self,
        p: &[f64],
        exclude: Option<usize>,
        hint: Option<usize>,
        search: &mut SearchStats,
    ) -> Option<usize> {
        let hint = if self.config.warm_start { hint } else { None };
        self.seeds
            .nearest(self.config.seed_search, p, exclude, hint, search)
            .map(|(i, _)| i)
    }

    /// Attaches a point to a bubble, maintaining the membership tables.
    fn attach(&mut self, id: PointId, bubble: usize, p: &[f64]) {
        let slot = id.index();
        debug_assert_eq!(self.assign[slot], NONE, "attach of already-assigned point");
        let b = &mut self.bubbles[bubble];
        self.member_pos[slot] = b.members().len() as u32;
        b.members_mut().push(id);
        b.stats_mut().add(p);
        self.assign[slot] = bubble as u32;
        self.record_change(BubbleChange::Touched(bubble as u32));
    }

    /// Detaches a point from its bubble (O(1) swap-remove), returning the
    /// bubble index. Statistics are *not* touched — callers decide whether
    /// the point's mass leaves the bubble ([`Self::remove_point`]) or the
    /// whole bubble is being rebuilt.
    fn detach(&mut self, id: PointId) -> usize {
        let slot = id.index();
        let bubble = self.assign[slot];
        assert!(bubble != NONE, "detach of unassigned point {id:?}");
        let bubble = bubble as usize;
        let pos = self.member_pos[slot] as usize;
        let members = self.bubbles[bubble].members_mut();
        members.swap_remove(pos);
        if pos < members.len() {
            let moved = members[pos];
            self.member_pos[moved.index()] = pos as u32;
        }
        self.assign[slot] = NONE;
        self.member_pos[slot] = NONE;
        bubble
    }

    /// Handles the insertion of point `id` with coordinates `p`: the point
    /// is assigned to its closest seed and that bubble's statistics are
    /// incremented. The point must already be live in the store.
    ///
    /// The search warm-starts at the bubble the *previous* insertion
    /// landed in — update streams are spatially correlated, so that seed
    /// usually yields a tight pruning bound immediately.
    pub fn insert_point(&mut self, id: PointId, p: &[f64], search: &mut SearchStats) {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        self.ensure_slots(id.index() + 1);
        let hint = match self.last_insert {
            NONE => None,
            b => Some(b as usize),
        };
        let bubble = self
            .nearest(p, None, hint, search)
            .expect("bubble population is never empty");
        self.attach(id, bubble, p);
        self.last_insert = bubble as u32;
        self.total_points += 1;
        self.obs.emit(
            EventKind::Insert {
                bubble: bubble as u32,
            },
            0,
        );
    }

    /// Handles the deletion of point `id` with coordinates `p`: its
    /// bubble's statistics are decremented. Call *before* removing the
    /// point from the store (the coordinates are still needed).
    ///
    /// # Panics
    /// Panics if the point is not currently assigned.
    pub fn remove_point(&mut self, id: PointId, p: &[f64]) {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        let bubble = self.detach(id);
        self.bubbles[bubble].stats_mut().remove(p);
        self.record_change(BubbleChange::Touched(bubble as u32));
        self.total_points -= 1;
        self.obs.emit(
            EventKind::Delete {
                bubble: bubble as u32,
            },
            0,
        );
    }

    /// Applies a whole update batch: deletions are removed from both the
    /// summary and the store, then insertions are added to the store and
    /// assigned. Returns the ids of the inserted points, in order.
    ///
    /// Thin panicking wrapper around [`Self::try_apply_batch`] for callers
    /// that trust their update stream (the paper's setting).
    ///
    /// # Panics
    /// Panics if the batch fails validation — wrong dimensionality or
    /// non-finite coordinates on an insert, a delete of a non-live point,
    /// or the same point deleted twice.
    pub fn apply_batch(
        &mut self,
        store: &mut PointStore,
        batch: &Batch,
        search: &mut SearchStats,
    ) -> Vec<PointId> {
        match self.try_apply_batch(store, batch, search) {
            Ok(ids) => ids,
            Err(e) => panic!("invalid batch: {e}"),
        }
    }

    /// Pre-validates `batch` against the current state without applying
    /// anything; `Ok(())` guarantees [`Self::try_apply_batch`] will accept
    /// it. The durability layer calls this before logging a batch, so the
    /// WAL only ever contains batches that replay cleanly.
    ///
    /// # Errors
    /// The same typed errors as [`Self::try_apply_batch`].
    pub fn check_batch(&self, store: &PointStore, batch: &Batch) -> Result<(), UpdateError> {
        self.validate_batch(store, batch)
    }

    /// Pre-validates `batch` against the current state; `Ok(())` means the
    /// infallible apply path cannot fail.
    fn validate_batch(&self, store: &PointStore, batch: &Batch) -> Result<(), UpdateError> {
        for (index, (p, _)) in batch.inserts.iter().enumerate() {
            if p.len() != self.dim {
                return Err(UpdateError::DimensionMismatch {
                    index,
                    expected: self.dim,
                    found: p.len(),
                });
            }
            for (axis, &x) in p.iter().enumerate() {
                if !x.is_finite() {
                    return Err(UpdateError::NonFiniteCoordinate {
                        index,
                        axis,
                        value: x,
                    });
                }
            }
        }
        for &id in &batch.deletes {
            if !store.contains(id) || self.assignment(id).is_none() {
                return Err(UpdateError::StaleDelete { id });
            }
        }
        // A pair of deletes naming the same id would double-remove; detect
        // via a sorted copy (no hashing, deterministic).
        if batch.deletes.len() > 1 {
            let mut sorted: Vec<PointId> = batch.deletes.clone();
            sorted.sort_unstable_by_key(|id| id.0);
            for w in sorted.windows(2) {
                if w[0] == w[1] {
                    return Err(UpdateError::ConflictingOps { id: w[0] });
                }
            }
        }
        Ok(())
    }

    /// Transactional batch application: the whole batch is validated
    /// up front and only then applied.
    ///
    /// On `Err`, the maintainer (bubbles, assignment tables, seed matrix,
    /// point total) and the store are **bit-identical** to their pre-call
    /// state — validation touches nothing, and a validated batch cannot
    /// fail mid-apply.
    ///
    /// # Errors
    /// The first problem found, checking inserts then deletes:
    /// * [`UpdateError::DimensionMismatch`] — an insert with the wrong
    ///   number of coordinates;
    /// * [`UpdateError::NonFiniteCoordinate`] — an insert carrying NaN or
    ///   an infinity;
    /// * [`UpdateError::StaleDelete`] — a delete of a point that is not
    ///   live (or not tracked by this summarization);
    /// * [`UpdateError::ConflictingOps`] — the same point deleted twice in
    ///   one batch;
    /// * [`UpdateError::Storage`] — a tiered store could not read a
    ///   deleted point's cold record. All payloads are staged *before*
    ///   the first mutation, so this rejects the batch with the state
    ///   untouched, exactly like a validation failure.
    pub fn try_apply_batch(
        &mut self,
        store: &mut PointStore,
        batch: &Batch,
        search: &mut SearchStats,
    ) -> Result<Vec<PointId>, UpdateError> {
        self.validate_batch(store, batch)?;
        let timer = self.obs.start();
        let before = *search;
        // One scratch buffer carries every deleted point's coordinates —
        // staged up front (a cold-tier read failure must reject the batch
        // before anything mutates), strided by `dim` for the remove loop.
        let mut coords = std::mem::take(&mut self.scratch.coords);
        coords.clear();
        for &id in &batch.deletes {
            if let Err(e) = store.read_point_into(id, &mut coords) {
                self.scratch.coords = coords;
                return Err(UpdateError::Storage(e));
            }
        }
        for (i, &id) in batch.deletes.iter().enumerate() {
            self.remove_point(id, &coords[i * self.dim..(i + 1) * self.dim]);
            store.remove(id);
        }
        self.scratch.coords = coords;
        let mut new_ids = Vec::with_capacity(batch.inserts.len());
        for (p, label) in &batch.inserts {
            let id = store.insert(p, *label);
            self.insert_point(id, p, search);
            new_ids.push(id);
        }
        self.observe_search(
            batch.inserts.len() as u64,
            &search.delta_since(&before),
            timer.us(),
        );
        self.obs.emit(
            EventKind::BatchApplied {
                inserts: batch.inserts.len() as u32,
                deletes: batch.deletes.len() as u32,
            },
            timer.us(),
        );
        Ok(new_ids)
    }

    /// Releases all members of a bubble to their next-closest bubbles
    /// (the *merge* of Figure 6), leaving it empty. Returns the number of
    /// released points.
    ///
    /// The released points' target searches are independent of each other
    /// (the seed set does not change while they run), so they are computed
    /// as one batch under the configured parallelism and then attached in
    /// member order — bit-identical to the serial point-at-a-time loop.
    /// Every search warm-starts at the donor's nearest surviving
    /// neighbour: the donor held these points, so its closest other seed
    /// is almost always at (or very near) the true answer.
    /// # Errors
    /// [`StorageError::ColdIo`] when a member's cold record cannot be
    /// read. Payloads are staged before the first mutation, so on `Err`
    /// the maintainer and store are untouched.
    fn merge_away(
        &mut self,
        donor: usize,
        store: &PointStore,
        search: &mut SearchStats,
        cause: Cause,
    ) -> Result<u64, StorageError> {
        let timer = self.obs.start();
        // Stage the drain through the scratch arena: the coordinate batch,
        // the repeated warm-start hint and the target list all reuse the
        // capacity left by previous drains (`mem::take` sidesteps the
        // borrow of `self` the batched search needs). Staging runs before
        // `take_members` so a cold-tier failure aborts with nothing moved.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.flat.clear();
        for &id in self.bubbles[donor].members() {
            if let Err(e) = store.read_point_into(id, &mut scratch.flat) {
                self.scratch = scratch;
                return Err(e);
            }
        }
        let members = self.bubbles[donor].take_members();
        self.bubbles[donor].stats_mut().clear();
        self.record_change(BubbleChange::Touched(donor as u32));
        let released = members.len() as u64;
        let hint = self
            .seeds
            .neighbor_order(donor)
            .iter()
            .copied()
            .find(|&k| k as usize != donor);
        let hints = match hint {
            Some(h) => {
                scratch.hints.clear();
                scratch.hints.resize(members.len(), h);
                Some(scratch.hints.as_slice())
            }
            None => None,
        };
        // The donor must not re-attract its own points.
        self.batch_targets_into(
            &scratch.flat,
            Some(donor),
            hints,
            search,
            &mut scratch.targets,
        );
        for (i, (&id, &(target, _))) in members.iter().zip(&scratch.targets).enumerate() {
            let slot = id.index();
            self.assign[slot] = NONE;
            self.member_pos[slot] = NONE;
            // `detach` was bypassed (the member list is already drained), so
            // attach directly to the closest bubble other than the donor,
            // reading the staged payload (the store copy may be cold).
            self.attach(
                id,
                target as usize,
                &scratch.flat[i * self.dim..(i + 1) * self.dim],
            );
        }
        self.scratch = scratch;
        self.obs.emit(
            EventKind::MergeAway {
                donor: donor as u32,
                moved: released,
                cause,
            },
            timer.us(),
        );
        Ok(released)
    }

    /// Splits an over-filled bubble between two fresh seeds drawn from its
    /// members: one half keeps the bubble, the other is adopted by the
    /// (now empty) donor. Returns the number of redistributed points.
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when a member's cold record cannot be
    /// read. Payloads are staged before the first mutation, so on `Err`
    /// the maintainer and store are untouched.
    fn split<R: Rng + ?Sized>(
        &mut self,
        over: usize,
        donor: usize,
        store: &PointStore,
        rng: &mut R,
        search: &mut SearchStats,
        cause: Cause,
    ) -> Result<u64, StorageError> {
        let timer = self.obs.start();
        let dim = self.dim;
        // Stage every member payload once, before the first mutation: the
        // seed draws, the spread scan, the half assignment and the attach
        // loop all read the staged batch (the store copies may be cold),
        // and a cold-tier failure aborts with nothing moved.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.flat.clear();
        for &id in self.bubbles[over].members() {
            if let Err(e) = store.read_point_into(id, &mut scratch.flat) {
                self.scratch = scratch;
                return Err(e);
            }
        }
        let members = self.bubbles[over].take_members();
        self.bubbles[over].stats_mut().clear();
        self.record_change(BubbleChange::Touched(over as u32));
        self.record_change(BubbleChange::Touched(donor as u32));
        debug_assert!(members.len() >= 2, "split requires at least two members");
        let flat = &scratch.flat;
        let pt = |i: usize| &flat[i * dim..(i + 1) * dim];

        // Seed 1: a random member, repositioning the donor (Figure 6:
        // "select a new seed s1 from the current points in B_overfilled").
        let i1 = rng.gen_range(0..members.len());
        let p1 = pt(i1).to_vec();

        // Seed 2: per policy — another random member, or the member
        // farthest from seed 1.
        let p2 = match self.config.split_seeds {
            SplitSeedPolicy::Random => {
                let mut i2 = rng.gen_range(0..members.len());
                // Distinct index (identical coordinates are tolerated; a
                // degenerate bubble of duplicates splits arbitrarily).
                if members.len() > 1 {
                    while i2 == i1 {
                        i2 = rng.gen_range(0..members.len());
                    }
                }
                pt(i2).to_vec()
            }
            SplitSeedPolicy::Spread => {
                let mut best = (0usize, -1.0f64);
                for i in 0..members.len() {
                    let d = dist(&p1, pt(i));
                    search.computed += 1;
                    if d > best.1 {
                        best = (i, d);
                    }
                }
                pt(best.0).to_vec()
            }
        };

        let matrix_before = self.seeds.matrix_stats();
        let repair_before = self.seeds.repair_stats();
        self.seeds.replace(donor, &p1);
        self.seeds.replace(over, &p2);
        self.observe_repair(matrix_before, repair_before);
        *self.bubbles[donor].seed_mut() = p1.clone();
        *self.bubbles[over].seed_mut() = p2.clone();

        // Distribute the members between the two new seeds only (the paper
        // restricts the redistribution to s1 and s2). The two distances per
        // member are independent across members, so the comparison fans out
        // over chunks; ties keep the serial rule (d1 <= d2 → donor half).
        // The per-member half choices land in the scratch arena; the serial
        // path writes them directly, the threaded path drains its per-chunk
        // vectors into the same buffer in chunk order (identical contents).
        let reassigned = members.len() as u64;
        let threads = self.config.parallelism.effective_threads();
        scratch.halves.clear();
        if threads <= 1 {
            for i in 0..members.len() {
                let p = &scratch.flat[i * dim..(i + 1) * dim];
                scratch.halves.push(dist(p, &p1) <= dist(p, &p2));
            }
        } else {
            // The threads read the staged slices by index, so the store is
            // never touched off the apply thread.
            let p1_ref = &p1;
            let p2_ref = &p2;
            let flat_ref = &scratch.flat;
            let indices: Vec<usize> = (0..members.len()).collect();
            let chunked: Vec<Vec<bool>> = run_chunks(&indices, threads, |chunk| {
                chunk
                    .iter()
                    .map(|&i| {
                        let p = &flat_ref[i * dim..(i + 1) * dim];
                        dist(p, p1_ref) <= dist(p, p2_ref)
                    })
                    .collect()
            });
            for chunk in chunked {
                scratch.halves.extend(chunk);
            }
        }
        search.computed += 2 * reassigned;
        for (i, &id) in members.iter().enumerate() {
            let slot = id.index();
            self.assign[slot] = NONE;
            self.member_pos[slot] = NONE;
            let target = if scratch.halves[i] { donor } else { over };
            self.attach(id, target, &scratch.flat[i * dim..(i + 1) * dim]);
        }
        self.scratch = scratch;
        self.obs.emit(
            EventKind::Split {
                over: over as u32,
                donor: donor as u32,
                moved: reassigned,
                cause,
            },
            timer.us(),
        );
        Ok(reassigned)
    }

    /// One maintenance round (run after each applied batch): classify the
    /// population, then repair every over-filled bubble with a synchronized
    /// merge/split. Returns what was done.
    ///
    /// Panics when a cold-tier read fails mid-round; callers running over a
    /// tiered store should use [`Self::try_maintain`] and degrade instead.
    pub fn maintain<R: Rng + ?Sized>(
        &mut self,
        store: &PointStore,
        rng: &mut R,
        search: &mut SearchStats,
    ) -> MaintenanceReport {
        self.try_maintain(store, rng, search)
            .expect("cold tier failed during maintenance")
    }

    /// Fallible [`Self::maintain`]: surfaces cold-tier read failures as
    /// [`StorageError`] instead of panicking.
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when a member payload could not be fetched.
    /// Each merge/split stages its reads before mutating, so the structure
    /// stays valid on `Err` — but the round stops early, leaving the
    /// remaining over-filled bubbles for a later (healed) round.
    pub fn try_maintain<R: Rng + ?Sized>(
        &mut self,
        store: &PointStore,
        rng: &mut R,
        search: &mut SearchStats,
    ) -> Result<MaintenanceReport, StorageError> {
        self.maintain_with_cause(store, rng, search, Cause::Maintain)
    }

    /// [`Self::try_maintain`] journaled under an explicit cause (the
    /// adaptive round tags its base pass [`Cause::Adaptive`]).
    fn maintain_with_cause<R: Rng + ?Sized>(
        &mut self,
        store: &PointStore,
        rng: &mut R,
        search: &mut SearchStats,
        cause: Cause,
    ) -> Result<MaintenanceReport, StorageError> {
        let timer = self.obs.start();
        let before = *search;
        let classification = self.classify_now();
        let over = classification.over_filled();
        let mut under = classification.under_filled();
        let mut good = classification.good_ascending();
        // Donor recruitment consumes each list front-to-back; reverse so
        // `pop` yields the emptiest/lowest-quality candidates first.
        under.reverse();
        good.reverse();

        let mut report = MaintenanceReport {
            over_filled: over.len(),
            under_filled: under.len(),
            ..MaintenanceReport::default()
        };
        let mut used = vec![false; self.bubbles.len()];
        for &o in &over {
            used[o] = true;
        }

        for &o in &over {
            if self.bubbles[o].members().len() < 2 {
                continue;
            }
            // Donor: emptiest under-filled bubble, else lowest-β good one.
            let mut donor = None;
            let mut from_good = false;
            while let Some(u) = under.pop() {
                if !used[u] {
                    donor = Some(u);
                    break;
                }
            }
            if donor.is_none() {
                while let Some(g) = good.pop() {
                    if !used[g] {
                        donor = Some(g);
                        from_good = true;
                        break;
                    }
                }
            }
            let Some(d) = donor else {
                break; // No donors left; remaining over-filled bubbles wait.
            };
            used[d] = true;

            report.released_points += self.merge_away(d, store, search, cause)?;
            report.reassigned_points += self.split(o, d, store, rng, search, cause)?;
            report.splits += 1;
            report.rebuilt_bubbles += 2;
            if from_good {
                report.donors_from_good += 1;
            }
        }
        self.observe_search(
            report.released_points + report.reassigned_points,
            &search.delta_since(&before),
            timer.us(),
        );
        self.obs.emit(
            EventKind::MaintainRound {
                merges: report.splits as u32,
                splits: report.splits as u32,
                cause,
            },
            timer.us(),
        );
        Ok(report)
    }

    /// Splits the given bubble into two by *adding a brand-new bubble*
    /// (instead of recruiting a donor), increasing the population size by
    /// one. Returns the new bubble's index.
    ///
    /// Part of the adaptive-count extension (the paper's Section 6 future
    /// work: dynamically increasing the number of incremental data
    /// bubbles).
    ///
    /// # Panics
    /// Panics if the bubble has fewer than two members.
    pub fn grow_bubble<R: Rng + ?Sized>(
        &mut self,
        over: usize,
        store: &PointStore,
        rng: &mut R,
        search: &mut SearchStats,
    ) -> usize {
        self.try_grow_bubble(over, store, rng, search)
            .expect("cold tier failed during grow")
    }

    /// Fallible [`Self::grow_bubble`].
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when a member payload could not be
    /// fetched for the split. The freshly added bubble then exists but
    /// holds no members — a valid (under-filled) population that a later
    /// healed round repairs.
    ///
    /// # Panics
    /// Panics if the bubble has fewer than two members.
    pub fn try_grow_bubble<R: Rng + ?Sized>(
        &mut self,
        over: usize,
        store: &PointStore,
        rng: &mut R,
        search: &mut SearchStats,
    ) -> Result<usize, StorageError> {
        assert!(
            self.bubbles[over].members().len() >= 2,
            "growing requires at least two members to split"
        );
        // Materialize the new bubble at a placeholder position; `split`
        // re-seeds both participants from the over-filled members.
        let placeholder = self.bubbles[over].seed().to_vec();
        let matrix_before = self.seeds.matrix_stats();
        let repair_before = self.seeds.repair_stats();
        let new_idx = self.seeds.push(&placeholder);
        self.observe_repair(matrix_before, repair_before);
        self.bubbles.push(Bubble::new(placeholder));
        debug_assert_eq!(new_idx, self.bubbles.len() - 1);
        self.record_change(BubbleChange::Pushed);
        // Journal the growth *before* the split so the journal checker can
        // pair the split with the event that created its donor slot.
        self.obs.emit(
            EventKind::Grow {
                from: over as u32,
                bubble: new_idx as u32,
            },
            0,
        );
        self.split(over, new_idx, store, rng, search, Cause::Adaptive)?;
        Ok(new_idx)
    }

    /// Retires bubble `i`: releases its members to their next-closest
    /// bubbles and removes it, decreasing the population size by one (the
    /// shrink direction of the adaptive-count extension). The last bubble
    /// takes index `i` (swap-remove semantics).
    ///
    /// # Panics
    /// Panics if fewer than three bubbles exist (the population never
    /// shrinks below two) or `i` is out of bounds.
    pub fn retire_bubble(&mut self, i: usize, store: &PointStore, search: &mut SearchStats) {
        self.try_retire_bubble(i, store, search)
            .expect("cold tier failed during retire");
    }

    /// Fallible [`Self::retire_bubble`].
    ///
    /// # Errors
    /// [`StorageError::ColdIo`] when a member payload could not be
    /// fetched; the release stages its reads first, so on `Err` nothing
    /// was retired.
    ///
    /// # Panics
    /// Panics if fewer than three bubbles exist or `i` is out of bounds.
    pub fn try_retire_bubble(
        &mut self,
        i: usize,
        store: &PointStore,
        search: &mut SearchStats,
    ) -> Result<(), StorageError> {
        assert!(
            self.bubbles.len() > 2,
            "the bubble population never shrinks below two"
        );
        assert!(i < self.bubbles.len(), "bubble index out of bounds");
        self.merge_away(i, store, search, Cause::Retire)?;
        self.bubbles.swap_remove(i);
        let matrix_before = self.seeds.matrix_stats();
        let repair_before = self.seeds.repair_stats();
        self.seeds.swap_remove(i);
        self.observe_repair(matrix_before, repair_before);
        self.record_change(BubbleChange::SwapRemoved(i as u32));
        // The swap-remove invalidates two indices: `i` itself (retired)
        // and the former last index (now living at `i`). The warm-start
        // hint must follow the same remapping, or a later insert would
        // seed its search from an unrelated — or out-of-range — bubble.
        let moved_from = self.bubbles.len();
        if self.last_insert == i as u32 {
            self.last_insert = NONE;
        } else if self.last_insert == moved_from as u32 {
            self.last_insert = i as u32;
        }
        if i < self.bubbles.len() {
            // The moved bubble's members must point at its new index.
            for &id in self.bubbles[i].members() {
                self.assign[id.index()] = i as u32;
            }
        }
        self.obs.emit(
            EventKind::RetireBubble {
                bubble: i as u32,
                swapped: (i < self.bubbles.len()).then_some(moved_from as u32),
            },
            0,
        );
        Ok(())
    }

    /// Maintenance with a dynamic bubble budget: runs the regular
    /// merge/split round, then grows the population while the average
    /// points-per-bubble exceeds `policy.max_avg_points` (splitting the
    /// heaviest bubbles into new ones) and shrinks it while the average
    /// falls below `policy.min_avg_points` (retiring the lightest
    /// bubbles). At most `policy.max_adjustments` structural changes per
    /// round keep the work bounded.
    ///
    /// Thin panicking wrapper around [`Self::try_maintain_adaptive`].
    ///
    /// # Panics
    /// Panics if `policy` is invalid (see [`AdaptivePolicy::check`]).
    pub fn maintain_adaptive<R: Rng + ?Sized>(
        &mut self,
        store: &PointStore,
        rng: &mut R,
        search: &mut SearchStats,
        policy: &AdaptivePolicy,
    ) -> AdaptiveReport {
        match self.try_maintain_adaptive(store, rng, search, policy) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::maintain_adaptive`] with the policy validated up front
    /// instead of panicking. On `Err`, nothing was touched — not even the
    /// regular merge/split round.
    ///
    /// # Errors
    /// [`UpdateError::InvalidPolicy`] when the policy's band is empty,
    /// inverted, or non-finite.
    pub fn try_maintain_adaptive<R: Rng + ?Sized>(
        &mut self,
        store: &PointStore,
        rng: &mut R,
        search: &mut SearchStats,
        policy: &AdaptivePolicy,
    ) -> Result<AdaptiveReport, UpdateError> {
        policy.check()?;
        let base = self.maintain_with_cause(store, rng, search, Cause::Adaptive)?;
        let mut grown = 0usize;
        let mut retired = 0usize;

        while grown < policy.max_adjustments {
            let avg = self.total_points as f64 / self.bubbles.len() as f64;
            if avg <= policy.max_avg_points {
                break;
            }
            let heaviest = (0..self.bubbles.len())
                .max_by_key(|&i| self.bubbles[i].members().len())
                .expect("population is non-empty");
            if self.bubbles[heaviest].members().len() < 2 {
                break;
            }
            self.try_grow_bubble(heaviest, store, rng, search)?;
            grown += 1;
        }

        while retired < policy.max_adjustments && self.bubbles.len() > 2 {
            let avg = self.total_points as f64 / self.bubbles.len() as f64;
            if avg >= policy.min_avg_points {
                break;
            }
            let lightest = (0..self.bubbles.len())
                .min_by_key(|&i| self.bubbles[i].members().len())
                .expect("population is non-empty");
            self.try_retire_bubble(lightest, store, search)?;
            retired += 1;
        }

        Ok(AdaptiveReport {
            base,
            grown,
            retired,
        })
    }

    /// Reassembles a maintainer from its raw parts (snapshot decoding
    /// only; the decoder has validated consistency against the store).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        dim: usize,
        config: MaintainerConfig,
        seeds: NearestSeeds,
        bubbles: Vec<Bubble>,
        assign: Vec<u32>,
        member_pos: Vec<u32>,
        total_points: u64,
    ) -> Self {
        Self {
            dim,
            config,
            seeds,
            bubbles,
            assign,
            member_pos,
            total_points,
            last_insert: NONE,
            // Snapshot decoding starts silent; recovery installs the live
            // handle before replaying the WAL tail.
            obs: Obs::disabled(),
            // A decoded maintainer has no change history; a consumer that
            // re-enables tracking starts from a full recompute anyway.
            track_changes: false,
            changes: None,
            ckpt_track: false,
            ckpt_changes: None,
            scratch: Scratch::default(),
        }
    }

    /// Exhaustively checks every internal invariant against the store.
    /// Intended for tests; O(N).
    ///
    /// # Panics
    /// Panics (with a description) on the first violated invariant.
    pub fn validate(&self, store: &PointStore) {
        assert_eq!(self.total_points, store.len() as u64, "total point count");
        let mut seen = 0u64;
        let mut buf = Vec::new();
        for (bi, b) in self.bubbles.iter().enumerate() {
            assert_eq!(
                b.stats().n() as usize,
                b.members().len(),
                "bubble {bi}: stats n vs member count"
            );
            let mut ls = vec![0.0; self.dim];
            for (pos, &id) in b.members().iter().enumerate() {
                assert!(store.contains(id), "bubble {bi}: dead member {id:?}");
                assert_eq!(
                    self.assign[id.index()],
                    bi as u32,
                    "bubble {bi}: assign table disagrees for {id:?}"
                );
                assert_eq!(
                    self.member_pos[id.index()] as usize,
                    pos,
                    "bubble {bi}: member_pos disagrees for {id:?}"
                );
                buf.clear();
                store
                    .read_point_into(id, &mut buf)
                    .expect("validate: cold point fetch failed");
                for (l, &x) in ls.iter_mut().zip(&buf) {
                    *l += x;
                }
                seen += 1;
            }
            let tolerance = 1e-6 * (1.0 + b.stats().n() as f64);
            for (got, want) in b.stats().linear_sum().iter().zip(&ls) {
                assert!(
                    (got - want).abs() < tolerance,
                    "bubble {bi}: linear sum drifted ({got} vs {want})"
                );
            }
            // The seed matrix row must match the actual seed coordinates.
            assert_eq!(self.seeds.seed(bi), b.seed(), "bubble {bi}: seed sync");
        }
        assert_eq!(seen, self.total_points, "membership covers all points");
        for id in store.ids() {
            assert!(
                self.assign[id.index()] != NONE,
                "live point {id:?} unassigned"
            );
        }
    }

    /// Drift tolerance for comparing stored sufficient statistics against
    /// values recomputed from the members: an absolute term that grows with
    /// the number of accumulated updates plus a small relative term for
    /// large magnitudes. Honest floating-point drift stays far below it;
    /// corruption is grossly above it.
    fn drift_tolerance(n: u64, magnitude: f64) -> f64 {
        1e-6 * (1.0 + n as f64) + 1e-9 * magnitude.abs()
    }

    /// True when `stored` and `recomputed` differ by more than `tol`.
    /// Deliberately a negated `<=` rather than `>` so a NaN anywhere in the
    /// comparison counts as drift instead of passing silently.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn drifted(stored: f64, recomputed: f64, tol: f64) -> bool {
        !((stored - recomputed).abs() <= tol)
    }

    /// Every invariant violation attributable to bubble `bi` alone, in the
    /// same discovery order the serial auditor used. Read-only, so the
    /// per-bubble sweeps of [`Self::collect_issues`] can fan out across
    /// bubbles.
    fn bubble_issues(&self, bi: usize, store: &PointStore) -> Vec<AuditIssue> {
        let b = &self.bubbles[bi];
        let mut issues = Vec::new();
        let mut buf = Vec::new();
        if b.seed().len() != self.dim || b.seed().iter().any(|x| !x.is_finite()) {
            issues.push(AuditIssue::NonFiniteSeed { bubble: bi });
        }
        if self.seeds.seed(bi) != b.seed() {
            issues.push(AuditIssue::SeedOutOfSync { bubble: bi });
        }
        let stats = b.stats();
        if stats.n() as usize != b.members().len() {
            issues.push(AuditIssue::MemberCountMismatch {
                bubble: bi,
                stats_n: stats.n(),
                members: b.members().len(),
            });
        }
        if !stats.square_sum().is_finite() || stats.linear_sum().iter().any(|x| !x.is_finite()) {
            issues.push(AuditIssue::NonFiniteStats { bubble: bi });
        }

        let mut ls = vec![0.0f64; self.dim];
        let mut ss = 0.0f64;
        let mut members_sound = stats.n() as usize == b.members().len();
        for (pos, &id) in b.members().iter().enumerate() {
            if !store.contains(id) {
                issues.push(AuditIssue::DeadMember { bubble: bi, id });
                members_sound = false;
                continue;
            }
            let slot = id.index();
            let assigned = match self.assign.get(slot) {
                Some(&a) if a != NONE => Some(a as usize),
                _ => None,
            };
            if assigned != Some(bi) {
                issues.push(AuditIssue::AssignMismatch {
                    bubble: bi,
                    id,
                    assigned,
                });
            }
            if self.member_pos.get(slot).copied() != Some(pos as u32) {
                issues.push(AuditIssue::MemberPosMismatch {
                    bubble: bi,
                    id,
                    expected: pos,
                });
            }
            buf.clear();
            store
                .read_point_into(id, &mut buf)
                .expect("audit: cold point fetch failed");
            for (l, &x) in ls.iter_mut().zip(&buf) {
                *l += x;
            }
            ss += buf.iter().map(|&x| x * x).sum::<f64>();
        }
        if members_sound {
            for (axis, (&stored, &recomputed)) in stats.linear_sum().iter().zip(&ls).enumerate() {
                if Self::drifted(
                    stored,
                    recomputed,
                    Self::drift_tolerance(stats.n(), recomputed),
                ) {
                    issues.push(AuditIssue::DriftedLinearSum {
                        bubble: bi,
                        axis,
                        stored,
                        recomputed,
                    });
                    break;
                }
            }
            let stored = stats.square_sum();
            if Self::drifted(stored, ss, Self::drift_tolerance(stats.n(), ss)) {
                issues.push(AuditIssue::DriftedSquareSum {
                    bubble: bi,
                    stored,
                    recomputed: ss,
                });
            }
        }
        issues
    }

    /// Walks every invariant and returns all violations found (plus the
    /// number of seed-matrix pairs checked). Shared by [`Self::audit`] and
    /// [`Self::repair`].
    ///
    /// The two O(N·d) / O(s²·d) sweeps — per-bubble statistics recompute
    /// and seed-matrix verification — fan out over contiguous chunks of
    /// bubbles/rows under the configured parallelism; chunk results are
    /// concatenated in index order, so the issue list (order included) is
    /// identical to a serial walk.
    fn collect_issues(&self, store: &PointStore) -> (Vec<AuditIssue>, usize) {
        let threads = self.config.parallelism.effective_threads();
        let mut issues = Vec::new();
        if self.total_points != store.len() as u64 {
            issues.push(AuditIssue::TotalCountMismatch {
                tracked: self.total_points,
                live: store.len() as u64,
            });
        }

        let bubble_indices: Vec<usize> = (0..self.bubbles.len()).collect();
        let per_bubble = run_chunks(&bubble_indices, threads, |chunk| {
            chunk
                .iter()
                .flat_map(|&bi| self.bubble_issues(bi, store))
                .collect::<Vec<_>>()
        });
        for chunk in per_bubble {
            issues.extend(chunk);
        }

        // Reverse direction: every live point must resolve, through the
        // assignment tables, back to its own member-list slot.
        for id in store.ids() {
            let slot = id.index();
            let covered = match self.assign.get(slot) {
                Some(&a) if a != NONE => {
                    let bi = a as usize;
                    bi < self.bubbles.len()
                        && self.member_pos.get(slot).is_some_and(|&pos| {
                            (pos as usize) < self.bubbles[bi].members().len()
                                && self.bubbles[bi].members()[pos as usize] == id
                        })
                }
                _ => false,
            };
            if !covered {
                issues.push(AuditIssue::UnassignedLivePoint { id });
            }
        }
        // Dead slots must carry no assignment.
        for (slot, &a) in self.assign.iter().enumerate() {
            if a != NONE && !store.contains(PointId(slot as u32)) {
                issues.push(AuditIssue::StaleAssignment {
                    id: PointId(slot as u32),
                    bubble: a as usize,
                });
            }
        }

        // Seed matrix: every cached pairwise distance must match the
        // distance recomputed from the (finite) seed coordinates.
        let mut checked_pairs = 0usize;
        for i in 0..self.bubbles.len() {
            if self.seeds.seed(i).iter().any(|x| !x.is_finite()) {
                continue; // already reported via NonFiniteSeed/SeedOutOfSync
            }
            for j in (i + 1)..self.bubbles.len() {
                if self.seeds.seed(j).iter().any(|x| !x.is_finite()) {
                    continue;
                }
                let stored = self.seeds.pair_distance(i, j);
                let recomputed = dist(self.seeds.seed(i), self.seeds.seed(j));
                checked_pairs += 1;
                if Self::drifted(stored, recomputed, 1e-9 * (1.0 + recomputed.abs())) {
                    issues.push(AuditIssue::SeedMatrixDrift {
                        i,
                        j,
                        stored,
                        recomputed,
                    });
                }
            }
        }
        (issues, checked_pairs)
    }

    /// Audits every internal invariant against the store without modifying
    /// anything: Σ bubble `n` equals the live point count, the assignment
    /// and position tables are mutually consistent with the member lists in
    /// both directions, each bubble's `(n, LS, SS)` matches its recomputed
    /// member statistics within a drift tolerance, and the seed matrix is
    /// finite and in sync with the seeds. O(N·d + s²).
    ///
    /// The panicking twin is [`Self::validate`]; production code paths
    /// (e.g. after restoring a snapshot of uncertain provenance) should
    /// prefer this method and hand the `Err` to [`Self::repair`].
    ///
    /// # Errors
    /// [`AuditError`] carrying *every* violated invariant, in discovery
    /// order — not just the first.
    pub fn audit(&self, store: &PointStore) -> Result<AuditReport, AuditError> {
        let timer = self.obs.start();
        let (issues, checked_pairs) = self.collect_issues(store);
        self.obs.emit(
            EventKind::Audit {
                issues: issues.len() as u64,
            },
            timer.us(),
        );
        if issues.is_empty() {
            Ok(AuditReport {
                bubbles: self.bubbles.len(),
                points: self.total_points,
                checked_pairs,
            })
        } else {
            Err(AuditError { issues })
        }
    }

    /// Repairs every invariant violation [`Self::audit`] can detect,
    /// quarantining only the implicated bubbles and rebuilding them locally
    /// (the same release-and-reattach machinery maintenance uses) instead
    /// of rebuilding the whole population:
    ///
    /// 1. stale assignment entries of dead points are cleared;
    /// 2. each quarantined bubble is drained and its statistics reset;
    /// 3. quarantined bubbles get their seed re-synced into the seed
    ///    matrix — re-drawn from a random live point when non-finite;
    /// 4. every live point left uncovered (drained, or inconsistent to
    ///    begin with) is reattached to its nearest seed, exactly like an
    ///    insertion — warm-starting each search at the point's prior
    ///    owner (captured before the drain), which is usually still the
    ///    nearest or second-nearest seed;
    /// 5. the tracked point total is recomputed.
    ///
    /// Healthy bubbles keep their members, statistics and seeds untouched
    /// (except for adopting reattached points). After `repair`,
    /// [`Self::audit`] is green. Returns what was done; a no-op report
    /// when the audit found nothing.
    pub fn repair<R: Rng + ?Sized>(
        &mut self,
        store: &PointStore,
        rng: &mut R,
        search: &mut SearchStats,
    ) -> RepairReport {
        let timer = self.obs.start();
        let (issues, _) = self.collect_issues(store);
        if issues.is_empty() {
            return RepairReport::default();
        }
        // Repair rewrites bubbles wholesale (drains, reseeds, reattaches);
        // the change log cannot describe that precisely, so consumers must
        // fall back to a full recompute.
        self.invalidate_changes();
        let mut report = RepairReport {
            issues_found: issues.len(),
            ..RepairReport::default()
        };

        let mut quarantined = vec![false; self.bubbles.len()];
        for issue in &issues {
            for b in issue.implicated_bubbles() {
                if let Some(q) = quarantined.get_mut(b) {
                    *q = true;
                }
            }
        }

        // 1. Dead slots must not claim a bubble.
        for slot in 0..self.assign.len() {
            if self.assign[slot] != NONE && !store.contains(PointId(slot as u32)) {
                self.assign[slot] = NONE;
                self.member_pos[slot] = NONE;
                report.cleared_stale_assignments += 1;
            }
        }

        // Remember who owned each slot before the drain: step 4 uses the
        // prior owner as the warm-start hint for the reattachment search.
        let prior = self.assign.clone();

        // 2. Drain the quarantined bubbles (members released, stats reset).
        for (bi, q) in quarantined.iter().enumerate() {
            if !*q {
                continue;
            }
            let members = self.bubbles[bi].take_members();
            self.bubbles[bi].stats_mut().clear();
            for id in members {
                let slot = id.index();
                if slot < self.assign.len() && self.assign[slot] == bi as u32 {
                    self.assign[slot] = NONE;
                    self.member_pos[slot] = NONE;
                }
            }
        }

        // 3. Re-seed quarantined bubbles and re-sync the seed matrix rows.
        for (bi, q) in quarantined.iter().enumerate() {
            if !*q {
                continue;
            }
            let seed_ok = self.bubbles[bi].seed().len() == self.dim
                && self.bubbles[bi].seed().iter().all(|x| x.is_finite());
            if !seed_ok {
                let fresh = if !store.is_empty() {
                    let mut p = Vec::with_capacity(self.dim);
                    store
                        .read_point_into(store.sample_distinct(1, rng)[0], &mut p)
                        .expect("repair: cold point fetch failed");
                    p
                } else {
                    vec![0.0; self.dim]
                };
                *self.bubbles[bi].seed_mut() = fresh;
                report.reseeded += 1;
            }
            let seed = self.bubbles[bi].seed().to_vec();
            self.seeds.replace(bi, &seed);
        }

        // 4. Reattach every uncovered live point, like an insertion. The
        // payload is fetched lazily — only uncovered points need it, so a
        // mostly-healthy tiered store stays mostly cold.
        self.ensure_slots(store.slots());
        let mut buf = Vec::new();
        for id in store.ids() {
            let slot = id.index();
            let covered = match self.assign[slot] {
                NONE => false,
                a => {
                    let bi = a as usize;
                    bi < self.bubbles.len()
                        && (self.member_pos[slot] as usize) < self.bubbles[bi].members().len()
                        && self.bubbles[bi].members()[self.member_pos[slot] as usize] == id
                }
            };
            if covered {
                continue;
            }
            self.assign[slot] = NONE;
            self.member_pos[slot] = NONE;
            let hint = match prior.get(slot) {
                Some(&a) if a != NONE && (a as usize) < self.bubbles.len() => Some(a as usize),
                _ => None,
            };
            buf.clear();
            store
                .read_point_into(id, &mut buf)
                .expect("repair: cold point fetch failed");
            let target = self
                .nearest(&buf, None, hint, search)
                .expect("bubble population is never empty");
            self.attach(id, target, &buf);
            report.reassigned_points += 1;
        }

        // 5. After the steps above every live point is covered exactly once.
        self.total_points = store.len() as u64;
        report.quarantined = quarantined.iter().filter(|&&q| q).count();
        self.obs.emit(
            EventKind::Repair {
                found: report.issues_found as u64,
                quarantined: report.quarantined as u32,
                reseeded: report.reseeded as u32,
                reassigned: report.reassigned_points,
            },
            timer.us(),
        );
        report
    }

    // --- Fault-injection hooks ------------------------------------------
    // The fault-injection suite needs to damage the private tables the way
    // a bug or a corrupted restore would. Hidden from docs; not part of
    // the supported API and exempt from its stability.

    /// Overwrites a bubble's sufficient statistics (test sabotage hook).
    #[doc(hidden)]
    pub fn corrupt_stats(&mut self, bubble: usize, n: u64, ls: Vec<f64>, ss: f64) {
        *self.bubbles[bubble].stats_mut() =
            crate::stats::SufficientStats::from_raw_parts(n, ls, ss);
        self.record_change(BubbleChange::Touched(bubble as u32));
    }

    /// Overwrites one assignment-table entry (test sabotage hook).
    #[doc(hidden)]
    pub fn corrupt_assign(&mut self, slot: usize, value: u32) {
        self.assign[slot] = value;
    }

    /// Overwrites one position-table entry (test sabotage hook).
    #[doc(hidden)]
    pub fn corrupt_member_pos(&mut self, slot: usize, value: u32) {
        self.member_pos[slot] = value;
    }

    /// Overwrites a bubble's seed *without* re-syncing the seed matrix
    /// (test sabotage hook).
    #[doc(hidden)]
    pub fn corrupt_seed(&mut self, bubble: usize, seed: Vec<f64>) {
        *self.bubbles[bubble].seed_mut() = seed;
    }

    /// Overwrites the tracked point total (test sabotage hook).
    #[doc(hidden)]
    pub fn corrupt_total(&mut self, total: u64) {
        self.total_points = total;
    }

    /// Appends a raw id to a bubble's member list (test sabotage hook).
    #[doc(hidden)]
    pub fn corrupt_push_member(&mut self, bubble: usize, id: PointId) {
        self.bubbles[bubble].members_mut().push(id);
    }

    /// Pops the last member off a bubble's list (test sabotage hook).
    #[doc(hidden)]
    pub fn corrupt_pop_member(&mut self, bubble: usize) -> Option<PointId> {
        self.bubbles[bubble].members_mut().pop()
    }

    /// The warm-start hint the next insertion would use: the bubble the
    /// previous insertion landed in, if still valid (test observability
    /// hook — the regression suite asserts `retire_bubble` keeps this in
    /// sync with the swap-remove).
    #[doc(hidden)]
    #[must_use]
    pub fn last_insert_hint(&self) -> Option<usize> {
        match self.last_insert {
            NONE => None,
            b => Some(b as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{QualityKind, SeedSearch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two tight clusters of 100 points each plus sparse noise.
    fn toy_store(rng: &mut StdRng) -> PointStore {
        let mut store = PointStore::new(2);
        for i in 0..100 {
            let t = i as f64 * 0.063;
            store.insert(&[10.0 + t.sin(), 10.0 + t.cos()], Some(0));
            store.insert(&[90.0 + t.cos(), 90.0 + t.sin()], Some(1));
        }
        for _ in 0..20 {
            store.insert(
                &[rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)],
                None,
            );
        }
        store
    }

    #[test]
    fn build_assigns_every_point() {
        let mut rng = StdRng::seed_from_u64(7);
        let store = toy_store(&mut rng);
        let mut search = SearchStats::new();
        // Pinned to the pruned engine: the assertions below are about its
        // accounting, independent of the IDB_SEED_SEARCH environment.
        let ib = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(10).with_seed_search(SeedSearch::Pruned),
            &mut rng,
            &mut search,
        );
        assert_eq!(ib.num_bubbles(), 10);
        assert_eq!(ib.total_points(), store.len() as u64);
        ib.validate(&store);
        // Triangle-inequality pruning did real work on a clustered layout.
        assert!(search.pruned > 0, "pruning occurred");
        assert_eq!(search.total(), store.len() as u64 * 10);
    }

    #[test]
    fn every_engine_builds_the_identical_summary() {
        // Same RNG seed → same bubble seeds → identical assignments; the
        // engines differ only in how many distances they actually compute.
        let store = {
            let mut r = StdRng::seed_from_u64(3);
            toy_store(&mut r)
        };
        let mut brute_rng = StdRng::seed_from_u64(21);
        let mut sb = SearchStats::new();
        let brute = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(8).with_seed_search(SeedSearch::Brute),
            &mut brute_rng,
            &mut sb,
        );
        let nb: Vec<u64> = brute.bubbles().iter().map(|x| x.stats().n()).collect();
        assert_eq!(sb.pruned, 0);
        assert_eq!(sb.partial, 0);
        for engine in [SeedSearch::Pruned, SeedSearch::KdTree] {
            let mut rng = StdRng::seed_from_u64(21);
            let mut se = SearchStats::new();
            let e = IncrementalBubbles::build(
                &store,
                MaintainerConfig::new(8).with_seed_search(engine),
                &mut rng,
                &mut se,
            );
            let ne: Vec<u64> = e.bubbles().iter().map(|x| x.stats().n()).collect();
            assert_eq!(nb, ne, "{engine:?} agrees on the summarization");
            assert!(
                se.computed < sb.computed,
                "{engine:?} computes fewer distances"
            );
            assert_eq!(se.total(), sb.total(), "{engine:?} accounts every seed");
        }
    }

    #[test]
    fn warm_start_never_changes_results_and_saves_work() {
        // The same dynamic history (build, batch, maintenance, retirement)
        // replayed with and without warm-start hints: bit-identical
        // summaries, strictly cheaper accounting with hints.
        let run = |warm: bool| {
            let mut rng = StdRng::seed_from_u64(77);
            let mut store = toy_store(&mut rng);
            let mut search = SearchStats::new();
            let config = MaintainerConfig::new(10)
                .with_seed_search(SeedSearch::Pruned)
                .with_warm_start(warm);
            let mut ib = IncrementalBubbles::build(&store, config, &mut rng, &mut search);
            let batch = Batch {
                deletes: store.ids().take(20).collect(),
                inserts: (0..120)
                    .map(|i| {
                        let t = i as f64 * 0.05;
                        (vec![150.0 + t.sin() * 3.0, 150.0 + t.cos() * 3.0], Some(4))
                    })
                    .collect(),
            };
            ib.apply_batch(&mut store, &batch, &mut search);
            ib.maintain(&store, &mut rng, &mut search);
            ib.retire_bubble(0, &store, &mut search);
            ib.validate(&store);
            let ns: Vec<u64> = ib.bubbles().iter().map(|b| b.stats().n()).collect();
            (ns, search)
        };
        let (cold_ns, cold) = run(false);
        let (warm_ns, warm) = run(true);
        assert_eq!(cold_ns, warm_ns, "hints never change the summarization");
        assert_eq!(cold.total(), warm.total(), "same candidates accounted");
        assert!(
            warm.computed < cold.computed,
            "warm-start saves distance computations ({} vs {})",
            warm.computed,
            cold.computed
        );
    }

    /// Regression: `retire_bubble` swap-removes a bubble but used to leave
    /// `last_insert` untouched, so the next insertion warm-started from a
    /// stale — possibly out-of-range, possibly wrong-bubble — hint. The
    /// hint must be reset when the retired bubble held it and remapped
    /// when the moved (former last) bubble did.
    #[test]
    fn retire_bubble_remaps_or_resets_the_warm_start_hint() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = toy_store(&mut rng);
        let mut search = SearchStats::new();
        let mut ib = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(6).with_seed_search(SeedSearch::Pruned),
            &mut rng,
            &mut search,
        );

        // Hint on the retired bubble: reset to none.
        let id = store.insert(&[10.0, 10.0], None);
        ib.insert_point(id, &[10.0, 10.0], &mut search);
        let landed = ib.assignment(id).expect("inserted point is assigned");
        assert_eq!(ib.last_insert_hint(), Some(landed));
        ib.retire_bubble(landed, &store, &mut search);
        assert_eq!(
            ib.last_insert_hint(),
            None,
            "hint on the retired bubble must be invalidated"
        );
        ib.validate(&store);

        // Hint on the former last bubble: follows the swap-remove. An
        // insertion exactly at the last seed lands there (distance zero).
        let last_seed = ib.bubbles().last().unwrap().seed().to_vec();
        let id2 = store.insert(&last_seed, None);
        ib.insert_point(id2, &last_seed, &mut search);
        assert_eq!(ib.last_insert_hint(), Some(ib.num_bubbles() - 1));
        ib.retire_bubble(0, &store, &mut search);
        assert_eq!(
            ib.last_insert_hint(),
            Some(0),
            "hint must follow the moved bubble to its new index"
        );
        assert_eq!(ib.assignment(id2), Some(0), "the hinted bubble moved to 0");
        ib.validate(&store);

        // Hint on an unaffected bubble: untouched when the retired bubble
        // is the last one (no swap move happens).
        let seed1 = ib.bubble(1).seed().to_vec();
        let id3 = store.insert(&seed1, None);
        ib.insert_point(id3, &seed1, &mut search);
        assert_eq!(ib.last_insert_hint(), Some(1));
        ib.retire_bubble(ib.num_bubbles() - 1, &store, &mut search);
        assert_eq!(ib.last_insert_hint(), Some(1), "unrelated hint is kept");
        ib.validate(&store);

        // And inserting after all of that works from the remapped hint.
        let id4 = store.insert(&[50.0, 50.0], None);
        ib.insert_point(id4, &[50.0, 50.0], &mut search);
        assert_eq!(ib.last_insert_hint(), ib.assignment(id4));
        ib.validate(&store);
    }

    #[test]
    fn insert_and_remove_roundtrip_preserves_invariants() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = toy_store(&mut rng);
        let mut search = SearchStats::new();
        let mut ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(10), &mut rng, &mut search);

        let id = store.insert(&[50.0, 50.0], None);
        ib.insert_point(id, &[50.0, 50.0], &mut search);
        ib.validate(&store);
        assert!(ib.assignment(id).is_some());

        let p = store.point(id).to_vec();
        ib.remove_point(id, &p);
        store.remove(id);
        ib.validate(&store);
        assert!(ib.assignment(id).is_none());
    }

    #[test]
    fn apply_batch_keeps_summary_in_sync() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = toy_store(&mut rng);
        let mut search = SearchStats::new();
        let mut ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(10), &mut rng, &mut search);
        let victims: Vec<PointId> = store.ids().take(15).collect();
        let batch = Batch {
            deletes: victims,
            inserts: (0..15)
                .map(|i| (vec![40.0 + i as f64, 42.0], Some(5)))
                .collect(),
        };
        let new_ids = ib.apply_batch(&mut store, &batch, &mut search);
        assert_eq!(new_ids.len(), 15);
        ib.validate(&store);
        assert_eq!(ib.total_points(), store.len() as u64);
    }

    #[test]
    fn maintain_splits_an_overfilled_bubble() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = toy_store(&mut rng);
        let mut search = SearchStats::new();
        // With only 12 bubbles a single β outlier inflates σ so much that
        // the k = 1/sqrt(1-0.9) ≈ √12 bound is marginal; p = 0.8 (also
        // validated in the paper) is robust at this miniature scale.
        let mut ib = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(12).with_probability(0.8),
            &mut rng,
            &mut search,
        );

        // Inject a new far-away cluster of 150 points: one bubble absorbs it.
        let batch = Batch {
            deletes: Vec::new(),
            inserts: (0..150)
                .map(|i| {
                    let t = i as f64 * 0.041;
                    (vec![200.0 + t.sin() * 2.0, 200.0 + t.cos() * 2.0], Some(9))
                })
                .collect(),
        };
        ib.apply_batch(&mut store, &batch, &mut search);
        ib.validate(&store);

        let before = ib.classify_now();
        assert!(
            !before.over_filled().is_empty(),
            "absorbing a cluster over-fills a bubble"
        );

        let report = ib.maintain(&store, &mut rng, &mut search);
        assert!(report.splits >= 1);
        assert_eq!(report.rebuilt_bubbles, report.splits * 2);
        ib.validate(&store);

        // One round may leave a split seed in the old region; the scheme
        // converges over repeated rounds (one per batch in production).
        for _ in 0..4 {
            ib.maintain(&store, &mut rng, &mut search);
            ib.validate(&store);
        }

        // After maintenance, the new cluster region is covered by more than
        // one bubble. A split half can also adopt a few far-away stragglers
        // that pull its representative off-center, hence the loose radius.
        let near = ib
            .bubbles()
            .iter()
            .filter(|b| !b.is_empty() && dist(&b.rep_or_seed(), &[200.0, 200.0]) < 30.0)
            .count();
        assert!(near >= 2, "new cluster now covered by {near} bubbles");
    }

    #[test]
    fn maintain_with_uniform_population_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut store = PointStore::new(2);
        for i in 0..400 {
            store.insert(&[(i % 20) as f64 * 5.0, (i / 20) as f64 * 5.0], Some(0));
        }
        let mut search = SearchStats::new();
        let mut ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(16), &mut rng, &mut search);
        let report = ib.maintain(&store, &mut rng, &mut search);
        assert_eq!(report.splits, 0);
        assert_eq!(report.rebuilt_bubbles, 0);
        ib.validate(&store);
    }

    #[test]
    fn extent_quality_measure_is_selectable() {
        let mut rng = StdRng::seed_from_u64(19);
        let store = toy_store(&mut rng);
        let mut search = SearchStats::new();
        let ib = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(10).with_quality(QualityKind::Extent),
            &mut rng,
            &mut search,
        );
        let c = ib.classify_now();
        // Extent values, not β values: they are not bounded by 1/N ratios.
        assert_eq!(c.values.len(), 10);
        assert!(c.values.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let store = {
            let mut r = StdRng::seed_from_u64(41);
            toy_store(&mut r)
        };
        let mut seq_rng = StdRng::seed_from_u64(8);
        let mut seq_stats = SearchStats::new();
        let seq = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(10),
            &mut seq_rng,
            &mut seq_stats,
        );
        for threads in [1usize, 2, 4] {
            let mut rng = StdRng::seed_from_u64(8);
            let mut stats = SearchStats::new();
            let par = IncrementalBubbles::build_parallel(
                &store,
                MaintainerConfig::new(10),
                &mut rng,
                threads,
                &mut stats,
            );
            par.validate(&store);
            let a: Vec<u64> = seq.bubbles().iter().map(|b| b.stats().n()).collect();
            let b: Vec<u64> = par.bubbles().iter().map(|b| b.stats().n()).collect();
            assert_eq!(a, b, "threads = {threads}");
            assert_eq!(stats.total(), seq_stats.total(), "same total work");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let mut rng = StdRng::seed_from_u64(43);
        let store = toy_store(&mut rng);
        let mut stats = SearchStats::new();
        let _ = IncrementalBubbles::build_parallel(
            &store,
            MaintainerConfig::new(4),
            &mut rng,
            0,
            &mut stats,
        );
    }

    #[test]
    fn grow_bubble_increases_population_and_splits() {
        let mut rng = StdRng::seed_from_u64(29);
        let store = toy_store(&mut rng);
        let mut search = SearchStats::new();
        let mut ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(6), &mut rng, &mut search);
        let heaviest = (0..6)
            .max_by_key(|&i| ib.bubble(i).members().len())
            .unwrap();
        let before = ib.bubble(heaviest).members().len();
        let new_idx = ib.grow_bubble(heaviest, &store, &mut rng, &mut search);
        assert_eq!(ib.num_bubbles(), 7);
        assert_eq!(new_idx, 6);
        ib.validate(&store);
        let after = ib.bubble(heaviest).members().len() + ib.bubble(new_idx).members().len();
        assert_eq!(after, before, "split preserves the member set");
        assert!(!ib.bubble(new_idx).is_empty());
    }

    #[test]
    fn retire_bubble_shrinks_population() {
        let mut rng = StdRng::seed_from_u64(31);
        let store = toy_store(&mut rng);
        let mut search = SearchStats::new();
        let mut ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(8), &mut rng, &mut search);
        let total = ib.total_points();
        ib.retire_bubble(0, &store, &mut search);
        assert_eq!(ib.num_bubbles(), 7);
        assert_eq!(ib.total_points(), total, "no point is lost");
        ib.validate(&store);
        // Retire down to the floor of two bubbles.
        for _ in 0..5 {
            ib.retire_bubble(0, &store, &mut search);
        }
        assert_eq!(ib.num_bubbles(), 2);
        ib.validate(&store);
    }

    #[test]
    #[should_panic(expected = "never shrinks below two")]
    fn retiring_below_two_panics() {
        let mut rng = StdRng::seed_from_u64(33);
        let store = toy_store(&mut rng);
        let mut search = SearchStats::new();
        let mut ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(2), &mut rng, &mut search);
        ib.retire_bubble(0, &store, &mut search);
    }

    #[test]
    fn adaptive_maintenance_tracks_database_growth() {
        let mut rng = StdRng::seed_from_u64(37);
        let mut store = toy_store(&mut rng); // 220 points
        let mut search = SearchStats::new();
        let mut ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(10), &mut rng, &mut search);
        let policy = AdaptivePolicy::around(22.0); // band [11, 44]

        // The database quadruples: the fixed count would leave ~88 points
        // per bubble; the adaptive round grows the population back into
        // the band.
        let batch = Batch {
            deletes: Vec::new(),
            inserts: (0..660)
                .map(|i| {
                    let t = i as f64 * 0.0095;
                    (vec![40.0 + t.sin() * 30.0, 60.0 + t.cos() * 30.0], Some(7))
                })
                .collect(),
        };
        ib.apply_batch(&mut store, &batch, &mut search);
        let report = ib.maintain_adaptive(&store, &mut rng, &mut search, &policy);
        ib.validate(&store);
        assert!(report.grown > 0, "population grew: {report:?}");
        let avg = ib.total_points() as f64 / ib.num_bubbles() as f64;
        assert!(avg <= 44.0 * 1.5, "avg {avg} moved toward the band");

        // The database shrinks below the band (the growth phase stops at
        // avg == 44, i.e. 20 bubbles; 200 remaining points put the average
        // at 10 < 11): the adaptive round retires bubbles.
        let victims: Vec<PointId> = store.ids().take(680).collect();
        let batch = Batch {
            deletes: victims,
            inserts: Vec::new(),
        };
        ib.apply_batch(&mut store, &batch, &mut search);
        let report = ib.maintain_adaptive(&store, &mut rng, &mut search, &policy);
        ib.validate(&store);
        assert!(report.retired > 0, "population shrank: {report:?}");
    }

    #[test]
    #[should_panic(expected = "adaptive policy")]
    fn invalid_adaptive_policy_panics() {
        let mut rng = StdRng::seed_from_u64(39);
        let store = toy_store(&mut rng);
        let mut search = SearchStats::new();
        let mut ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(4), &mut rng, &mut search);
        let bad = AdaptivePolicy {
            min_avg_points: 10.0,
            max_avg_points: 5.0,
            max_adjustments: 4,
        };
        ib.maintain_adaptive(&store, &mut rng, &mut search, &bad);
    }

    #[test]
    fn spread_split_policy_works() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut store = toy_store(&mut rng);
        let mut search = SearchStats::new();
        let mut ib = IncrementalBubbles::build(
            &store,
            MaintainerConfig::new(12)
                .with_probability(0.8)
                .with_split_seeds(SplitSeedPolicy::Spread),
            &mut rng,
            &mut search,
        );
        let batch = Batch {
            deletes: Vec::new(),
            inserts: (0..150)
                .map(|i| (vec![250.0 + (i % 10) as f64, 250.0], Some(8)))
                .collect(),
        };
        ib.apply_batch(&mut store, &batch, &mut search);
        let report = ib.maintain(&store, &mut rng, &mut search);
        assert!(report.splits >= 1);
        ib.validate(&store);
    }
}
