//! The compression-quality measure and Chebyshev classification
//! (paper, Section 4.1).
//!
//! The *data summarization index* of bubble `i` is `β_i = n_i / N`
//! (Definition 2). Over a set of bubbles, β follows some unknown
//! distribution with mean `μ_β` and standard deviation `σ_β`; Chebyshev's
//! inequality guarantees that at least a fraction `p = 1 − 1/k²` of all β
//! values lies within `k` standard deviations of the mean *regardless of
//! the distribution*, which yields the classification of Definition 3:
//!
//! * **good** — `β ∈ [μ_β − k·σ_β, μ_β + k·σ_β]`
//! * **under-filled** — `β < μ_β − k·σ_β`
//! * **over-filled** — `β > μ_β + k·σ_β`
//!
//! The same machinery applied to the bubbles' spatial *extent* instead of β
//! gives the BIRCH-style measure the paper's Figure 7 experiment shows to
//! fail; both are provided here behind [`QualityKind`].

use crate::bubble::Bubble;
use crate::config::QualityKind;

/// Converts the Chebyshev coverage probability `p` into the multiplier `k`:
/// `p = 1 − 1/k²  ⇒  k = 1/sqrt(1 − p)`.
///
/// # Panics
/// Panics unless `0 < p < 1`.
///
/// # Examples
/// ```
/// let k = idb_core::chebyshev_k(0.9);
/// assert!((k - 10f64.sqrt()).abs() < 1e-12);
/// ```
#[must_use]
pub fn chebyshev_k(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");
    (1.0 - p).sqrt().recip()
}

/// Compression-quality class of one bubble (Definition 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BubbleClass {
    /// β within `k` standard deviations of the mean.
    Good,
    /// β below `μ − k·σ`: (nearly) empty; a candidate donor for splits.
    UnderFilled,
    /// β above `μ + k·σ`: compresses too large a fraction of the database,
    /// possibly spanning several substructures; must be split.
    OverFilled,
}

/// Result of classifying a bubble population.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Per-bubble measure values (β or extent, per [`QualityKind`]).
    pub values: Vec<f64>,
    /// Mean of the measure distribution.
    pub mean: f64,
    /// Standard deviation of the measure distribution.
    pub std_dev: f64,
    /// Lower boundary `μ − k·σ`.
    pub lower: f64,
    /// Upper boundary `μ + k·σ`.
    pub upper: f64,
    /// Per-bubble class, aligned with the input order.
    pub classes: Vec<BubbleClass>,
}

impl Classification {
    /// Indices of the over-filled bubbles, worst (largest measure) first.
    ///
    /// Ordering uses [`f64::total_cmp`]: it is total even over NaN (which
    /// sorts above `+∞` here, i.e. first), so a degenerate measure value
    /// can never make the donor/split order depend on the sort
    /// algorithm's comparison sequence.
    #[must_use]
    pub fn over_filled(&self) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.classes.len())
            .filter(|&i| self.classes[i] == BubbleClass::OverFilled)
            .collect();
        v.sort_by(|&a, &b| self.values[b].total_cmp(&self.values[a]));
        v
    }

    /// Indices of the under-filled bubbles, emptiest (smallest measure)
    /// first. NaN-total ordering as in [`Classification::over_filled`].
    #[must_use]
    pub fn under_filled(&self) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.classes.len())
            .filter(|&i| self.classes[i] == BubbleClass::UnderFilled)
            .collect();
        v.sort_by(|&a, &b| self.values[a].total_cmp(&self.values[b]));
        v
    }

    /// Indices of the good bubbles, lowest measure first — the order in
    /// which the paper recruits donors when no under-filled bubble exists.
    /// NaN-total ordering as in [`Classification::over_filled`].
    #[must_use]
    pub fn good_ascending(&self) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.classes.len())
            .filter(|&i| self.classes[i] == BubbleClass::Good)
            .collect();
        v.sort_by(|&a, &b| self.values[a].total_cmp(&self.values[b]));
        v
    }
}

/// Computes the per-bubble measure value.
fn measure_value(kind: QualityKind, bubble: &Bubble, total_points: u64) -> f64 {
    match kind {
        QualityKind::Beta => {
            if total_points == 0 {
                0.0
            } else {
                bubble.stats().n() as f64 / total_points as f64
            }
        }
        QualityKind::Extent => bubble.stats().extent(),
    }
}

/// Classifies a bubble population under the given quality measure and
/// Chebyshev probability.
///
/// `total_points` is the current database size `N` (only used by the β
/// measure).
#[must_use]
pub fn classify(
    kind: QualityKind,
    bubbles: &[Bubble],
    total_points: u64,
    probability: f64,
) -> Classification {
    let k = chebyshev_k(probability);
    let values: Vec<f64> = bubbles
        .iter()
        .map(|b| measure_value(kind, b, total_points))
        .collect();
    let n = values.len() as f64;
    let mean = if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / n
    };
    let var = if values.is_empty() {
        0.0
    } else {
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n
    };
    let std_dev = var.sqrt();
    let lower = mean - k * std_dev;
    let upper = mean + k * std_dev;
    let classes = values
        .iter()
        .map(|&v| {
            if v < lower {
                BubbleClass::UnderFilled
            } else if v > upper {
                BubbleClass::OverFilled
            } else {
                BubbleClass::Good
            }
        })
        .collect();
    Classification {
        values,
        mean,
        std_dev,
        lower,
        upper,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idb_store::PointId;

    /// Builds a bubble with `n` synthetic members near `center` (1-d).
    fn bubble_with(n: usize, center: f64) -> Bubble {
        let mut b = Bubble::new(vec![center]);
        for i in 0..n {
            let x = center + (i as f64 % 5.0) * 0.1;
            b.stats_mut().add(&[x]);
            b.members_mut().push(PointId(i as u32));
        }
        b
    }

    #[test]
    fn chebyshev_k_values() {
        assert!((chebyshev_k(0.9) - 3.1622776601683795).abs() < 1e-12);
        assert!((chebyshev_k(0.8) - 2.23606797749979).abs() < 1e-12);
        assert!((chebyshev_k(0.75) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn chebyshev_k_rejects_one() {
        let _ = chebyshev_k(1.0);
    }

    #[test]
    fn uniform_population_is_all_good() {
        let bubbles: Vec<Bubble> = (0..20).map(|i| bubble_with(50, i as f64 * 10.0)).collect();
        let c = classify(QualityKind::Beta, &bubbles, 1000, 0.9);
        assert!(c.classes.iter().all(|&cl| cl == BubbleClass::Good));
        assert!((c.mean - 0.05).abs() < 1e-12);
        assert!(c.std_dev < 1e-12);
        assert!(c.over_filled().is_empty());
        assert!(c.under_filled().is_empty());
        assert_eq!(c.good_ascending().len(), 20);
    }

    #[test]
    fn oversized_bubble_is_over_filled() {
        let mut bubbles: Vec<Bubble> = (0..20).map(|i| bubble_with(50, i as f64 * 10.0)).collect();
        // One bubble absorbs a new cluster: 10x the typical mass.
        bubbles.push(bubble_with(500, 300.0));
        let total = 20 * 50 + 500;
        let c = classify(QualityKind::Beta, &bubbles, total, 0.9);
        assert_eq!(c.classes[20], BubbleClass::OverFilled);
        assert_eq!(c.over_filled(), vec![20]);
        // The ordinary bubbles stay good (β lower bound can be negative).
        assert!(c.classes[..20].iter().all(|&cl| cl == BubbleClass::Good));
    }

    #[test]
    fn over_filled_sorted_worst_first() {
        let mut bubbles: Vec<Bubble> = (0..30).map(|i| bubble_with(10, i as f64)).collect();
        bubbles.push(bubble_with(500, 500.0)); // idx 30
        bubbles.push(bubble_with(800, 600.0)); // idx 31
        let total = 30 * 10 + 500 + 800;
        // Two heavy outliers inflate σ; the milder p = 0.75 (k = 2) bound
        // still catches both, ordered worst first.
        let c = classify(QualityKind::Beta, &bubbles, total, 0.75);
        assert_eq!(c.over_filled(), vec![31, 30]);
    }

    #[test]
    fn extent_measure_flags_wide_bubble() {
        let mut bubbles: Vec<Bubble> = (0..20).map(|i| bubble_with(50, i as f64 * 10.0)).collect();
        // A wide bubble: same mass, but members spread over a huge range.
        let mut wide = Bubble::new(vec![0.0]);
        for i in 0..50 {
            wide.stats_mut().add(&[i as f64 * 100.0]);
            wide.members_mut().push(PointId(i));
        }
        bubbles.push(wide);
        let c = classify(QualityKind::Extent, &bubbles, 1050, 0.9);
        assert_eq!(c.classes[20], BubbleClass::OverFilled);
        // Under the β measure the same bubble is NOT flagged — the paper's
        // core argument for β over extent, in miniature.
        let cb = classify(QualityKind::Beta, &bubbles, 1050, 0.9);
        assert_eq!(cb.classes[20], BubbleClass::Good);
    }

    #[test]
    fn good_ascending_orders_by_measure() {
        let bubbles: Vec<Bubble> = vec![
            bubble_with(30, 0.0),
            bubble_with(10, 5.0),
            bubble_with(20, 9.0),
        ];
        let c = classify(QualityKind::Beta, &bubbles, 60, 0.9);
        assert_eq!(c.good_ascending(), vec![1, 2, 0]);
    }

    /// Regression: NaN measure values (a corrupted bubble slipping a NaN
    /// extent past classification) previously hit
    /// `partial_cmp(..).unwrap_or(Equal)`, making the donor/split order
    /// depend on the sort algorithm's comparison sequence. `total_cmp`
    /// gives NaN a fixed place instead: it sorts above `+∞`.
    #[test]
    fn nan_measures_sort_deterministically() {
        let values = vec![1.0, f64::NAN, 0.5, f64::NAN, 2.0, 0.25];
        let classes = vec![
            BubbleClass::OverFilled,
            BubbleClass::OverFilled,
            BubbleClass::UnderFilled,
            BubbleClass::UnderFilled,
            BubbleClass::Good,
            BubbleClass::Good,
        ];
        let c = Classification {
            values,
            mean: f64::NAN,
            std_dev: f64::NAN,
            lower: f64::NAN,
            upper: f64::NAN,
            classes,
        };
        // Descending: NaN (above +inf) first, then 1.0.
        assert_eq!(c.over_filled(), vec![1, 0]);
        // Ascending: finite values first, NaN last.
        assert_eq!(c.under_filled(), vec![2, 3]);
        assert_eq!(c.good_ascending(), vec![5, 4]);
        // And the order is a pure function of the values — permuting the
        // evaluation cannot change it (total order ⇒ unique sorted
        // sequence).
        for _ in 0..3 {
            assert_eq!(c.over_filled(), vec![1, 0]);
        }
    }

    /// A bubble whose statistics degenerated to non-finite values must
    /// classify with a finite (zero) extent instead of poisoning the
    /// mean/σ arithmetic with NaN.
    #[test]
    fn non_finite_stats_classify_with_zero_extent() {
        let mut bubbles: Vec<Bubble> = (0..5).map(|i| bubble_with(20, i as f64 * 10.0)).collect();
        // ls = 0, ss = +inf: the extent radicand is +inf.
        let mut broken = Bubble::new(vec![0.0]);
        broken.stats_mut().add(&[1.0e308]);
        broken.stats_mut().add(&[-1.0e308]);
        broken.members_mut().push(PointId(900));
        broken.members_mut().push(PointId(901));
        assert_eq!(broken.stats().extent(), 0.0, "degenerate extent is 0");
        bubbles.push(broken);
        let c = classify(QualityKind::Extent, &bubbles, 102, 0.9);
        assert!(c.mean.is_finite() && c.std_dev.is_finite());
        assert!(c.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_population_classifies_trivially() {
        let c = classify(QualityKind::Beta, &[], 0, 0.9);
        assert!(c.values.is_empty());
        assert!(c.classes.is_empty());
        assert_eq!(c.mean, 0.0);
    }
}
