//! One data bubble and the abstract summary interface.
//!
//! A maintained [`Bubble`] couples the paper's Definition 1 quantities
//! (derived from [`SufficientStats`]) with the bookkeeping the incremental
//! scheme needs: the *seed* (the fixed anchor point used for assignment,
//! only changed when the bubble is rebuilt by a merge/split) and the list of
//! member point ids (required to decrement statistics on deletion and to
//! redistribute points during merge/split).
//!
//! The [`DataSummary`] trait is what the clustering crate consumes: any
//! summarization — data bubbles here, BIRCH clustering-feature leaves in
//! `idb-birch` — that can produce a representative, a point count, an
//! extent and expected k-NN distances can be clustered by the
//! summary-aware OPTICS.

use crate::stats::SufficientStats;
use idb_store::PointId;

/// Interface of a data summarization object consumable by hierarchical
/// clustering on summaries.
pub trait DataSummary {
    /// Dimensionality of the summarized points.
    fn dim(&self) -> usize;
    /// Number of summarized points.
    fn n(&self) -> u64;
    /// Representative (mean) of the summarized points. Must only be called
    /// when `n() > 0`.
    fn rep(&self) -> Vec<f64>;
    /// Radius around the representative enclosing most of the points.
    fn extent(&self) -> f64;
    /// Estimated average k-nearest-neighbour distance inside the summary.
    fn nn_dist(&self, k: usize) -> f64;
}

/// References summarize what they point at, so clustering entry points
/// can run over borrowed bubble sets (e.g. the per-shard bubble lists a
/// router merges before OPTICS) without cloning.
impl<S: DataSummary + ?Sized> DataSummary for &S {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn n(&self) -> u64 {
        (**self).n()
    }

    fn rep(&self) -> Vec<f64> {
        (**self).rep()
    }

    fn extent(&self) -> f64 {
        (**self).extent()
    }

    fn nn_dist(&self, k: usize) -> f64 {
        (**self).nn_dist(k)
    }
}

/// One data bubble: seed anchor, sufficient statistics and member ids.
///
/// Fields are read-only outside the maintainer; all mutation goes through
/// [`IncrementalBubbles`](crate::incremental::IncrementalBubbles) so the
/// membership side tables stay consistent.
#[derive(Debug, Clone)]
pub struct Bubble {
    seed: Vec<f64>,
    stats: SufficientStats,
    members: Vec<PointId>,
}

impl Bubble {
    /// Creates an empty bubble anchored at `seed`.
    #[must_use]
    pub fn new(seed: Vec<f64>) -> Self {
        let dim = seed.len();
        Self {
            seed,
            stats: SufficientStats::new(dim),
            members: Vec::new(),
        }
    }

    /// The fixed assignment anchor. Equals the original random seed until
    /// the bubble is rebuilt by a merge/split, which re-anchors it.
    #[must_use]
    pub fn seed(&self) -> &[f64] {
        &self.seed
    }

    /// The sufficient statistics.
    #[must_use]
    pub fn stats(&self) -> &SufficientStats {
        &self.stats
    }

    /// Ids of the member points.
    #[must_use]
    pub fn members(&self) -> &[PointId] {
        &self.members
    }

    /// `true` when the bubble summarizes no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    // --- crate-internal mutation, used by the maintainer ---------------

    pub(crate) fn seed_mut(&mut self) -> &mut Vec<f64> {
        &mut self.seed
    }

    pub(crate) fn stats_mut(&mut self) -> &mut SufficientStats {
        &mut self.stats
    }

    pub(crate) fn members_mut(&mut self) -> &mut Vec<PointId> {
        &mut self.members
    }

    pub(crate) fn take_members(&mut self) -> Vec<PointId> {
        std::mem::take(&mut self.members)
    }

    /// The representative when non-empty, else the seed — a convenience for
    /// tests and diagnostics that need *some* location for any bubble.
    #[must_use]
    pub fn rep_or_seed(&self) -> Vec<f64> {
        self.stats.rep().unwrap_or_else(|| self.seed.clone())
    }
}

impl DataSummary for Bubble {
    fn dim(&self) -> usize {
        self.stats.dim()
    }

    fn n(&self) -> u64 {
        self.stats.n()
    }

    fn rep(&self) -> Vec<f64> {
        self.stats.rep().expect("rep() called on an empty bubble")
    }

    fn extent(&self) -> f64 {
        self.stats.extent()
    }

    fn nn_dist(&self, k: usize) -> f64 {
        self.stats.nn_dist(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bubble_is_empty_and_anchored() {
        let b = Bubble::new(vec![1.0, 2.0]);
        assert!(b.is_empty());
        assert_eq!(b.seed(), &[1.0, 2.0]);
        assert_eq!(b.members(), &[]);
        assert_eq!(b.n(), 0);
        assert_eq!(b.dim(), 2);
    }

    #[test]
    fn summary_view_derives_from_stats() {
        let mut b = Bubble::new(vec![0.0, 0.0]);
        b.stats_mut().add(&[2.0, 0.0]);
        b.stats_mut().add(&[4.0, 0.0]);
        b.members_mut().push(PointId(0));
        b.members_mut().push(PointId(1));
        assert_eq!(b.n(), 2);
        assert_eq!(b.rep(), vec![3.0, 0.0]);
        assert!((b.extent() - 2.0).abs() < 1e-12);
        assert!(b.nn_dist(1) > 0.0);
        assert_eq!(b.members().len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty bubble")]
    fn rep_on_empty_bubble_panics() {
        let b = Bubble::new(vec![0.0]);
        let _ = b.rep();
    }
}
