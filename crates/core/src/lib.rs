//! Incremental data bubbles — the primary contribution of
//! *"Incremental and Effective Data Summarization for Dynamic Hierarchical
//! Clustering"* (Nassar, Sander, Cheng; SIGMOD 2004).
//!
//! A *data bubble* compresses a set of points into sufficient statistics
//! `(n, LS, SS)` from which a representative, a spatial extent and expected
//! k-nearest-neighbour distances can be derived — exactly the quantities a
//! hierarchical clustering algorithm such as OPTICS needs to operate on the
//! summary instead of the raw database.
//!
//! This crate provides:
//!
//! * [`stats::SufficientStats`] — the `(n, LS, SS)` triple with its derived
//!   quantities and exact increment/decrement updates;
//! * [`bubble::Bubble`] and the [`bubble::DataSummary`] trait — one
//!   maintained bubble (seed anchor, statistics, member list) and the
//!   abstract summary interface the clustering crate consumes;
//! * [`quality`] — the data summarization index β, Chebyshev-based
//!   classification into *good* / *under-filled* / *over-filled* bubbles
//!   (Definition 3), and the extent-based alternative measure the paper
//!   shows to fail (Figure 7);
//! * [`incremental::IncrementalBubbles`] — construction over a
//!   [`PointStore`](idb_store::PointStore), per-point insertion/deletion
//!   with exact statistics updates, batch application, and the synchronized
//!   merge/split maintenance of Section 4.2;
//! * [`config`] — tuning knobs (number of bubbles, Chebyshev probability,
//!   seed-search engine and warm-start hints, quality measure, split seed
//!   policy);
//! * [`error`] — the typed failure surface of the fault-tolerant entry
//!   points: batch validation errors, the invariant auditor's findings,
//!   and the audit/repair reports.
//!
//! The *complete rebuild* baseline of the paper's evaluation is simply
//! [`incremental::IncrementalBubbles::build`] invoked on the current store
//! contents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bubble;
pub mod config;
pub mod error;
pub mod incremental;
pub mod quality;
pub mod recovery;
pub mod snapshot;
pub mod stats;

pub use bubble::{Bubble, DataSummary};
pub use config::{MaintainerConfig, Parallelism, QualityKind, SeedSearch, SplitSeedPolicy};
pub use error::{AuditError, AuditIssue, AuditReport, RepairReport, UpdateError};
pub use incremental::{
    AdaptivePolicy, AdaptiveReport, BubbleChange, IncrementalBubbles, MaintenanceReport,
};
pub use quality::{chebyshev_k, BubbleClass, Classification};
pub use recovery::{
    decode_checkpoint, decode_delta_checkpoint, delta_base_seq, encode_checkpoint,
    encode_delta_checkpoint, recover, recover_chain, recover_chain_with_obs, recover_with_obs,
    CheckpointStore, DurabilityConfig, DurableMaintainer, FsCheckpoints, Health, MemCheckpoints,
    Recovered, RecoveryError, DELTA_CHECKPOINT_MAGIC,
};
pub use stats::SufficientStats;
