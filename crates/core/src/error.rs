//! Typed errors and reports for fault-tolerant maintenance.
//!
//! The original update path (`apply_batch`, `maintain_adaptive`) follows
//! the paper's assumption of a well-behaved update stream and panics on
//! malformed input. Long-running deployments cannot afford that: a single
//! bad record in a feed must not take the summarization down, and a bug
//! (or a corrupted snapshot) that damages the internal tables must be
//! detectable and repairable without a full O(N·s) rebuild.
//!
//! This module defines the error surface for the fallible twins
//! ([`IncrementalBubbles::try_apply_batch`],
//! [`IncrementalBubbles::try_maintain_adaptive`]) and for the invariant
//! auditor ([`IncrementalBubbles::audit`] /
//! [`IncrementalBubbles::repair`]). Everything is hand-rolled on
//! `std::error::Error` — the workspace deliberately carries no error-
//! handling dependency.
//!
//! [`IncrementalBubbles::try_apply_batch`]: crate::IncrementalBubbles::try_apply_batch
//! [`IncrementalBubbles::try_maintain_adaptive`]: crate::IncrementalBubbles::try_maintain_adaptive
//! [`IncrementalBubbles::audit`]: crate::IncrementalBubbles::audit
//! [`IncrementalBubbles::repair`]: crate::IncrementalBubbles::repair

use idb_store::PointId;
use std::fmt;

/// Why a batch (or a policy) was rejected before anything was applied.
///
/// Returned by the validating entry points; when one of these comes back,
/// the maintainer and the store are guaranteed untouched.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateError {
    /// An insert's coordinate vector has the wrong dimensionality.
    DimensionMismatch {
        /// Index of the offending insert within `batch.inserts`.
        index: usize,
        /// The summarization's dimensionality.
        expected: usize,
        /// The insert's dimensionality.
        found: usize,
    },
    /// An insert carries a NaN or infinite coordinate.
    NonFiniteCoordinate {
        /// Index of the offending insert within `batch.inserts`.
        index: usize,
        /// Axis of the non-finite component.
        axis: usize,
        /// The offending value.
        value: f64,
    },
    /// A delete names a point that is not live (never existed, already
    /// deleted, or not tracked by the summarization).
    StaleDelete {
        /// The offending id.
        id: PointId,
    },
    /// The same point is named by more than one delete in one batch.
    ConflictingOps {
        /// The id named more than once.
        id: PointId,
    },
    /// An [`AdaptivePolicy`](crate::AdaptivePolicy) violates
    /// `0 < min_avg_points < max_avg_points` (or holds a non-finite bound).
    InvalidPolicy {
        /// The policy's `min_avg_points`.
        min_avg_points: f64,
        /// The policy's `max_avg_points`.
        max_avg_points: f64,
    },
    /// The batch was shed by the durability layer before application: the
    /// disk budget or the degraded-mode buffer cap was reached. The
    /// summarization and the store are untouched; the caller may retry
    /// after compaction or recovery frees resources.
    Storage(idb_store::StorageError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "insert {index}: dimension mismatch (expected {expected}, found {found})"
            ),
            Self::NonFiniteCoordinate { index, axis, value } => write!(
                f,
                "insert {index}: non-finite coordinate {value} on axis {axis}"
            ),
            Self::StaleDelete { id } => {
                write!(f, "delete of {id:?}: point is not live")
            }
            Self::ConflictingOps { id } => {
                write!(f, "conflicting operations: {id:?} deleted more than once")
            }
            Self::InvalidPolicy {
                min_avg_points,
                max_avg_points,
            } => write!(
                f,
                "adaptive policy requires 0 < min_avg_points < max_avg_points \
                 (got min = {min_avg_points}, max = {max_avg_points})"
            ),
            Self::Storage(e) => write!(f, "batch shed: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<idb_store::StorageError> for UpdateError {
    fn from(e: idb_store::StorageError) -> Self {
        Self::Storage(e)
    }
}

/// One violated invariant found by [`IncrementalBubbles::audit`].
///
/// [`IncrementalBubbles::audit`]: crate::IncrementalBubbles::audit
#[derive(Debug, Clone, PartialEq)]
pub enum AuditIssue {
    /// The tracked point total disagrees with the store's live count.
    TotalCountMismatch {
        /// What the summarization believes it covers.
        tracked: u64,
        /// The store's live point count.
        live: u64,
    },
    /// A bubble's `n` statistic disagrees with its member-list length.
    MemberCountMismatch {
        /// The inconsistent bubble.
        bubble: usize,
        /// The `n` recorded in the sufficient statistics.
        stats_n: u64,
        /// The member-list length.
        members: usize,
    },
    /// A bubble's member list names a point that is not live in the store.
    DeadMember {
        /// The bubble holding the dead id.
        bubble: usize,
        /// The dead id.
        id: PointId,
    },
    /// A member's reverse-lookup entry points at a different bubble.
    AssignMismatch {
        /// The bubble whose member list contains the point.
        bubble: usize,
        /// The point.
        id: PointId,
        /// Where the assignment table claims the point lives (`None` when
        /// unassigned).
        assigned: Option<usize>,
    },
    /// A member's position entry does not point back at the member slot.
    MemberPosMismatch {
        /// The bubble whose member list contains the point.
        bubble: usize,
        /// The point.
        id: PointId,
        /// The member's actual position in the list.
        expected: usize,
    },
    /// A live store point is claimed by no bubble, or its assignment entry
    /// does not resolve back to it.
    UnassignedLivePoint {
        /// The uncovered point.
        id: PointId,
    },
    /// A dead slot still carries an assignment.
    StaleAssignment {
        /// The dead point id.
        id: PointId,
        /// The bubble the stale entry points at.
        bubble: usize,
    },
    /// A bubble's linear sum drifted away from its recomputed member sum.
    DriftedLinearSum {
        /// The inconsistent bubble.
        bubble: usize,
        /// Axis of the worst component.
        axis: usize,
        /// The stored value.
        stored: f64,
        /// The value recomputed from the members.
        recomputed: f64,
    },
    /// A bubble's square sum drifted away from its recomputed value.
    DriftedSquareSum {
        /// The inconsistent bubble.
        bubble: usize,
        /// The stored value.
        stored: f64,
        /// The value recomputed from the members.
        recomputed: f64,
    },
    /// A bubble's sufficient statistics contain NaN or infinity.
    NonFiniteStats {
        /// The inconsistent bubble.
        bubble: usize,
    },
    /// A bubble's seed contains NaN or infinity.
    NonFiniteSeed {
        /// The inconsistent bubble.
        bubble: usize,
    },
    /// A bubble's seed disagrees with the seed matrix's copy.
    SeedOutOfSync {
        /// The inconsistent bubble.
        bubble: usize,
    },
    /// A cached pairwise seed distance is non-finite or disagrees with the
    /// distance recomputed from the seed coordinates.
    SeedMatrixDrift {
        /// First bubble of the pair.
        i: usize,
        /// Second bubble of the pair.
        j: usize,
        /// The cached distance.
        stored: f64,
        /// The recomputed distance.
        recomputed: f64,
    },
}

impl AuditIssue {
    /// The bubbles this issue implicates (what
    /// [`repair`](crate::IncrementalBubbles::repair) quarantines).
    /// Empty for global issues such as a total-count mismatch.
    #[must_use]
    pub fn implicated_bubbles(&self) -> Vec<usize> {
        match *self {
            Self::TotalCountMismatch { .. } | Self::UnassignedLivePoint { .. } => Vec::new(),
            Self::MemberCountMismatch { bubble, .. }
            | Self::DeadMember { bubble, .. }
            | Self::AssignMismatch { bubble, .. }
            | Self::MemberPosMismatch { bubble, .. }
            | Self::StaleAssignment { bubble, .. }
            | Self::DriftedLinearSum { bubble, .. }
            | Self::DriftedSquareSum { bubble, .. }
            | Self::NonFiniteStats { bubble }
            | Self::NonFiniteSeed { bubble }
            | Self::SeedOutOfSync { bubble } => vec![bubble],
            Self::SeedMatrixDrift { i, j, .. } => vec![i, j],
        }
    }
}

impl fmt::Display for AuditIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TotalCountMismatch { tracked, live } => {
                write!(f, "summary tracks {tracked} points, store holds {live}")
            }
            Self::MemberCountMismatch {
                bubble,
                stats_n,
                members,
            } => write!(
                f,
                "bubble {bubble}: stats n = {stats_n} but {members} members"
            ),
            Self::DeadMember { bubble, id } => {
                write!(f, "bubble {bubble}: member {id:?} is not live")
            }
            Self::AssignMismatch {
                bubble,
                id,
                assigned,
            } => write!(
                f,
                "bubble {bubble}: member {id:?} is assigned to {assigned:?}"
            ),
            Self::MemberPosMismatch {
                bubble,
                id,
                expected,
            } => write!(
                f,
                "bubble {bubble}: member {id:?} at position {expected} has a stale position entry"
            ),
            Self::UnassignedLivePoint { id } => {
                write!(f, "live point {id:?} is not covered by any bubble")
            }
            Self::StaleAssignment { id, bubble } => {
                write!(f, "dead point {id:?} still assigned to bubble {bubble}")
            }
            Self::DriftedLinearSum {
                bubble,
                axis,
                stored,
                recomputed,
            } => write!(
                f,
                "bubble {bubble}: linear sum axis {axis} drifted ({stored} vs {recomputed})"
            ),
            Self::DriftedSquareSum {
                bubble,
                stored,
                recomputed,
            } => write!(
                f,
                "bubble {bubble}: square sum drifted ({stored} vs {recomputed})"
            ),
            Self::NonFiniteStats { bubble } => {
                write!(f, "bubble {bubble}: non-finite sufficient statistics")
            }
            Self::NonFiniteSeed { bubble } => {
                write!(f, "bubble {bubble}: non-finite seed")
            }
            Self::SeedOutOfSync { bubble } => {
                write!(
                    f,
                    "bubble {bubble}: seed matrix out of sync with bubble seed"
                )
            }
            Self::SeedMatrixDrift {
                i,
                j,
                stored,
                recomputed,
            } => write!(
                f,
                "seed matrix entry ({i}, {j}) drifted ({stored} vs {recomputed})"
            ),
        }
    }
}

/// A clean bill of health from [`IncrementalBubbles::audit`].
///
/// [`IncrementalBubbles::audit`]: crate::IncrementalBubbles::audit
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditReport {
    /// Bubbles checked.
    pub bubbles: usize,
    /// Points covered by the (verified) membership tables.
    pub points: u64,
    /// Pairwise seed-matrix entries verified.
    pub checked_pairs: usize,
}

/// The audit found violated invariants; carries every one found, not just
/// the first.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditError {
    /// All violations, in discovery order.
    pub issues: Vec<AuditIssue>,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} invariant violation(s)", self.issues.len())?;
        for issue in &self.issues {
            write!(f, "; {issue}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AuditError {}

/// What [`IncrementalBubbles::repair`] did.
///
/// [`IncrementalBubbles::repair`]: crate::IncrementalBubbles::repair
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Invariant violations found by the pre-repair audit.
    pub issues_found: usize,
    /// Bubbles quarantined and rebuilt locally.
    pub quarantined: usize,
    /// Bubbles whose seed had to be re-drawn (non-finite seed).
    pub reseeded: usize,
    /// Points reattached to a bubble (drained from quarantined bubbles or
    /// found uncovered).
    pub reassigned_points: u64,
    /// Stale assignment entries of dead points that were cleared.
    pub cleared_stale_assignments: usize,
}

impl RepairReport {
    /// `true` when the audit was already green and nothing was touched.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.issues_found == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_error_messages_name_the_offender() {
        let e = UpdateError::NonFiniteCoordinate {
            index: 3,
            axis: 1,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("insert 3"), "{e}");
        let e = UpdateError::InvalidPolicy {
            min_avg_points: 10.0,
            max_avg_points: 5.0,
        };
        assert!(e.to_string().contains("adaptive policy"), "{e}");
    }

    #[test]
    fn implicated_bubbles_cover_every_variant_shape() {
        assert!(AuditIssue::TotalCountMismatch {
            tracked: 1,
            live: 2
        }
        .implicated_bubbles()
        .is_empty());
        assert_eq!(
            AuditIssue::NonFiniteSeed { bubble: 4 }.implicated_bubbles(),
            vec![4]
        );
        assert_eq!(
            AuditIssue::SeedMatrixDrift {
                i: 1,
                j: 2,
                stored: 0.0,
                recomputed: 1.0
            }
            .implicated_bubbles(),
            vec![1, 2]
        );
    }

    #[test]
    fn audit_error_lists_every_issue() {
        let e = AuditError {
            issues: vec![
                AuditIssue::TotalCountMismatch {
                    tracked: 1,
                    live: 2,
                },
                AuditIssue::NonFiniteSeed { bubble: 0 },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("2 invariant violation(s)"), "{s}");
        assert!(s.contains("non-finite seed"), "{s}");
    }
}
