//! Configuration of the incremental maintainer.

pub use idb_geometry::Parallelism;

/// How points are assigned to their closest seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignStrategy {
    /// Compute the distance to every seed (the standard implementation the
    /// paper optimizes away).
    Brute,
    /// Triangle-inequality pruning over the seed distance matrix
    /// (Section 3, Figure 2).
    TriangleInequality,
}

/// Which compression-quality measure classifies the bubbles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QualityKind {
    /// The data summarization index `β = n/N` (Definition 2) — the paper's
    /// proposed measure.
    Beta,
    /// The spatial extent, as implied by BIRCH-style thresholds — the
    /// alternative the paper shows to fail to adapt (Figure 7).
    Extent,
}

/// How the two seeds of a split are chosen from the over-filled bubble's
/// members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitSeedPolicy {
    /// Two distinct members chosen uniformly at random (the paper).
    Random,
    /// First seed random, second seed the member farthest from it — an
    /// ablation that spreads the split more aggressively.
    Spread,
}

/// Tuning knobs of [`IncrementalBubbles`](crate::incremental::IncrementalBubbles).
#[derive(Debug, Clone)]
pub struct MaintainerConfig {
    /// Number of data bubbles (the compression rate `s`).
    pub num_bubbles: usize,
    /// Chebyshev coverage probability `p` of Definition 3 (the paper uses
    /// 0.9 and validates 0.8); determines `k = 1/sqrt(1-p)`.
    pub probability: f64,
    /// Assignment strategy for construction, insertion and redistribution.
    pub strategy: AssignStrategy,
    /// Quality measure used by [`maintain`](crate::incremental::IncrementalBubbles::maintain).
    pub quality: QualityKind,
    /// Split seed selection policy.
    pub split_seeds: SplitSeedPolicy,
    /// How the bulk hot paths (construction scan, released-point
    /// reassignment, split redistribution, invariant audit) spread over
    /// threads. Every mode produces bit-identical results — including the
    /// distance-computation counts — so this is purely a wall-clock knob.
    pub parallelism: Parallelism,
}

impl MaintainerConfig {
    /// Paper defaults: triangle-inequality assignment, β quality measure at
    /// `p = 0.9`, random split seeds. Parallelism defaults to the
    /// environment mode (`IDB_PARALLELISM`, serial when unset) so a whole
    /// test or experiment run can be pinned without touching call sites.
    #[must_use]
    pub fn new(num_bubbles: usize) -> Self {
        assert!(num_bubbles >= 2, "at least two bubbles are required");
        Self {
            num_bubbles,
            probability: 0.9,
            strategy: AssignStrategy::TriangleInequality,
            quality: QualityKind::Beta,
            split_seeds: SplitSeedPolicy::Random,
            parallelism: Parallelism::default(),
        }
    }

    /// Sets the Chebyshev probability.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1`.
    #[must_use]
    pub fn with_probability(mut self, p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");
        self.probability = p;
        self
    }

    /// Sets the assignment strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: AssignStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the quality measure.
    #[must_use]
    pub fn with_quality(mut self, quality: QualityKind) -> Self {
        self.quality = quality;
        self
    }

    /// Sets the split seed policy.
    #[must_use]
    pub fn with_split_seeds(mut self, policy: SplitSeedPolicy) -> Self {
        self.split_seeds = policy;
        self
    }

    /// Sets the parallel execution mode for the bulk hot paths.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MaintainerConfig::new(100);
        assert_eq!(c.num_bubbles, 100);
        assert_eq!(c.probability, 0.9);
        assert_eq!(c.strategy, AssignStrategy::TriangleInequality);
        assert_eq!(c.quality, QualityKind::Beta);
        assert_eq!(c.split_seeds, SplitSeedPolicy::Random);
        // The parallelism default tracks the environment knob.
        assert_eq!(c.parallelism, Parallelism::default());
    }

    #[test]
    fn builder_methods_chain() {
        let c = MaintainerConfig::new(50)
            .with_probability(0.8)
            .with_strategy(AssignStrategy::Brute)
            .with_quality(QualityKind::Extent)
            .with_split_seeds(SplitSeedPolicy::Spread)
            .with_parallelism(Parallelism::Threads(3));
        assert_eq!(c.probability, 0.8);
        assert_eq!(c.strategy, AssignStrategy::Brute);
        assert_eq!(c.quality, QualityKind::Extent);
        assert_eq!(c.split_seeds, SplitSeedPolicy::Spread);
        assert_eq!(c.parallelism, Parallelism::Threads(3));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn too_few_bubbles_panics() {
        let _ = MaintainerConfig::new(1);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = MaintainerConfig::new(10).with_probability(1.0);
    }
}
