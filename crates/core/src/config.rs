//! Configuration of the incremental maintainer.

pub use idb_geometry::{Parallelism, SeedSearch};

/// Which compression-quality measure classifies the bubbles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QualityKind {
    /// The data summarization index `β = n/N` (Definition 2) — the paper's
    /// proposed measure.
    Beta,
    /// The spatial extent, as implied by BIRCH-style thresholds — the
    /// alternative the paper shows to fail to adapt (Figure 7).
    Extent,
}

/// How the two seeds of a split are chosen from the over-filled bubble's
/// members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitSeedPolicy {
    /// Two distinct members chosen uniformly at random (the paper).
    Random,
    /// First seed random, second seed the member farthest from it — an
    /// ablation that spreads the split more aggressively.
    Spread,
}

/// Tuning knobs of [`IncrementalBubbles`](crate::incremental::IncrementalBubbles).
#[derive(Debug, Clone)]
pub struct MaintainerConfig {
    /// Number of data bubbles (the compression rate `s`).
    pub num_bubbles: usize,
    /// Chebyshev coverage probability `p` of Definition 3 (the paper uses
    /// 0.9 and validates 0.8); determines `k = 1/sqrt(1-p)`.
    pub probability: f64,
    /// Nearest-seed engine for construction, insertion and redistribution:
    /// brute force, triangle-inequality pruning over the seed distance
    /// matrix (Section 3, Figure 2), or a k-d tree over the seeds. Every
    /// engine returns bit-identical assignments; they differ only in how
    /// many distance computations they spend.
    pub seed_search: SeedSearch,
    /// Whether the maintainer passes warm-start hints (the point's previous
    /// bubble, a merged bubble's nearest surviving neighbour, the last
    /// insertion target) to the pruned engines. Hints never change results
    /// — disabling this is an ablation knob that isolates their effect on
    /// the distance-computation counters.
    pub warm_start: bool,
    /// Quality measure used by [`maintain`](crate::incremental::IncrementalBubbles::maintain).
    pub quality: QualityKind,
    /// Split seed selection policy.
    pub split_seeds: SplitSeedPolicy,
    /// How the bulk hot paths (construction scan, released-point
    /// reassignment, split redistribution, invariant audit) spread over
    /// threads. Every mode produces bit-identical results — including the
    /// distance-computation counts — so this is purely a wall-clock knob.
    pub parallelism: Parallelism,
}

impl MaintainerConfig {
    /// Paper defaults: triangle-inequality (pruned) assignment with
    /// warm-start hints, β quality measure at `p = 0.9`, random split
    /// seeds. Both the seed-search engine and the parallelism default to
    /// their environment modes (`IDB_SEED_SEARCH` / `IDB_PARALLELISM`,
    /// pruned and serial when unset) so a whole test or experiment run can
    /// be pinned without touching call sites.
    #[must_use]
    pub fn new(num_bubbles: usize) -> Self {
        assert!(num_bubbles >= 2, "at least two bubbles are required");
        Self {
            num_bubbles,
            probability: 0.9,
            seed_search: SeedSearch::default(),
            warm_start: true,
            quality: QualityKind::Beta,
            split_seeds: SplitSeedPolicy::Random,
            parallelism: Parallelism::default(),
        }
    }

    /// Sets the Chebyshev probability.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1`.
    #[must_use]
    pub fn with_probability(mut self, p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");
        self.probability = p;
        self
    }

    /// Sets the nearest-seed search engine.
    #[must_use]
    pub fn with_seed_search(mut self, engine: SeedSearch) -> Self {
        self.seed_search = engine;
        self
    }

    /// Enables or disables warm-start hints on the assignment paths.
    #[must_use]
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Sets the quality measure.
    #[must_use]
    pub fn with_quality(mut self, quality: QualityKind) -> Self {
        self.quality = quality;
        self
    }

    /// Sets the split seed policy.
    #[must_use]
    pub fn with_split_seeds(mut self, policy: SplitSeedPolicy) -> Self {
        self.split_seeds = policy;
        self
    }

    /// Sets the parallel execution mode for the bulk hot paths.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MaintainerConfig::new(100);
        assert_eq!(c.num_bubbles, 100);
        assert_eq!(c.probability, 0.9);
        // The engine default tracks the environment knob (pruned unless
        // IDB_SEED_SEARCH overrides it), mirroring parallelism.
        assert_eq!(c.seed_search, SeedSearch::default());
        assert!(c.warm_start);
        assert_eq!(c.quality, QualityKind::Beta);
        assert_eq!(c.split_seeds, SplitSeedPolicy::Random);
        assert_eq!(c.parallelism, Parallelism::default());
    }

    #[test]
    fn builder_methods_chain() {
        let c = MaintainerConfig::new(50)
            .with_probability(0.8)
            .with_seed_search(SeedSearch::Brute)
            .with_warm_start(false)
            .with_quality(QualityKind::Extent)
            .with_split_seeds(SplitSeedPolicy::Spread)
            .with_parallelism(Parallelism::Threads(3));
        assert_eq!(c.probability, 0.8);
        assert_eq!(c.seed_search, SeedSearch::Brute);
        assert!(!c.warm_start);
        assert_eq!(c.quality, QualityKind::Extent);
        assert_eq!(c.split_seeds, SplitSeedPolicy::Spread);
        assert_eq!(c.parallelism, Parallelism::Threads(3));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn too_few_bubbles_panics() {
        let _ = MaintainerConfig::new(1);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = MaintainerConfig::new(10).with_probability(1.0);
    }
}
