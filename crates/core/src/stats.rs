//! Sufficient statistics `(n, LS, SS)` and their derived quantities.
//!
//! Following the data-bubbles line of work the paper builds on, a set of
//! points `X = {X_i}` is compressed into
//!
//! * `n` — the number of points,
//! * `LS` — their linear (vector) sum, and
//! * `SS` — their scalar sum of squared norms,
//!
//! from which the quantities of Definition 1 are derived:
//!
//! * the representative `rep = LS / n` (the mean),
//! * the `extent` — the radius around `rep` enclosing most of the points,
//!   computed as the average pairwise distance
//!   `sqrt((2·n·SS − 2·|LS|²) / (n·(n−1)))`, and
//! * `nnDist(k) = (k/n)^(1/d) · extent` — the expected k-nearest-neighbour
//!   distance under a uniform-density assumption inside the bubble.
//!
//! The triple is *exactly* incrementable and decrementable: deleting point
//! `p` maps `(n, LS, SS)` to `(n−1, LS−p, SS−p²)` and inserting maps it to
//! `(n+1, LS+p, SS+p²)` (paper, Section 4). Floating-point cancellation
//! after long delete sequences can drive the extent radicand slightly
//! negative; it is clamped at zero, which the tests pin down.

use idb_geometry::metric::sq_norm;

/// The incrementally maintainable `(n, LS, SS)` triple of one data bubble.
///
/// # Examples
/// ```
/// use idb_core::SufficientStats;
///
/// let mut stats = SufficientStats::new(2);
/// stats.add(&[0.0, 0.0]);
/// stats.add(&[2.0, 0.0]);
/// assert_eq!(stats.rep().unwrap(), vec![1.0, 0.0]);
/// assert!((stats.extent() - 2.0).abs() < 1e-12);
///
/// // Deletion is the exact inverse of insertion.
/// stats.remove(&[2.0, 0.0]);
/// assert_eq!(stats.n(), 1);
/// assert_eq!(stats.rep().unwrap(), vec![0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SufficientStats {
    n: u64,
    ls: Vec<f64>,
    ss: f64,
}

impl SufficientStats {
    /// Empty statistics for points of dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "SufficientStats requires dim > 0");
        Self {
            n: 0,
            ls: vec![0.0; dim],
            ss: 0.0,
        }
    }

    /// Statistics of a point set, computed in one pass.
    pub fn from_points<'a, I>(dim: usize, points: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut s = Self::new(dim);
        for p in points {
            s.add(p);
        }
        s
    }

    /// Reassembles statistics from raw parts (snapshot decoding only; the
    /// caller guarantees consistency with the member set).
    pub(crate) fn from_raw_parts(n: u64, ls: Vec<f64>, ss: f64) -> Self {
        Self { n, ls, ss }
    }

    /// Number of summarized points.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// `true` when no point is summarized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality of the summarized points.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.ls.len()
    }

    /// The linear sum `LS`.
    #[must_use]
    pub fn linear_sum(&self) -> &[f64] {
        &self.ls
    }

    /// The square sum `SS`.
    #[must_use]
    pub fn square_sum(&self) -> f64 {
        self.ss
    }

    /// Absorbs one point: `(n+1, LS+p, SS+p²)`.
    ///
    /// # Panics
    /// Panics if `p` has the wrong dimensionality.
    #[inline]
    pub fn add(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.ls.len(), "point dimensionality mismatch");
        self.n += 1;
        for (l, &x) in self.ls.iter_mut().zip(p) {
            *l += x;
        }
        self.ss += sq_norm(p);
    }

    /// Releases one point: `(n−1, LS−p, SS−p²)`.
    ///
    /// # Panics
    /// Panics if the statistics are empty or `p` has the wrong
    /// dimensionality. Removing a point that was never added is a caller
    /// logic error that this type cannot detect; the incremental maintainer
    /// guarantees it by tracking memberships.
    #[inline]
    pub fn remove(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.ls.len(), "point dimensionality mismatch");
        assert!(self.n > 0, "remove from empty statistics");
        self.n -= 1;
        for (l, &x) in self.ls.iter_mut().zip(p) {
            *l -= x;
        }
        self.ss -= sq_norm(p);
        if self.n == 0 {
            // Snap exactly to the empty state so long-lived bubbles do not
            // accumulate drift across empty episodes.
            self.ls.iter_mut().for_each(|l| *l = 0.0);
            self.ss = 0.0;
        }
    }

    /// Merges another bubble's statistics into this one (the CF additivity
    /// property; used by the BIRCH substrate and by tests).
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.dim(), other.dim(), "dimensionality mismatch");
        self.n += other.n;
        for (l, &o) in self.ls.iter_mut().zip(&other.ls) {
            *l += o;
        }
        self.ss += other.ss;
    }

    /// Resets to the empty state.
    pub fn clear(&mut self) {
        self.n = 0;
        self.ls.iter_mut().for_each(|l| *l = 0.0);
        self.ss = 0.0;
    }

    /// The representative `rep = LS/n`, or `None` when empty.
    #[must_use]
    pub fn rep(&self) -> Option<Vec<f64>> {
        if self.n == 0 {
            return None;
        }
        let inv = 1.0 / self.n as f64;
        Some(self.ls.iter().map(|&l| l * inv).collect())
    }

    /// Writes the representative into `out` (resizing it), returning `false`
    /// when the statistics are empty. Allocation-free variant of
    /// [`Self::rep`] for hot loops.
    pub fn rep_into(&self, out: &mut Vec<f64>) -> bool {
        if self.n == 0 {
            return false;
        }
        let inv = 1.0 / self.n as f64;
        out.clear();
        out.extend(self.ls.iter().map(|&l| l * inv));
        true
    }

    /// The extent: the average pairwise distance
    /// `sqrt((2·n·SS − 2·|LS|²) / (n·(n−1)))`, clamped at zero against
    /// floating-point cancellation. Zero for `n <= 1` and for degenerate
    /// statistics whose radicand is not finite (overflowed or NaN-poisoned
    /// sums) — the classifier needs a finite measure for every bubble, and
    /// the audit flags non-finite statistics separately.
    #[must_use]
    pub fn extent(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        let n = self.n as f64;
        let radicand = (2.0 * n * self.ss - 2.0 * sq_norm(&self.ls)) / (n * (n - 1.0));
        if !radicand.is_finite() {
            return 0.0;
        }
        radicand.max(0.0).sqrt()
    }

    /// Expected average k-nearest-neighbour distance inside the bubble
    /// under a uniform-density assumption: `(k/n)^(1/d) · extent`.
    ///
    /// Defined for `1 <= k`; callers pass `k <= n` (OPTICS only queries
    /// `nnDist(MinPts)` on bubbles with at least `MinPts` points). For an
    /// empty bubble the value is zero.
    #[must_use]
    pub fn nn_dist(&self, k: usize) -> f64 {
        if self.n == 0 || k == 0 {
            return 0.0;
        }
        let d = self.dim() as f64;
        (k as f64 / self.n as f64).powf(1.0 / d) * self.extent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idb_geometry::dist;

    #[test]
    fn add_then_rep_is_mean() {
        let mut s = SufficientStats::new(2);
        s.add(&[1.0, 2.0]);
        s.add(&[3.0, 6.0]);
        assert_eq!(s.n(), 2);
        assert_eq!(s.rep().unwrap(), vec![2.0, 4.0]);
        let mut out = Vec::new();
        assert!(s.rep_into(&mut out));
        assert_eq!(out, vec![2.0, 4.0]);
    }

    #[test]
    fn empty_rep_is_none() {
        let s = SufficientStats::new(3);
        assert!(s.rep().is_none());
        let mut out = vec![9.0];
        assert!(!s.rep_into(&mut out));
        assert_eq!(s.extent(), 0.0);
        assert_eq!(s.nn_dist(3), 0.0);
    }

    #[test]
    fn extent_matches_average_pairwise_distance_definition() {
        // Points {0, 2} in 1-d: the only pair has squared distance 4, so
        // the average pairwise squared distance is (2*4)/(2*1) = 4 — the
        // definition averages over ordered pairs i != j.
        let s = SufficientStats::from_points(1, [[0.0].as_slice(), [2.0].as_slice()]);
        assert!((s.extent() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn extent_brute_force_cross_check() {
        let pts: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 3.0],
            vec![-2.0, 1.0],
            vec![4.0, -1.0],
            vec![2.0, 2.0],
        ];
        let s = SufficientStats::from_points(2, pts.iter().map(|p| p.as_slice()));
        let n = pts.len() as f64;
        let mut acc = 0.0;
        for a in &pts {
            for b in &pts {
                let d = dist(a, b);
                acc += d * d;
            }
        }
        let expect = (acc / (n * (n - 1.0))).sqrt();
        assert!((s.extent() - expect).abs() < 1e-9);
    }

    #[test]
    fn remove_is_exact_inverse_of_add() {
        let pts: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![i as f64 * 1.5, -(i as f64), i as f64 * i as f64])
            .collect();
        let mut s = SufficientStats::from_points(3, pts.iter().map(|p| p.as_slice()));
        let snapshot = s.clone();
        s.add(&[7.0, 8.0, 9.0]);
        s.remove(&[7.0, 8.0, 9.0]);
        assert_eq!(s.n(), snapshot.n());
        for (a, b) in s.linear_sum().iter().zip(snapshot.linear_sum()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!((s.square_sum() - snapshot.square_sum()).abs() < 1e-6);
    }

    #[test]
    fn remove_to_empty_snaps_to_zero() {
        let mut s = SufficientStats::new(2);
        s.add(&[0.1, 0.2]);
        s.add(&[0.3, 0.4]);
        s.remove(&[0.1, 0.2]);
        s.remove(&[0.3, 0.4]);
        assert!(s.is_empty());
        assert_eq!(s.linear_sum(), &[0.0, 0.0]);
        assert_eq!(s.square_sum(), 0.0);
        assert_eq!(s.extent(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn remove_from_empty_panics() {
        let mut s = SufficientStats::new(1);
        s.remove(&[1.0]);
    }

    #[test]
    fn extent_clamped_non_negative_under_cancellation() {
        // A single far-away pair added and removed leaves tiny negative
        // radicands; the clamp keeps extent at exactly zero.
        let mut s = SufficientStats::new(1);
        s.add(&[1e8]);
        s.add(&[1e8 + 1e-4]);
        s.remove(&[1e8 + 1e-4]);
        assert!(s.extent() >= 0.0);
        assert_eq!(s.n(), 1);
        assert_eq!(s.extent(), 0.0, "n == 1 has zero extent");
    }

    #[test]
    fn merge_equals_bulk_construction() {
        let a_pts = [[1.0, 2.0], [3.0, 4.0]];
        let b_pts = [[5.0, 6.0], [7.0, 8.0], [9.0, 0.0]];
        let mut a = SufficientStats::from_points(2, a_pts.iter().map(|p| p.as_slice()));
        let b = SufficientStats::from_points(2, b_pts.iter().map(|p| p.as_slice()));
        a.merge(&b);
        let all =
            SufficientStats::from_points(2, a_pts.iter().chain(b_pts.iter()).map(|p| p.as_slice()));
        assert_eq!(a.n(), all.n());
        for (x, y) in a.linear_sum().iter().zip(all.linear_sum()) {
            assert!((x - y).abs() < 1e-9);
        }
        assert!((a.square_sum() - all.square_sum()).abs() < 1e-9);
    }

    #[test]
    fn nn_dist_scales_with_k_and_dim() {
        // 100 points of extent e: nnDist(1) = (1/100)^(1/d) * e.
        let mut s = SufficientStats::new(2);
        for i in 0..100 {
            let t = i as f64 / 10.0;
            s.add(&[t.sin() * 5.0, t.cos() * 5.0]);
        }
        let e = s.extent();
        assert!(e > 0.0);
        let d1 = s.nn_dist(1);
        let d4 = s.nn_dist(4);
        assert!((d1 - (0.01f64).sqrt() * e).abs() < 1e-12);
        assert!((d4 / d1 - 2.0).abs() < 1e-9, "(4/1)^(1/2) = 2");
        assert!(d1 < d4 && d4 < e * 1.0001);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = SufficientStats::from_points(2, [[1.0, 1.0].as_slice()]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.square_sum(), 0.0);
        assert_eq!(s.linear_sum(), &[0.0, 0.0]);
    }
}
