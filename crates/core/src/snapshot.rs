//! Binary snapshots of a maintained bubble population.
//!
//! Pairs with [`idb_store::snapshot`]: a deployment checkpoints its store
//! and its [`IncrementalBubbles`] together and restores both after a
//! restart — *without* re-running the O(N·s) construction. The decoder
//! validates the snapshot against the store it is restored over (every
//! member must be a live point, every live point must be claimed exactly
//! once, counts must match), so a snapshot from a diverged store is
//! rejected instead of silently producing a corrupt summary.

use crate::bubble::Bubble;
use crate::config::{MaintainerConfig, QualityKind, SeedSearch, SplitSeedPolicy};
use crate::incremental::IncrementalBubbles;
use crate::stats::SufficientStats;
use idb_geometry::NearestSeeds;
use idb_store::snapshot::{
    read_f64, read_frame, read_u32, read_u64, write_f64, write_frame, write_u32, write_u64,
    SnapshotError,
};
use idb_store::{PointId, PointStore};
use std::io::{Read, Write};

pub(crate) const MAGIC: &[u8; 4] = b"IDBB";

fn enum_to_u8(config: &MaintainerConfig) -> (u8, u8, u8) {
    // `1` is the historical TriangleInequality encoding, which the pruned
    // engine supersedes; snapshots written before the engine enum existed
    // therefore decode to the equivalent engine. Runtime-only knobs
    // (warm_start, parallelism) are not persisted.
    let engine = match config.seed_search {
        SeedSearch::Brute => 0u8,
        SeedSearch::Pruned => 1,
        SeedSearch::KdTree => 2,
    };
    let quality = match config.quality {
        QualityKind::Beta => 0u8,
        QualityKind::Extent => 1,
    };
    let split = match config.split_seeds {
        SplitSeedPolicy::Random => 0u8,
        SplitSeedPolicy::Spread => 1,
    };
    (engine, quality, split)
}

fn u8_to_enums(
    engine: u8,
    quality: u8,
    split: u8,
) -> Result<(SeedSearch, QualityKind, SplitSeedPolicy), SnapshotError> {
    let engine = match engine {
        0 => SeedSearch::Brute,
        1 => SeedSearch::Pruned,
        2 => SeedSearch::KdTree,
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown seed-search engine {other}"
            )))
        }
    };
    let quality = match quality {
        0 => QualityKind::Beta,
        1 => QualityKind::Extent,
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown quality kind {other}"
            )))
        }
    };
    let split = match split {
        0 => SplitSeedPolicy::Random,
        1 => SplitSeedPolicy::Spread,
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown split policy {other}"
            )))
        }
    };
    Ok((engine, quality, split))
}

impl IncrementalBubbles {
    /// Writes a binary snapshot: configuration, every bubble's seed,
    /// sufficient statistics and member list — wrapped in the checksummed
    /// version-2 frame shared with [`idb_store::snapshot::write_frame`].
    ///
    /// # Errors
    /// Whatever the underlying writer reports.
    pub fn write_snapshot<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut payload = Vec::new();
        self.write_body(&mut payload)?;
        write_frame(w, MAGIC, &payload)
    }

    fn write_body<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write_u64(w, self.dim() as u64)?;
        let config = self.config();
        write_u64(w, config.num_bubbles as u64)?;
        write_f64(w, config.probability)?;
        let (s, q, p) = enum_to_u8(config);
        w.write_all(&[s, q, p])?;
        write_u64(w, self.bubbles().len() as u64)?;
        for b in self.bubbles() {
            for &x in b.seed() {
                write_f64(w, x)?;
            }
            write_u64(w, b.stats().n())?;
            for &l in b.stats().linear_sum() {
                write_f64(w, l)?;
            }
            write_f64(w, b.stats().square_sum())?;
            write_u64(w, b.members().len() as u64)?;
            for id in b.members() {
                write_u32(w, id.0)?;
            }
        }
        Ok(())
    }

    /// Restores a population from a snapshot, validating it against the
    /// store it summarizes.
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] when a checksum fails, the header is
    /// invalid, a member id is not live in `store`, a point is claimed by
    /// two bubbles, or the summary does not cover the store exactly.
    /// Legacy version-1 snapshots (unchecksummed) are still accepted.
    pub fn read_snapshot<R: Read>(r: &mut R, store: &PointStore) -> Result<Self, SnapshotError> {
        match read_frame(r, MAGIC)? {
            Some(payload) => {
                let mut cur: &[u8] = &payload;
                let this = Self::read_body(&mut cur, store)?;
                if !cur.is_empty() {
                    return Err(SnapshotError::Corrupt(format!(
                        "{} trailing bytes after payload",
                        cur.len()
                    )));
                }
                Ok(this)
            }
            None => Self::read_body(r, store),
        }
    }

    fn read_body<R: Read>(r: &mut R, store: &PointStore) -> Result<Self, SnapshotError> {
        let dim = read_u64(r)? as usize;
        if dim != store.dim() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot dim {dim} vs store dim {}",
                store.dim()
            )));
        }
        let num_bubbles = read_u64(r)? as usize;
        let probability = read_f64(r)?;
        if !(probability > 0.0 && probability < 1.0) {
            return Err(SnapshotError::Corrupt(format!(
                "implausible probability {probability}"
            )));
        }
        let mut enums = [0u8; 3];
        r.read_exact(&mut enums)?;
        let (engine, quality, split) = u8_to_enums(enums[0], enums[1], enums[2])?;
        if num_bubbles < 2 {
            return Err(SnapshotError::Corrupt(format!(
                "implausible bubble count {num_bubbles}"
            )));
        }
        let config = MaintainerConfig::new(num_bubbles)
            .with_probability(probability)
            .with_seed_search(engine)
            .with_quality(quality)
            .with_split_seeds(split);

        let live_count = read_u64(r)? as usize;
        if !(2..=(1usize << 24)).contains(&live_count) {
            return Err(SnapshotError::Corrupt(format!(
                "implausible live bubble count {live_count}"
            )));
        }
        let mut seeds = NearestSeeds::new(dim);
        let mut bubbles = Vec::with_capacity(live_count);
        let mut assign = vec![u32::MAX; store.slots()];
        let mut member_pos = vec![u32::MAX; store.slots()];
        let mut total_points: u64 = 0;
        let mut coord = vec![0.0f64; dim];

        for bi in 0..live_count {
            for x in coord.iter_mut() {
                *x = read_f64(r)?;
            }
            seeds.push(&coord);
            let mut bubble = Bubble::new(coord.clone());

            let n = read_u64(r)?;
            let mut ls = vec![0.0f64; dim];
            for l in ls.iter_mut() {
                *l = read_f64(r)?;
            }
            let ss = read_f64(r)?;
            let member_count = read_u64(r)? as usize;
            if member_count as u64 != n {
                return Err(SnapshotError::Corrupt(format!(
                    "bubble {bi}: n = {n} but {member_count} members"
                )));
            }
            for pos in 0..member_count {
                let raw = read_u32(r)?;
                let id = PointId(raw);
                if !store.contains(id) {
                    return Err(SnapshotError::Corrupt(format!(
                        "bubble {bi}: member {raw} is not live in the store"
                    )));
                }
                if assign[id.index()] != u32::MAX {
                    return Err(SnapshotError::Corrupt(format!(
                        "point {raw} claimed by two bubbles"
                    )));
                }
                assign[id.index()] = bi as u32;
                member_pos[id.index()] = pos as u32;
                bubble.members_mut().push(id);
                total_points += 1;
            }
            *bubble.stats_mut() = SufficientStats::from_raw_parts(n, ls, ss);
            bubbles.push(bubble);
        }

        if total_points != store.len() as u64 {
            return Err(SnapshotError::Corrupt(format!(
                "summary covers {total_points} points, store holds {}",
                store.len()
            )));
        }

        Ok(Self::from_raw_parts(
            dim,
            config,
            seeds,
            bubbles,
            assign,
            member_pos,
            total_points,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idb_geometry::SearchStats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fixture() -> (PointStore, IncrementalBubbles, StdRng) {
        let mut rng = StdRng::seed_from_u64(61);
        let mut store = PointStore::new(2);
        for i in 0..400 {
            let t = i as f64 * 0.031;
            store.insert(
                &[
                    (i % 3) as f64 * 40.0 + t.sin(),
                    (i % 3) as f64 * 40.0 + t.cos(),
                ],
                Some(i % 3),
            );
        }
        let mut search = SearchStats::new();
        let mut ib =
            IncrementalBubbles::build(&store, MaintainerConfig::new(12), &mut rng, &mut search);
        // Some churn so the snapshot captures a non-trivial state.
        let victims: Vec<PointId> = store.ids().take(30).collect();
        let batch = idb_store::Batch {
            deletes: victims,
            inserts: (0..30)
                .map(|_| (vec![rng.gen_range(0.0..80.0), 40.0], None))
                .collect(),
        };
        ib.apply_batch(&mut store, &batch, &mut search);
        ib.maintain(&store, &mut rng, &mut search);
        (store, ib, rng)
    }

    #[test]
    fn round_trip_restores_identical_state() {
        let (store, ib, _) = fixture();
        let mut buf = Vec::new();
        ib.write_snapshot(&mut buf).unwrap();
        let restored = IncrementalBubbles::read_snapshot(&mut buf.as_slice(), &store).unwrap();
        restored.validate(&store);
        assert_eq!(restored.num_bubbles(), ib.num_bubbles());
        assert_eq!(restored.total_points(), ib.total_points());
        for (a, b) in ib.bubbles().iter().zip(restored.bubbles()) {
            assert_eq!(a.seed(), b.seed());
            assert_eq!(a.stats(), b.stats());
            assert_eq!(a.members(), b.members());
        }
    }

    #[test]
    fn restored_population_keeps_working() {
        let (mut store, ib, mut rng) = fixture();
        let mut buf = Vec::new();
        ib.write_snapshot(&mut buf).unwrap();
        let mut restored = IncrementalBubbles::read_snapshot(&mut buf.as_slice(), &store).unwrap();
        let mut search = SearchStats::new();
        let batch = idb_store::Batch {
            deletes: store.ids().take(10).collect(),
            inserts: (0..10).map(|i| (vec![i as f64, 0.0], None)).collect(),
        };
        restored.apply_batch(&mut store, &batch, &mut search);
        restored.maintain(&store, &mut rng, &mut search);
        restored.validate(&store);
    }

    #[test]
    fn snapshot_rejected_over_diverged_store() {
        let (mut store, ib, _) = fixture();
        let mut buf = Vec::new();
        ib.write_snapshot(&mut buf).unwrap();
        // The store moves on after the checkpoint: a member disappears.
        let victim = ib.bubbles()[0].members()[0];
        store.remove(victim);
        let err = IncrementalBubbles::read_snapshot(&mut buf.as_slice(), &store).unwrap_err();
        assert!(err.to_string().contains("not live"), "{err}");
    }

    #[test]
    fn snapshot_rejected_when_store_grew() {
        let (mut store, ib, _) = fixture();
        let mut buf = Vec::new();
        ib.write_snapshot(&mut buf).unwrap();
        store.insert(&[0.0, 0.0], None);
        let err = IncrementalBubbles::read_snapshot(&mut buf.as_slice(), &store).unwrap_err();
        assert!(err.to_string().contains("covers"), "{err}");
    }

    #[test]
    fn garbage_is_rejected() {
        let (store, _, _) = fixture();
        let err =
            IncrementalBubbles::read_snapshot(&mut &b"GARBAGEGARBAGE"[..], &store).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }

    #[test]
    fn payload_damage_is_caught_by_the_checksum() {
        let (store, ib, _) = fixture();
        let mut buf = Vec::new();
        ib.write_snapshot(&mut buf).unwrap();
        let mid = 24 + (buf.len() - 24) / 2;
        buf[mid] ^= 0x01;
        let err = IncrementalBubbles::read_snapshot(&mut buf.as_slice(), &store).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn legacy_v1_snapshot_still_reads() {
        let (store, ib, _) = fixture();
        let mut buf = Vec::new();
        ib.write_snapshot(&mut buf).unwrap();
        // A v1 snapshot is magic + version + the (identical) body.
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"IDBB");
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&buf[24..]);
        let restored = IncrementalBubbles::read_snapshot(&mut v1.as_slice(), &store).unwrap();
        restored.validate(&store);
        assert_eq!(restored.total_points(), ib.total_points());
    }
}
