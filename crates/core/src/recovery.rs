//! Crash-consistent durability: checkpoints, WAL replay, and a durable
//! maintainer wrapper.
//!
//! The paper's maintenance scheme is deliberately deterministic: given the
//! same batch stream, the same RNG seeds and the same engine, every run
//! produces bit-identical bubbles (DESIGN.md §9–10). This module turns
//! that determinism into crash consistency. The write-ahead log
//! ([`idb_store::wal`]) records each applied batch together with its
//! maintenance decision and RNG seed; periodic checkpoints capture the
//! full store + summarization state in the checksummed v2 snapshot
//! format; and [`recover`] rebuilds the exact in-memory state by loading
//! the newest usable checkpoint and replaying the WAL tail through the
//! very same `try_apply_batch`/`maintain` code the live path runs.
//!
//! A torn WAL tail (the crash happened mid-commit) is truncated, not an
//! error: those batches were never acknowledged as durable. Everything
//! else that can go wrong — bit damage in a mid-log record, a checkpoint
//! that fails its checksum, a replay that does not apply — surfaces as a
//! typed [`RecoveryError`], never a panic.
//!
//! [`DurableMaintainer`] is the live-side wrapper: validate → log → apply,
//! with group-commit batching, bounded retry-with-backoff on transient
//! sink errors, and graceful degradation (keep running in memory,
//! surface [`Health::Degraded`]) when the sink is persistently down.

use crate::config::MaintainerConfig;
use crate::error::UpdateError;
use crate::incremental::IncrementalBubbles;
use idb_geometry::SearchStats;
use idb_obs::{EventKind, Obs};
use idb_store::snapshot::{read_frame, read_u64, write_frame, write_u64, SnapshotError};
use idb_store::wal::{read_wal, DurableSink, WalError, WalRecord, WalWriter};
use idb_store::{Batch, PointId, PointStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic prefix of a checkpoint blob.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"IDBC";

/// Recovery failure. Torn WAL tails are *not* errors (they are truncated
/// silently, per the WAL module docs); everything here is real damage or
/// a real I/O fault.
#[derive(Debug)]
pub enum RecoveryError {
    /// Underlying I/O failure while reading or writing durable state.
    Io(io::Error),
    /// The WAL contains a structurally damaged record before its tail.
    CorruptWal {
        /// Byte offset of the damaged record.
        offset: usize,
        /// What was wrong.
        detail: String,
    },
    /// No checkpoint could be loaded, decoded and aligned with the WAL.
    NoUsableCheckpoint {
        /// How many checkpoints were tried.
        tried: usize,
        /// Why the last candidate was rejected.
        detail: String,
    },
    /// A WAL record did not apply cleanly on top of the checkpoint state —
    /// the log and the checkpoint disagree about history.
    Replay {
        /// Absolute sequence number of the failing record.
        record: u64,
        /// The validation error the apply path reported.
        source: UpdateError,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "recovery i/o error: {e}"),
            Self::CorruptWal { offset, detail } => {
                write!(f, "corrupt wal record at byte {offset}: {detail}")
            }
            Self::NoUsableCheckpoint { tried, detail } => {
                write!(f, "no usable checkpoint ({tried} tried): {detail}")
            }
            Self::Replay { record, source } => {
                write!(f, "wal record {record} does not replay: {source}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Replay { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Where checkpoint blobs live. Like [`DurableSink`], this is injectable
/// so the fault harness can corrupt, drop or fail checkpoints at will.
pub trait CheckpointStore {
    /// Persists the blob for checkpoint `seq` (replacing any previous blob
    /// with the same sequence number).
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn save(&mut self, seq: u64, bytes: &[u8]) -> io::Result<()>;

    /// The sequence numbers of every stored checkpoint, in any order.
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn seqs(&self) -> io::Result<Vec<u64>>;

    /// Loads the blob for checkpoint `seq`.
    ///
    /// # Errors
    /// Whatever the medium reports.
    fn load(&self, seq: u64) -> io::Result<Vec<u8>>;
}

/// An in-memory [`CheckpointStore`] for tests; `Clone` lets the
/// crash-consistency suite snapshot the exact checkpoint population at
/// every crash point.
#[derive(Debug, Clone, Default)]
pub struct MemCheckpoints {
    entries: Vec<(u64, Vec<u8>)>,
}

impl MemCheckpoints {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes the checkpoint with sequence `seq`, if present (fault
    /// simulation: a checkpoint lost to the crash).
    pub fn remove(&mut self, seq: u64) {
        self.entries.retain(|(s, _)| *s != seq);
    }

    /// Mutable access to a stored blob (fault simulation: bit damage).
    pub fn blob_mut(&mut self, seq: u64) -> Option<&mut Vec<u8>> {
        self.entries
            .iter_mut()
            .find(|(s, _)| *s == seq)
            .map(|(_, b)| b)
    }
}

impl CheckpointStore for MemCheckpoints {
    fn save(&mut self, seq: u64, bytes: &[u8]) -> io::Result<()> {
        self.remove(seq);
        self.entries.push((seq, bytes.to_vec()));
        Ok(())
    }

    fn seqs(&self) -> io::Result<Vec<u64>> {
        Ok(self.entries.iter().map(|(s, _)| *s).collect())
    }

    fn load(&self, seq: u64) -> io::Result<Vec<u8>> {
        self.entries
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, b)| b.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("checkpoint {seq}")))
    }
}

/// A directory-backed [`CheckpointStore`]: one `checkpoint-<seq>.idbc`
/// file per checkpoint, written via a temp file + rename so a kill during
/// `save` never leaves a half-written blob under the final name.
#[derive(Debug, Clone)]
pub struct FsCheckpoints {
    dir: PathBuf,
}

impl FsCheckpoints {
    /// Uses (creating if needed) `dir` as the checkpoint directory.
    ///
    /// # Errors
    /// Whatever the filesystem reports.
    pub fn open<P: AsRef<Path>>(dir: P) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    fn path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("checkpoint-{seq}.idbc"))
    }
}

impl CheckpointStore for FsCheckpoints {
    fn save(&mut self, seq: u64, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!(".checkpoint-{seq}.tmp"));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, self.path(seq))
    }

    fn seqs(&self) -> io::Result<Vec<u64>> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("checkpoint-")
                .and_then(|s| s.strip_suffix(".idbc"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        Ok(seqs)
    }

    fn load(&self, seq: u64) -> io::Result<Vec<u8>> {
        fs::read(self.path(seq))
    }
}

/// Encodes a checkpoint blob: a v2 frame whose payload is
/// `seq u64 | batches_covered u64 | store snapshot | bubbles snapshot`
/// (both snapshots are themselves framed and self-delimiting).
///
/// # Errors
/// Propagates serialization I/O failures (never occurs for the in-memory
/// buffers used here, but the signature keeps the writer honest).
pub fn encode_checkpoint(
    seq: u64,
    covered: u64,
    store: &PointStore,
    bubbles: &IncrementalBubbles,
) -> io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    write_u64(&mut payload, seq)?;
    write_u64(&mut payload, covered)?;
    store.write_snapshot(&mut payload)?;
    bubbles.write_snapshot(&mut payload)?;
    let mut out = Vec::with_capacity(payload.len() + 24);
    write_frame(&mut out, CHECKPOINT_MAGIC, &payload)?;
    Ok(out)
}

/// Decodes a checkpoint blob, validating both nested snapshots. Returns
/// `(seq, batches_covered, store, bubbles)`.
///
/// # Errors
/// [`SnapshotError`] when the frame, either nested snapshot, or the
/// trailing byte accounting is damaged.
pub fn decode_checkpoint(
    bytes: &[u8],
) -> Result<(u64, u64, PointStore, IncrementalBubbles), SnapshotError> {
    let mut r: &[u8] = bytes;
    let Some(payload) = read_frame(&mut r, CHECKPOINT_MAGIC)? else {
        // Checkpoints never existed in the unchecksummed v1 format.
        return Err(SnapshotError::Corrupt(
            "legacy v1 framing is not valid for checkpoints".into(),
        ));
    };
    let mut cur: &[u8] = &payload;
    let seq = read_u64(&mut cur)?;
    let covered = read_u64(&mut cur)?;
    let store = PointStore::read_snapshot(&mut cur)?;
    let bubbles = IncrementalBubbles::read_snapshot(&mut cur, &store)?;
    if !cur.is_empty() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after checkpoint payload",
            cur.len()
        )));
    }
    Ok((seq, covered, store, bubbles))
}

/// The state [`recover`] rebuilds, plus provenance for observability.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered point database.
    pub store: PointStore,
    /// The recovered summarization, bit-identical to the uninterrupted
    /// run's state after `batches_durable` batches.
    pub bubbles: IncrementalBubbles,
    /// How many batches of the stream are reflected in the state.
    pub batches_durable: u64,
    /// Records found intact in the WAL.
    pub wal_records: usize,
    /// Records actually replayed on top of the checkpoint.
    pub replayed: usize,
    /// Whether a torn final record was truncated.
    pub torn_tail: bool,
    /// Sequence number of the checkpoint recovery started from.
    pub checkpoint_seq: u64,
}

/// Rebuilds the maintainer state from a WAL byte stream plus a checkpoint
/// store: the newest checkpoint that loads, decodes and aligns with the
/// WAL epoch is taken as the base, and every WAL record past its coverage
/// is replayed with the deterministic maintenance path.
///
/// # Errors
/// * [`RecoveryError::CorruptWal`] — bit damage before the WAL tail (a
///   torn tail itself is truncated, not an error);
/// * [`RecoveryError::NoUsableCheckpoint`] — every checkpoint failed to
///   load, decode, or align (corrupt candidates are skipped, not fatal,
///   as long as an older one works);
/// * [`RecoveryError::Replay`] — a WAL record does not apply on top of
///   the checkpoint state;
/// * [`RecoveryError::Io`] — the checkpoint medium failed while listing.
pub fn recover<C: CheckpointStore>(
    wal_bytes: &[u8],
    checkpoints: &C,
) -> Result<Recovered, RecoveryError> {
    recover_with_obs(wal_bytes, checkpoints, &Obs::from_env())
}

/// [`recover`] journaling through an explicit observability handle: a
/// `recover_start` event up front, a `recover_checkpoint` event for the
/// checkpoint actually adopted, the recovered maintainer's structural
/// events while the WAL tail replays (the handle is installed *before*
/// replay, so the replayed stream is comparable to the uninterrupted
/// run's), and a closing `recover_done` event.
///
/// # Errors
/// As [`recover`].
pub fn recover_with_obs<C: CheckpointStore>(
    wal_bytes: &[u8],
    checkpoints: &C,
    obs: &Obs,
) -> Result<Recovered, RecoveryError> {
    let timer = obs.start();
    obs.emit(
        EventKind::RecoverStart {
            wal_bytes: wal_bytes.len() as u64,
        },
        0,
    );
    let wal = read_wal(wal_bytes).map_err(|e| match e {
        WalError::Io(e) => RecoveryError::Io(e),
        WalError::Corrupt { offset, detail } => RecoveryError::CorruptWal { offset, detail },
    })?;

    let mut seqs = checkpoints.seqs()?;
    seqs.sort_unstable();
    let mut tried = 0;
    let mut detail = String::from("no checkpoints present");
    for &seq in seqs.iter().rev() {
        tried += 1;
        let blob = match checkpoints.load(seq) {
            Ok(b) => b,
            Err(e) => {
                detail = format!("checkpoint {seq}: load failed: {e}");
                continue;
            }
        };
        let (cseq, covered, store, bubbles) = match decode_checkpoint(&blob) {
            Ok(parts) => parts,
            Err(e) => {
                detail = format!("checkpoint {seq}: {e}");
                continue;
            }
        };
        if cseq != seq {
            detail = format!("checkpoint {seq}: blob claims sequence {cseq}");
            continue;
        }
        if covered < wal.base {
            // Taken in an earlier WAL epoch; this log's records would be
            // double-counted on top of it.
            detail = format!(
                "checkpoint {seq} covers {covered} batches, before the wal epoch base {}",
                wal.base
            );
            continue;
        }
        if !wal.records.is_empty() && store.dim() != wal.dim {
            detail = format!(
                "checkpoint {seq} is {}-dimensional but the wal is {}-dimensional",
                store.dim(),
                wal.dim
            );
            continue;
        }
        obs.emit(EventKind::RecoverCheckpoint { seq, covered }, 0);
        return replay(&wal, seq, covered, store, bubbles, obs, &timer);
    }
    Err(RecoveryError::NoUsableCheckpoint { tried, detail })
}

fn replay(
    wal: &idb_store::wal::WalContents,
    checkpoint_seq: u64,
    covered: u64,
    mut store: PointStore,
    mut bubbles: IncrementalBubbles,
    obs: &Obs,
    timer: &idb_obs::ObsTimer,
) -> Result<Recovered, RecoveryError> {
    // Install the handle before replaying so the replayed structural
    // events land in the same journal (and in the same order as the
    // uninterrupted run produced them).
    bubbles.set_obs(obs.clone());
    let mut search = SearchStats::new();
    let mut replayed = 0;
    for (i, rec) in wal.records.iter().enumerate() {
        let abs = wal.base + i as u64;
        if abs < covered {
            continue; // Already inside the checkpoint.
        }
        bubbles
            .try_apply_batch(&mut store, &rec.batch, &mut search)
            .map_err(|source| RecoveryError::Replay {
                record: abs,
                source,
            })?;
        if rec.maintain {
            // The live path seeded a fresh StdRng from this value for the
            // round; replay does the identical thing, so the merge/split
            // decisions are bit-identical.
            let mut rng = StdRng::seed_from_u64(rec.round_seed);
            bubbles.maintain(&store, &mut rng, &mut search);
        }
        replayed += 1;
    }
    // A checkpoint may run ahead of the durable WAL (group-commit window):
    // the state then simply reflects the checkpoint.
    let batches_durable = covered.max(wal.base + wal.records.len() as u64);
    obs.emit(
        EventKind::RecoverDone {
            replayed: replayed as u64,
            batches_durable,
            torn_tail: wal.torn_tail,
        },
        timer.us(),
    );
    Ok(Recovered {
        store,
        bubbles,
        batches_durable,
        wal_records: wal.records.len(),
        replayed,
        torn_tail: wal.torn_tail,
        checkpoint_seq,
    })
}

/// Tunables of the durability layer.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// WAL records buffered per group commit (1 = commit every batch; the
    /// crash window grows with this value, trading durability lag for
    /// fsync amortization).
    pub group_commit: usize,
    /// Take a checkpoint every this many applied batches.
    pub checkpoint_interval: u64,
    /// Extra commit attempts after a sink failure before degrading.
    pub max_retries: u32,
    /// Sleep before the first retry, doubling each attempt. Zero (the
    /// default, and what tests use) retries immediately without sleeping.
    pub retry_backoff: Duration,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            group_commit: 1,
            checkpoint_interval: 64,
            max_retries: 3,
            retry_backoff: Duration::ZERO,
        }
    }
}

/// Durability health of a [`DurableMaintainer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// The sink and checkpoint store are accepting writes.
    Healthy,
    /// The sink (or checkpoint store) is down; the maintainer keeps
    /// serving from memory and buffers WAL records for when it heals.
    Degraded {
        /// WAL records buffered in memory, not yet durable.
        buffered_batches: usize,
    },
}

/// The live-side durability wrapper: validate → log → apply.
///
/// Every batch is validated first (so the WAL only ever holds batches
/// that replay cleanly), appended to the WAL, group-committed, applied
/// through the ordinary transactional path, and periodically folded into
/// a checkpoint. Transient sink failures are retried with bounded
/// exponential backoff; persistent failures degrade the maintainer to
/// in-memory operation ([`Health::Degraded`]) instead of stopping the
/// stream — records stay buffered and flush when the sink heals.
#[derive(Debug)]
pub struct DurableMaintainer<S: DurableSink, C: CheckpointStore> {
    store: PointStore,
    bubbles: IncrementalBubbles,
    wal: WalWriter<S>,
    checkpoints: C,
    dcfg: DurabilityConfig,
    batches_applied: u64,
    next_checkpoint_seq: u64,
    last_checkpoint_at: u64,
    wal_down: bool,
    checkpoint_down: bool,
    obs: Obs,
    /// Whether the last emitted health event said "degraded" — health
    /// events fire on transitions only.
    reported_degraded: bool,
}

impl<S: DurableSink, C: CheckpointStore> DurableMaintainer<S, C> {
    /// Builds a fresh summarization over `store` and starts durable
    /// operation: the WAL header and a baseline checkpoint (sequence 0,
    /// covering 0 batches) are written immediately.
    ///
    /// # Errors
    /// [`RecoveryError::Io`] when the initial header commit or baseline
    /// checkpoint cannot be written — durable operation cannot start
    /// without its recovery anchor.
    ///
    /// # Panics
    /// Panics if the store holds fewer points than `config.num_bubbles`
    /// (as [`IncrementalBubbles::build`] does).
    pub fn create<R: Rng + ?Sized>(
        store: PointStore,
        config: MaintainerConfig,
        dcfg: DurabilityConfig,
        sink: S,
        checkpoints: C,
        rng: &mut R,
        search: &mut SearchStats,
    ) -> Result<Self, RecoveryError> {
        let bubbles = IncrementalBubbles::build(&store, config, rng, search);
        Self::start(store, bubbles, dcfg, sink, checkpoints, 0)
    }

    /// Starts durable operation over an existing store + summarization
    /// pair at batch sequence 0 (a fresh stream).
    ///
    /// # Errors
    /// As [`DurableMaintainer::create`].
    pub fn adopt(
        store: PointStore,
        bubbles: IncrementalBubbles,
        dcfg: DurabilityConfig,
        sink: S,
        checkpoints: C,
    ) -> Result<Self, RecoveryError> {
        Self::start(store, bubbles, dcfg, sink, checkpoints, 0)
    }

    /// Continues a recovered stream: truncates the sink and begins a fresh
    /// WAL epoch whose base is `recovered.batches_durable`, then anchors it
    /// with an immediate checkpoint. Checkpoints from before the crash
    /// remain valid fallbacks — their coverage is never behind the new
    /// epoch's base.
    ///
    /// # Errors
    /// As [`DurableMaintainer::create`].
    pub fn resume(
        recovered: Recovered,
        dcfg: DurabilityConfig,
        mut sink: S,
        checkpoints: C,
    ) -> Result<Self, RecoveryError> {
        sink.truncate(0)?;
        Self::start(
            recovered.store,
            recovered.bubbles,
            dcfg,
            sink,
            checkpoints,
            recovered.batches_durable,
        )
    }

    fn start(
        store: PointStore,
        bubbles: IncrementalBubbles,
        dcfg: DurabilityConfig,
        sink: S,
        checkpoints: C,
        base: u64,
    ) -> Result<Self, RecoveryError> {
        // The wrapper journals into the same stream as the summarization
        // it wraps; the WAL writer gets a clone so commits land there too.
        let obs = bubbles.obs().clone();
        let mut wal = WalWriter::new(sink, store.dim(), base, dcfg.group_commit);
        wal.set_obs(obs.clone());
        wal.commit()?; // The header must be durable before any checkpoint.
        let next_checkpoint_seq = checkpoints.seqs()?.iter().max().map_or(0, |m| m + 1);
        let mut this = Self {
            store,
            bubbles,
            wal,
            checkpoints,
            dcfg,
            batches_applied: base,
            next_checkpoint_seq,
            last_checkpoint_at: base,
            wal_down: false,
            checkpoint_down: false,
            obs,
            reported_degraded: false,
        };
        this.checkpoint_now()?; // The recovery anchor for this epoch.
        Ok(this)
    }

    /// Emits a `health` journal event when the degraded/healthy state has
    /// changed since the last one.
    fn note_health(&mut self) {
        let degraded = self.wal_down || self.checkpoint_down;
        if degraded != self.reported_degraded {
            self.reported_degraded = degraded;
            self.obs.emit(
                EventKind::Health {
                    degraded,
                    buffered: self.wal.pending_records() as u64,
                },
                0,
            );
        }
    }

    /// Applies one batch durably, drawing the maintenance seed from `rng`
    /// and always running a maintenance round — the common live-path call.
    ///
    /// # Errors
    /// The typed [`UpdateError`] of
    /// [`IncrementalBubbles::try_apply_batch`]; a rejected batch is logged
    /// nowhere and changes nothing.
    pub fn apply<R: Rng + ?Sized>(
        &mut self,
        batch: &Batch,
        rng: &mut R,
        search: &mut SearchStats,
    ) -> Result<Vec<PointId>, UpdateError> {
        let round_seed = rng.gen::<u64>();
        self.apply_with(batch, round_seed, true, search)
    }

    /// Applies one batch durably with an explicit maintenance decision and
    /// RNG seed (what gets logged — and therefore what replay reproduces).
    ///
    /// Sink failures do **not** fail the batch: the maintainer retries per
    /// [`DurabilityConfig`], then degrades to in-memory operation and
    /// keeps the record buffered (see [`DurableMaintainer::health`]).
    ///
    /// # Errors
    /// The typed [`UpdateError`] when the batch itself is invalid.
    pub fn apply_with(
        &mut self,
        batch: &Batch,
        round_seed: u64,
        maintain: bool,
        search: &mut SearchStats,
    ) -> Result<Vec<PointId>, UpdateError> {
        // Validate before logging: the WAL must only ever contain batches
        // that replay cleanly.
        self.bubbles.check_batch(&self.store, batch)?;
        self.wal.append(&WalRecord {
            round_seed,
            maintain,
            batch: batch.clone(),
        });
        if self.wal.wants_commit() {
            self.commit_wal();
        }
        // `check_batch` above guarantees this succeeds; if the validator
        // and the applier ever disagree (a bug), surface the typed error
        // instead of aborting the process — the caller still holds a
        // consistent pre-batch view and can drop the maintainer.
        let ids = self
            .bubbles
            .try_apply_batch(&mut self.store, batch, search)?;
        if maintain {
            let mut rng = StdRng::seed_from_u64(round_seed);
            self.bubbles.maintain(&self.store, &mut rng, search);
        }
        self.batches_applied += 1;
        if self.batches_applied - self.last_checkpoint_at >= self.dcfg.checkpoint_interval {
            match self.checkpoint_now() {
                Ok(()) => self.checkpoint_down = false,
                Err(_) => self.checkpoint_down = true, // Retried next interval.
            }
            self.note_health();
        }
        Ok(ids)
    }

    /// Commits buffered WAL records with bounded retry; on persistent
    /// failure flags the sink as down and leaves the records buffered.
    fn commit_wal(&mut self) -> bool {
        let mut backoff = self.dcfg.retry_backoff;
        for attempt in 0..=self.dcfg.max_retries {
            match self.wal.commit() {
                Ok(()) => {
                    self.wal_down = false;
                    self.note_health();
                    return true;
                }
                Err(_) => {
                    if attempt < self.dcfg.max_retries && !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff = backoff.saturating_mul(2);
                    }
                }
            }
        }
        self.wal_down = true;
        self.note_health();
        false
    }

    /// Forces buffered WAL records to the sink (with the configured
    /// retries) and reports the resulting health.
    pub fn sync(&mut self) -> Health {
        if self.wal.pending_records() > 0 || self.wal_down {
            self.commit_wal();
        }
        self.health()
    }

    /// Takes a checkpoint of the current state right now.
    ///
    /// # Errors
    /// Whatever the checkpoint medium reports; the maintainer stays
    /// usable and will retry at the next interval.
    pub fn checkpoint_now(&mut self) -> Result<(), RecoveryError> {
        let timer = self.obs.start();
        let blob = encode_checkpoint(
            self.next_checkpoint_seq,
            self.batches_applied,
            &self.store,
            &self.bubbles,
        )?;
        self.checkpoints.save(self.next_checkpoint_seq, &blob)?;
        self.obs.emit(
            EventKind::Checkpoint {
                seq: self.next_checkpoint_seq,
                covered: self.batches_applied,
                bytes: blob.len() as u64,
            },
            timer.us(),
        );
        if self.obs.metrics_on() {
            let m = self.obs.metrics();
            m.counter("checkpoint.taken").inc();
            m.counter("checkpoint.bytes").add(blob.len() as u64);
            m.histogram("checkpoint.encode_us").record(timer.us());
        }
        self.next_checkpoint_seq += 1;
        self.last_checkpoint_at = self.batches_applied;
        Ok(())
    }

    /// Current durability health: [`Health::Degraded`] while the WAL sink
    /// or the checkpoint store is rejecting writes.
    #[must_use]
    pub fn health(&self) -> Health {
        if self.wal_down || self.checkpoint_down {
            Health::Degraded {
                buffered_batches: self.wal.pending_records(),
            }
        } else {
            Health::Healthy
        }
    }

    /// The live point database.
    #[must_use]
    pub fn store(&self) -> &PointStore {
        &self.store
    }

    /// The live summarization.
    #[must_use]
    pub fn bubbles(&self) -> &IncrementalBubbles {
        &self.bubbles
    }

    /// Turns structural change recording on or off on the live
    /// summarization (see
    /// [`IncrementalBubbles::set_change_tracking`]). Purely an output
    /// channel for delta-clustering consumers; never journaled, never
    /// persisted.
    pub fn set_change_tracking(&mut self, on: bool) {
        self.bubbles.set_change_tracking(on);
    }

    /// Drains the structural change log of the live summarization (see
    /// [`IncrementalBubbles::take_changes`]); `None` obliges the consumer
    /// to treat every bubble slot as changed.
    pub fn take_changes(&mut self) -> Option<Vec<crate::incremental::BubbleChange>> {
        self.bubbles.take_changes()
    }

    /// Batches applied over the stream's whole life (across epochs).
    #[must_use]
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// The WAL sink (tests read crash-point bytes from it).
    #[must_use]
    pub fn wal_sink(&self) -> &S {
        self.wal.sink()
    }

    /// The WAL sink, mutably (tests toggle faults on it).
    pub fn wal_sink_mut(&mut self) -> &mut S {
        self.wal.sink_mut()
    }

    /// The checkpoint store.
    #[must_use]
    pub fn checkpoints(&self) -> &C {
        &self.checkpoints
    }

    /// Tears the wrapper apart (tests hand the pieces to [`recover`]).
    #[must_use]
    pub fn into_parts(self) -> (PointStore, IncrementalBubbles, S, C) {
        (
            self.store,
            self.bubbles,
            self.wal.into_sink(),
            self.checkpoints,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idb_store::wal::MemSink;
    use rand::Rng;

    fn fixture(n: usize, seed: u64) -> (PointStore, MaintainerConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = PointStore::new(2);
        for _ in 0..n {
            let p = [rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)];
            store.insert(&p, Some(0));
        }
        (store, MaintainerConfig::new(8))
    }

    fn random_batch(store: &PointStore, rng: &mut StdRng) -> Batch {
        let deletes = store.sample_distinct(rng.gen_range(0..4), rng);
        let inserts = (0..rng.gen_range(1..6))
            .map(|_| {
                let p = vec![rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)];
                (p, Some(1u32))
            })
            .collect();
        Batch { deletes, inserts }
    }

    fn fingerprint(store: &PointStore, ib: &IncrementalBubbles) -> String {
        let mut s = String::new();
        for (id, p, l) in store.iter() {
            s.push_str(&format!("{};{p:?};{l:?}|", id.0));
        }
        s.push_str(&format!("free={:?}|", store.free_slots()));
        for b in ib.bubbles() {
            s.push_str(&format!(
                "{:?};{};{:?};{};{:?}|",
                b.seed(),
                b.stats().n(),
                b.stats().linear_sum(),
                b.stats().square_sum(),
                b.members()
            ));
        }
        s
    }

    #[test]
    fn checkpoint_blob_round_trips() {
        let (store, config) = fixture(120, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut search = SearchStats::new();
        let ib = IncrementalBubbles::build(&store, config, &mut rng, &mut search);
        let blob = encode_checkpoint(3, 17, &store, &ib).unwrap();
        let (seq, covered, rstore, rib) = decode_checkpoint(&blob).unwrap();
        assert_eq!((seq, covered), (3, 17));
        assert_eq!(fingerprint(&store, &ib), fingerprint(&rstore, &rib));
        // Bit damage inside the blob is a typed error.
        let mut bad = blob.clone();
        bad[blob.len() / 2] ^= 0x08;
        assert!(decode_checkpoint(&bad).is_err());
    }

    #[test]
    fn clean_shutdown_recovers_bit_identically() {
        let (store, config) = fixture(150, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut search = SearchStats::new();
        let dcfg = DurabilityConfig {
            checkpoint_interval: 3,
            ..DurabilityConfig::default()
        };
        let mut dm = DurableMaintainer::create(
            store,
            config,
            dcfg,
            MemSink::new(),
            MemCheckpoints::new(),
            &mut rng,
            &mut search,
        )
        .unwrap();
        for _ in 0..10 {
            let batch = random_batch(dm.store(), &mut rng);
            dm.apply(&batch, &mut rng, &mut search).unwrap();
        }
        assert_eq!(dm.health(), Health::Healthy);
        let want = fingerprint(dm.store(), dm.bubbles());
        let (_, _, sink, checkpoints) = dm.into_parts();
        let rec = recover(sink.bytes(), &checkpoints).unwrap();
        assert_eq!(rec.batches_durable, 10);
        assert!(!rec.torn_tail);
        assert_eq!(fingerprint(&rec.store, &rec.bubbles), want);
    }

    #[test]
    fn rejected_batches_are_never_logged() {
        let (store, config) = fixture(100, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut search = SearchStats::new();
        let mut dm = DurableMaintainer::create(
            store,
            config,
            DurabilityConfig::default(),
            MemSink::new(),
            MemCheckpoints::new(),
            &mut rng,
            &mut search,
        )
        .unwrap();
        let wal_before = dm.wal_sink().bytes().len();
        let bad = Batch {
            deletes: vec![],
            inserts: vec![(vec![f64::NAN, 0.0], None)],
        };
        assert!(dm.apply(&bad, &mut rng, &mut search).is_err());
        assert_eq!(dm.wal_sink().bytes().len(), wal_before);
        assert_eq!(dm.batches_applied(), 0);
    }

    #[test]
    fn missing_everything_is_a_typed_error() {
        let checkpoints = MemCheckpoints::new();
        let err = recover(&[], &checkpoints).unwrap_err();
        assert!(
            matches!(err, RecoveryError::NoUsableCheckpoint { tried: 0, .. }),
            "{err}"
        );
    }
}
